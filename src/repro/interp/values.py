"""Exact WebAssembly numeric semantics.

Integers are represented as unsigned Python ints in canonical
two's-complement form (``0 <= x < 2**bits``); floats as Python floats,
with every f32 operation rounded through binary32. All trapping behaviour
(division by zero, signed-overflow division, float-to-int truncation out of
range) matches the spec.

The tables :data:`UNOPS` and :data:`BINOPS` map mnemonics to plain Python
functions and are the interpreter's arithmetic core.
"""

from __future__ import annotations

import math
import operator
import struct
from typing import Callable

from ..wasm.errors import Trap
from ..wasm.numeric import (f32_bits, f32_from_bits, f32_round, f64_bits,
                            f64_from_bits, to_signed, to_unsigned)

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


# -- integer helpers -----------------------------------------------------------

def _clz(x: int, bits: int) -> int:
    if x == 0:
        return bits
    return bits - x.bit_length()


def _ctz(x: int, bits: int) -> int:
    if x == 0:
        return bits
    return (x & -x).bit_length() - 1


def _popcnt(x: int) -> int:
    return bin(x).count("1")


def _div_s(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        raise Trap("integer divide by zero")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    if quotient >= 1 << (bits - 1):
        raise Trap("integer overflow")  # MIN / -1
    return to_unsigned(quotient, bits)


def _div_u(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return a // b


def _rem_s(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        raise Trap("integer divide by zero")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_unsigned(remainder, bits)


def _rem_u(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return a % b


def _rotl(x: int, k: int, bits: int) -> int:
    k %= bits
    mask = (1 << bits) - 1
    return ((x << k) | (x >> (bits - k))) & mask if k else x


def _rotr(x: int, k: int, bits: int) -> int:
    return _rotl(x, bits - (k % bits), bits) if k % bits else x


def _shr_s(x: int, k: int, bits: int) -> int:
    return to_unsigned(to_signed(x, bits) >> (k % bits), bits)


def _bool(x: bool) -> int:
    return 1 if x else 0


# -- float helpers -------------------------------------------------------------

_CANONICAL_NAN = float("nan")


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return _CANONICAL_NAN
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf if sign > 0 else -math.inf
    return a / b


def _fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return _CANONICAL_NAN
    if a == 0.0 and b == 0.0:
        # min(-0, +0) = -0
        return a if math.copysign(1.0, a) < 0 else b
    return a if a < b else b


def _fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return _CANONICAL_NAN
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return a if a > b else b


def _fnearest(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    rounded = float(round(x))  # Python rounds half to even
    if rounded == 0.0:
        return math.copysign(0.0, x)
    return rounded


def _ftrunc(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    truncated = float(math.trunc(x))
    if truncated == 0.0:
        return math.copysign(0.0, x)
    return truncated


def _fsqrt(x: float) -> float:
    if math.isnan(x):
        return _CANONICAL_NAN
    if x < 0.0:
        return _CANONICAL_NAN
    if x == 0.0:
        return x  # preserve -0.0
    return math.sqrt(x)


def _fceil(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    result = float(math.ceil(x))
    if result == 0.0:
        return math.copysign(0.0, x)
    return result


def _ffloor(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    return float(math.floor(x))


def _fadd32(a, b):
    return f32_round(a + b)


def _fcopysign(a: float, b: float) -> float:
    if math.isnan(a):
        return math.copysign(_CANONICAL_NAN, b)
    return math.copysign(abs(a), b)


def _trunc_to_int(x: float, bits: int, signed: bool, what: str) -> int:
    if math.isnan(x):
        raise Trap(f"invalid conversion to integer ({what} of NaN)")
    if math.isinf(x):
        raise Trap(f"integer overflow ({what} of infinity)")
    truncated = math.trunc(x)
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= truncated <= hi:
        raise Trap(f"integer overflow ({what} of {x!r})")
    return to_unsigned(truncated, bits)


def _convert_u64_to_float(x: int) -> float:
    return float(x)


# -- operation tables ------------------------------------------------------------

UnOp = Callable[[int | float], int | float]
BinOp = Callable[[int | float, int | float], int | float]

UNOPS: dict[str, UnOp] = {}
BINOPS: dict[str, BinOp] = {}


def _register_int_ops(prefix: str, bits: int) -> None:
    mask = (1 << bits) - 1
    UNOPS[f"{prefix}.clz"] = lambda x: _clz(x, bits)
    UNOPS[f"{prefix}.ctz"] = lambda x: _ctz(x, bits)
    UNOPS[f"{prefix}.popcnt"] = _popcnt
    UNOPS[f"{prefix}.eqz"] = lambda x: _bool(x == 0)
    BINOPS[f"{prefix}.add"] = lambda a, b: (a + b) & mask
    BINOPS[f"{prefix}.sub"] = lambda a, b: (a - b) & mask
    BINOPS[f"{prefix}.mul"] = lambda a, b: (a * b) & mask
    BINOPS[f"{prefix}.div_s"] = lambda a, b: _div_s(a, b, bits)
    BINOPS[f"{prefix}.div_u"] = lambda a, b: _div_u(a, b, bits)
    BINOPS[f"{prefix}.rem_s"] = lambda a, b: _rem_s(a, b, bits)
    BINOPS[f"{prefix}.rem_u"] = lambda a, b: _rem_u(a, b, bits)
    # bitwise ops on already-masked unsigned values stay in range, so the
    # C-level operator functions are drop-in (and much cheaper to call
    # than a Python-level lambda)
    BINOPS[f"{prefix}.and"] = operator.and_
    BINOPS[f"{prefix}.or"] = operator.or_
    BINOPS[f"{prefix}.xor"] = operator.xor
    BINOPS[f"{prefix}.shl"] = lambda a, b: (a << (b % bits)) & mask
    BINOPS[f"{prefix}.shr_s"] = lambda a, b: _shr_s(a, b, bits)
    BINOPS[f"{prefix}.shr_u"] = lambda a, b: a >> (b % bits)
    BINOPS[f"{prefix}.rotl"] = lambda a, b: _rotl(a, b, bits)
    BINOPS[f"{prefix}.rotr"] = lambda a, b: _rotr(a, b, bits)
    BINOPS[f"{prefix}.eq"] = lambda a, b: _bool(a == b)
    BINOPS[f"{prefix}.ne"] = lambda a, b: _bool(a != b)
    BINOPS[f"{prefix}.lt_s"] = lambda a, b: _bool(to_signed(a, bits) < to_signed(b, bits))
    BINOPS[f"{prefix}.lt_u"] = lambda a, b: _bool(a < b)
    BINOPS[f"{prefix}.gt_s"] = lambda a, b: _bool(to_signed(a, bits) > to_signed(b, bits))
    BINOPS[f"{prefix}.gt_u"] = lambda a, b: _bool(a > b)
    BINOPS[f"{prefix}.le_s"] = lambda a, b: _bool(to_signed(a, bits) <= to_signed(b, bits))
    BINOPS[f"{prefix}.le_u"] = lambda a, b: _bool(a <= b)
    BINOPS[f"{prefix}.ge_s"] = lambda a, b: _bool(to_signed(a, bits) >= to_signed(b, bits))
    BINOPS[f"{prefix}.ge_u"] = lambda a, b: _bool(a >= b)


_register_int_ops("i32", 32)
_register_int_ops("i64", 64)


def _register_float_ops(prefix: str, narrow: bool) -> None:
    rnd = f32_round if narrow else (lambda x: x)
    UNOPS[f"{prefix}.abs"] = operator.abs
    UNOPS[f"{prefix}.neg"] = operator.neg
    UNOPS[f"{prefix}.ceil"] = _fceil
    UNOPS[f"{prefix}.floor"] = _ffloor
    UNOPS[f"{prefix}.trunc"] = _ftrunc
    UNOPS[f"{prefix}.nearest"] = _fnearest
    if narrow:
        UNOPS[f"{prefix}.sqrt"] = lambda x: rnd(_fsqrt(x))
        BINOPS[f"{prefix}.add"] = lambda a, b: rnd(a + b)
        BINOPS[f"{prefix}.sub"] = lambda a, b: rnd(a - b)
        BINOPS[f"{prefix}.mul"] = lambda a, b: rnd(a * b)
        BINOPS[f"{prefix}.div"] = lambda a, b: rnd(_fdiv(a, b))
    else:
        # f64 results need no narrowing: Python floats *are* IEEE
        # doubles, so +/-/* are exact and the C-level operators apply
        UNOPS[f"{prefix}.sqrt"] = _fsqrt
        BINOPS[f"{prefix}.add"] = operator.add
        BINOPS[f"{prefix}.sub"] = operator.sub
        BINOPS[f"{prefix}.mul"] = operator.mul
        BINOPS[f"{prefix}.div"] = _fdiv
    BINOPS[f"{prefix}.min"] = _fmin
    BINOPS[f"{prefix}.max"] = _fmax
    BINOPS[f"{prefix}.copysign"] = _fcopysign
    BINOPS[f"{prefix}.eq"] = lambda a, b: _bool(a == b)
    BINOPS[f"{prefix}.ne"] = lambda a, b: _bool(a != b or math.isnan(a) or math.isnan(b))
    BINOPS[f"{prefix}.lt"] = lambda a, b: _bool(a < b)
    BINOPS[f"{prefix}.gt"] = lambda a, b: _bool(a > b)
    BINOPS[f"{prefix}.le"] = lambda a, b: _bool(a <= b)
    BINOPS[f"{prefix}.ge"] = lambda a, b: _bool(a >= b)


_register_float_ops("f32", narrow=True)
_register_float_ops("f64", narrow=False)

# -- conversions -------------------------------------------------------------------

UNOPS.update({
    "i32.wrap/i64": lambda x: x & MASK32,
    "i32.trunc_s/f32": lambda x: _trunc_to_int(x, 32, True, "i32.trunc_s"),
    "i32.trunc_u/f32": lambda x: _trunc_to_int(x, 32, False, "i32.trunc_u"),
    "i32.trunc_s/f64": lambda x: _trunc_to_int(x, 32, True, "i32.trunc_s"),
    "i32.trunc_u/f64": lambda x: _trunc_to_int(x, 32, False, "i32.trunc_u"),
    "i64.extend_s/i32": lambda x: to_unsigned(to_signed(x, 32), 64),
    "i64.extend_u/i32": lambda x: x,
    "i64.trunc_s/f32": lambda x: _trunc_to_int(x, 64, True, "i64.trunc_s"),
    "i64.trunc_u/f32": lambda x: _trunc_to_int(x, 64, False, "i64.trunc_u"),
    "i64.trunc_s/f64": lambda x: _trunc_to_int(x, 64, True, "i64.trunc_s"),
    "i64.trunc_u/f64": lambda x: _trunc_to_int(x, 64, False, "i64.trunc_u"),
    "f32.convert_s/i32": lambda x: f32_round(float(to_signed(x, 32))),
    "f32.convert_u/i32": lambda x: f32_round(float(x)),
    "f32.convert_s/i64": lambda x: f32_round(float(to_signed(x, 64))),
    "f32.convert_u/i64": lambda x: f32_round(float(x)),
    "f32.demote/f64": f32_round,
    "f64.convert_s/i32": lambda x: float(to_signed(x, 32)),
    "f64.convert_u/i32": lambda x: float(x),
    "f64.convert_s/i64": lambda x: float(to_signed(x, 64)),
    "f64.convert_u/i64": _convert_u64_to_float,
    "f64.promote/f32": lambda x: x,
    "i32.reinterpret/f32": f32_bits,
    "i64.reinterpret/f64": f64_bits,
    "f32.reinterpret/i32": f32_from_bits,
    "f64.reinterpret/i64": f64_from_bits,
})


# -- combined handler table ----------------------------------------------------
# The pre-decoder resolves every arithmetic mnemonic through this single
# arity-tagged table, so the interpreter's hot loop never probes UNOPS and
# BINOPS separately.

OP_HANDLERS: dict[str, tuple[int, UnOp | BinOp]] = {}
OP_HANDLERS.update({name: (1, fn) for name, fn in UNOPS.items()})
OP_HANDLERS.update({name: (2, fn) for name, fn in BINOPS.items()})
assert len(OP_HANDLERS) == len(UNOPS) + len(BINOPS), "unary/binary mnemonic clash"


def default_value(valtype) -> int | float:
    """The zero value of a value type (used for locals and globals)."""
    return 0.0 if valtype.value.startswith("f") else 0


def pack_value(valtype, value) -> bytes:
    """Serialize a runtime value to its little-endian byte representation."""
    fmt = {"i32": "<I", "i64": "<Q", "f32": "<f", "f64": "<d"}[valtype.value]
    return struct.pack(fmt, value)


def unpack_value(valtype, data: bytes) -> int | float:
    fmt = {"i32": "<I", "i64": "<Q", "f32": "<f", "f64": "<d"}[valtype.value]
    return struct.unpack(fmt, data)[0]
