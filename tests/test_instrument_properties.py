"""Property-based testing of the instrumenter.

Random (but always valid) MiniC programs are generated with hypothesis,
then checked for the central invariants: the instrumented module validates,
behaves identically, and the analysis observes an event stream consistent
with the program structure.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Analysis, AnalysisSession, instrument_module
from repro.eval import make_full_analysis
from repro.interp import Machine
from repro.minic import compile_source
from repro.wasm import Trap, validate_module

# -- random program generation --------------------------------------------------


@st.composite
def minic_expr(draw, depth=2, vars_=("a", "b", "x")):
    if depth <= 0:
        return draw(st.sampled_from(
            [str(draw(st.integers(min_value=-100, max_value=100)))]
            + list(vars_)))
    kind = draw(st.sampled_from(["binary", "leaf", "select", "call_helper"]))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        left = draw(minic_expr(depth=depth - 1, vars_=vars_))
        right = draw(minic_expr(depth=depth - 1, vars_=vars_))
        return f"({left} {op} {right})"
    if kind == "select":
        cond = draw(minic_expr(depth=0, vars_=vars_))
        a = draw(minic_expr(depth=depth - 1, vars_=vars_))
        b = draw(minic_expr(depth=depth - 1, vars_=vars_))
        return f"select({cond}, {a}, {b})"
    if kind == "call_helper":
        arg = draw(minic_expr(depth=depth - 1, vars_=vars_))
        return f"helper({arg})"
    return draw(minic_expr(depth=0, vars_=vars_))


@st.composite
def minic_program(draw):
    statements = []
    n_stmts = draw(st.integers(min_value=1, max_value=5))
    for i in range(n_stmts):
        kind = draw(st.sampled_from(["assign", "if", "loop", "mem"]))
        expr = draw(minic_expr())
        if kind == "assign":
            statements.append(f"x = {expr};")
        elif kind == "if":
            other = draw(minic_expr(depth=1))
            statements.append(
                f"if ({expr} > 0) {{ x = x + 1; }} else {{ x = {other}; }}")
        elif kind == "loop":
            bound = draw(st.integers(min_value=0, max_value=5))
            statements.append(
                f"var i{i}: i32; for (i{i} = 0; i{i} < {bound}; i{i} = i{i} + 1)"
                f" {{ x = x + {draw(minic_expr(depth=1))}; }}")
        else:
            statements.append(f"mem_i32[({expr}) & 255] = x;")
            statements.append(f"x = x + mem_i32[({expr}) & 255];")
    body = "\n".join(statements)
    return f"""
        memory 1;
        func helper(v: i32) -> i32 {{ return v * 3 - 1; }}
        export func main(a: i32, b: i32) -> i32 {{
            var x: i32 = a;
            {body}
            return x;
        }}
    """


class EventCounter(Analysis):
    def __init__(self):
        self.counts = {}
        for method in ("const_", "drop", "select", "unary", "binary", "local",
                       "global_", "load", "store", "call_pre", "call_post",
                       "return_", "br", "br_if", "br_table", "if_", "begin",
                       "end", "nop", "unreachable"):
            def make(name):
                def hook(*args, **kwargs):
                    self.counts[name] = self.counts.get(name, 0) + 1
                return hook
            setattr(self, method, make(method))


@settings(max_examples=30, deadline=None)
@given(minic_program(), st.integers(min_value=-10, max_value=10),
       st.integers(min_value=-10, max_value=10))
def test_instrumentation_preserves_behavior(source, a, b):
    module = compile_source(source)
    validate_module(module)
    machine = Machine()
    original = machine.instantiate(module)
    try:
        expected = original.invoke("main", [a, b])
        trapped = None
    except Trap as t:
        expected, trapped = None, type(t)

    result = instrument_module(module)
    validate_module(result.module)

    session = AnalysisSession(module, make_full_analysis())
    if trapped is None:
        assert session.invoke("main", [a, b]) == expected
    else:
        with pytest.raises(trapped):
            session.invoke("main", [a, b])


@settings(max_examples=15, deadline=None)
@given(minic_program())
def test_event_stream_invariants(source):
    module = compile_source(source)
    counter = EventCounter()
    session = AnalysisSession(module, counter,
                              groups=frozenset({"call", "return", "begin",
                                                "end", "if"}))
    try:
        session.invoke("main", [3, 4])
    except Trap:
        return
    counts = counter.counts
    # calls are balanced
    assert counts.get("call_pre", 0) == counts.get("call_post", 0)
    # blocks are balanced (begin once per entry, end once per exit)
    assert counts.get("begin", 0) == counts.get("end", 0)
    # exactly one return per function activation: returns == calls + 1 (main)
    assert counts.get("return_", 0) == counts.get("call_pre", 0) + 1


@settings(max_examples=10, deadline=None)
@given(minic_program())
def test_instrumentation_is_deterministic(source):
    module = compile_source(source)
    first = instrument_module(module)
    second = instrument_module(module)
    from repro.wasm import encode_module
    assert encode_module(first.module) == encode_module(second.module)
    assert [s.name for s in first.info.hooks] == [s.name for s in second.info.hooks]


@settings(max_examples=10, deadline=None)
@given(minic_program())
def test_original_module_not_mutated(source):
    from repro.wasm import encode_module
    module = compile_source(source)
    before = encode_module(module)
    instrument_module(module)
    assert encode_module(module) == before
