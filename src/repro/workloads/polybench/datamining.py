"""PolyBench datamining kernels: correlation, covariance."""

from __future__ import annotations

from .common import register


@register("correlation", "datamining", 10)
def correlation(n: int) -> str:
    data, mean, stddev, corr = 0, n * n, n * n + n, n * n + 2 * n
    eps = 0.1
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{data} + i*{n} + j] = f64(i*j % {n}) / fn + f64(i);
        }}
    }}
    // column means
    for (j = 0; j < {n}; j = j + 1) {{
        mem_f64[{mean} + j] = 0.0;
        for (i = 0; i < {n}; i = i + 1) {{
            mem_f64[{mean} + j] = mem_f64[{mean} + j] + mem_f64[{data} + i*{n} + j];
        }}
        mem_f64[{mean} + j] = mem_f64[{mean} + j] / fn;
    }}
    // standard deviations
    for (j = 0; j < {n}; j = j + 1) {{
        var acc: f64 = 0.0;
        for (i = 0; i < {n}; i = i + 1) {{
            var d: f64 = mem_f64[{data} + i*{n} + j] - mem_f64[{mean} + j];
            acc = acc + d * d;
        }}
        acc = sqrt(acc / fn);
        mem_f64[{stddev} + j] = select(acc <= {eps}, 1.0, acc);
    }}
    print_f64(checksum_f64({stddev}, {n}));
    // center and scale
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var v: f64 = mem_f64[{data} + i*{n} + j] - mem_f64[{mean} + j];
            mem_f64[{data} + i*{n} + j] = v / (sqrt(fn) * mem_f64[{stddev} + j]);
        }}
    }}
    // correlation matrix
    for (i = 0; i < {n} - 1; i = i + 1) {{
        mem_f64[{corr} + i*{n} + i] = 1.0;
        for (j = i + 1; j < {n}; j = j + 1) {{
            var acc2: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc2 = acc2 + mem_f64[{data} + k*{n} + i] * mem_f64[{data} + k*{n} + j];
            }}
            mem_f64[{corr} + i*{n} + j] = acc2;
            mem_f64[{corr} + j*{n} + i] = acc2;
        }}
    }}
    mem_f64[{corr} + ({n}-1)*{n} + ({n}-1)] = 1.0;
    var result: f64 = checksum_f64({corr}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("covariance", "datamining", 10)
def covariance(n: int) -> str:
    data, mean, cov = 0, n * n, n * n + n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{data} + i*{n} + j] = f64(i*j % {n}) / fn;
        }}
    }}
    for (j = 0; j < {n}; j = j + 1) {{
        mem_f64[{mean} + j] = 0.0;
        for (i = 0; i < {n}; i = i + 1) {{
            mem_f64[{mean} + j] = mem_f64[{mean} + j] + mem_f64[{data} + i*{n} + j];
        }}
        mem_f64[{mean} + j] = mem_f64[{mean} + j] / fn;
    }}
    print_f64(checksum_f64({mean}, {n}));
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{data} + i*{n} + j] = mem_f64[{data} + i*{n} + j] - mem_f64[{mean} + j];
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = i; j < {n}; j = j + 1) {{
            var acc: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + mem_f64[{data} + k*{n} + i] * mem_f64[{data} + k*{n} + j];
            }}
            acc = acc / (fn - 1.0);
            mem_f64[{cov} + i*{n} + j] = acc;
            mem_f64[{cov} + j*{n} + i] = acc;
        }}
    }}
    var result: f64 = checksum_f64({cov}, {n * n});
    print_f64(result);
    return result;
}}
"""
