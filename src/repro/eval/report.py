"""Plain-text table/figure renderers matching the paper's presentation.

Each printer emits the same rows/series the paper reports (grouped by
PolyBench mean vs the two real-world programs), so `pytest benchmarks/`
output can be compared side by side with the paper.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from typing import Iterable, Sequence

from .overhead import OverheadReport
from .sizes import SizeReport
from .timing import TimingReport


def _geomean(values: Sequence[float]) -> float:
    return statistics.geometric_mean(values) if values else float("nan")


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    table_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table5(reports: list[TimingReport],
                  polybench_group: str = "polybench") -> str:
    """Table 5: instrumentation time, averaged over the PolyBench suite."""
    poly = [r for r in reports if r.name.startswith(polybench_group)]
    rest = [r for r in reports if not r.name.startswith(polybench_group)]
    rows = []
    if poly:
        rows.append([
            f"PolyBench (avg of {len(poly)})",
            f"{statistics.mean(r.binary_bytes for r in poly):,.0f}",
            f"{1000 * statistics.mean(r.mean_seconds for r in poly):.1f} ± "
            f"{1000 * statistics.mean(r.stdev_seconds for r in poly):.1f}",
            f"{statistics.mean(r.throughput_mb_per_s for r in poly):.2f}",
        ])
    for r in rest:
        rows.append([r.name, f"{r.binary_bytes:,}",
                     f"{1000 * r.mean_seconds:.1f} ± {1000 * r.stdev_seconds:.1f}",
                     f"{r.throughput_mb_per_s:.2f}"])
    return render_table(
        ["Program", "Binary size (B)", "Instrument (ms)", "MB/s"], rows,
        title="Table 5: time to instrument")


def _by_config(reports):
    grouped = defaultdict(list)
    for r in reports:
        grouped[r.config].append(r)
    return grouped


def render_fig8(reports_by_series: dict[str, list[SizeReport]],
                configs: list[str]) -> str:
    """Figure 8: binary size increase (%) per instrumented hook group."""
    headers = ["Hook"] + list(reports_by_series)
    rows = []
    for config in configs:
        row = [config]
        for series, reports in reports_by_series.items():
            matching = [r for r in reports if r.config == config]
            if not matching:
                row.append("-")
            else:
                row.append(f"{statistics.mean(r.increase_percent for r in matching):+.1f}%")
        rows.append(row)
    return render_table(headers, rows,
                        title="Figure 8: binary size increase per hook")


def render_fig9(reports_by_series: dict[str, list[OverheadReport]],
                configs: list[str]) -> str:
    """Figure 9: relative runtime per instrumented hook group."""
    headers = ["Hook"] + list(reports_by_series) + ["geomean"]
    rows = []
    for config in configs:
        row = [config]
        all_values = []
        for series, reports in reports_by_series.items():
            matching = [r.relative_runtime for r in reports if r.config == config]
            if not matching:
                row.append("-")
            else:
                value = _geomean(matching)
                all_values.extend(matching)
                row.append(f"{value:.2f}x")
        row.append(f"{_geomean(all_values):.2f}x" if all_values else "-")
        rows.append(row)
    return render_table(headers, rows,
                        title="Figure 9: relative runtime per hook")
