"""A deterministic in-memory filesystem backing the WASI preview1 subset.

Everything a guest can observe lives in plain Python state: a flat
``name → WasiFile`` namespace under one preopened root directory (fd 3),
byte-stream stdio (fd 0 reads the configured stdin bytes, fds 1/2 append
to in-memory sinks), and an fd table with explicit read/write capability
bits. There is no host-OS I/O anywhere on the syscall path, so two runs
with the same configuration perform byte-identical operations — the
property record/replay and the cross-engine differential tests pin.

Resource governance (from :class:`repro.interp.limits.ResourceLimits`)
degrades gracefully in errno space: ``open_path`` past ``max_open_fds``
returns ``EMFILE``; a write growing a file past ``max_file_bytes`` or the
FS past ``max_fs_bytes`` is truncated at the boundary (a short write),
then ``ENOSPC`` once no byte fits. Hard escalation (the syscall budget)
lives a layer up in :class:`repro.wasi.preview1.WasiContext`.
"""

from __future__ import annotations

from pathlib import Path

from .abi import (ERRNO_BADF, ERRNO_INVAL, ERRNO_MFILE, ERRNO_NOENT,
                  ERRNO_NOSPC, ERRNO_SUCCESS, FILETYPE_CHARACTER_DEVICE,
                  FILETYPE_DIRECTORY, FILETYPE_REGULAR_FILE, OFLAGS_CREAT,
                  OFLAGS_EXCL, OFLAGS_TRUNC, PREOPEN_FD, WHENCE_CUR,
                  WHENCE_END, WHENCE_SET)


class WasiFile:
    """One regular file: a name and a growable byte buffer."""

    __slots__ = ("name", "data")

    def __init__(self, name: str, data: bytes = b""):
        self.name = name
        self.data = bytearray(data)


class OpenFd:
    """One entry in the fd table.

    ``kind`` is ``"stdin"``/``"stdout"``/``"stderr"``/``"preopen"``/
    ``"file"``; only ``"file"`` entries carry a :class:`WasiFile` and a
    seek position (stdin keeps its stream position on the fd so dup-like
    reopening is impossible by construction).
    """

    __slots__ = ("fd", "kind", "file", "pos", "readable", "writable")

    def __init__(self, fd: int, kind: str, file: WasiFile | None = None,
                 readable: bool = False, writable: bool = False):
        self.fd = fd
        self.kind = kind
        self.file = file
        self.pos = 0
        self.readable = readable
        self.writable = writable

    @property
    def filetype(self) -> int:
        if self.kind == "file":
            return FILETYPE_REGULAR_FILE
        if self.kind == "preopen":
            return FILETYPE_DIRECTORY
        return FILETYPE_CHARACTER_DEVICE


class WasiFS:
    """The fd table, stdio streams, and flat file namespace of one guest.

    All operations use errno-style returns — ``(errno, payload)`` — and
    never raise for guest-reachable conditions; exceptions escaping this
    class indicate host bugs, not guest behavior.
    """

    def __init__(self, files: dict[str, bytes] | None = None,
                 stdin: bytes = b"",
                 max_open_fds: int | None = None,
                 max_file_bytes: int | None = None,
                 max_fs_bytes: int | None = None):
        self.files: dict[str, WasiFile] = {
            name: WasiFile(name, data)
            for name, data in sorted((files or {}).items())}
        self.stdin = bytes(stdin)
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.max_open_fds = max_open_fds
        self.max_file_bytes = max_file_bytes
        self.max_fs_bytes = max_fs_bytes
        self._fds: dict[int, OpenFd] = {
            0: OpenFd(0, "stdin", readable=True),
            1: OpenFd(1, "stdout", writable=True),
            2: OpenFd(2, "stderr", writable=True),
            PREOPEN_FD: OpenFd(PREOPEN_FD, "preopen"),
        }
        self._next_fd = PREOPEN_FD + 1

    @classmethod
    def from_dir(cls, directory: str | Path, **kwargs) -> "WasiFS":
        """Load every regular file of a host directory (sorted, top-level
        only) into a fresh in-memory FS — a one-time ingest; execution
        never touches the host FS again."""
        directory = Path(directory)
        files = {entry.name: entry.read_bytes()
                 for entry in sorted(directory.iterdir()) if entry.is_file()}
        return cls(files=files, **kwargs)

    # -- accounting ------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes across regular files (stdio sinks are not governed:
        they are the run's observable output, already bounded by fuel)."""
        return sum(len(f.data) for f in self.files.values())

    def open_file_count(self) -> int:
        """Open ``"file"`` fds — the population ``max_open_fds`` governs."""
        return sum(1 for e in self._fds.values() if e.kind == "file")

    def lookup(self, fd: int) -> OpenFd | None:
        return self._fds.get(fd)

    # -- syscall backends ------------------------------------------------------

    def open_path(self, path: str, oflags: int) -> tuple[int, int]:
        """Open (or create) ``path`` under the preopen; returns
        ``(errno, fd)``."""
        if not path or "/" in path or path in (".", ".."):
            return ERRNO_NOENT, 0
        if self.max_open_fds is not None and \
                self.open_file_count() >= self.max_open_fds:
            return ERRNO_MFILE, 0
        file = self.files.get(path)
        if file is None:
            if not oflags & OFLAGS_CREAT:
                return ERRNO_NOENT, 0
            file = WasiFile(path)
            self.files[path] = file
        elif oflags & OFLAGS_EXCL:
            return ERRNO_INVAL, 0
        if oflags & OFLAGS_TRUNC:
            del file.data[:]
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = OpenFd(fd, "file", file, readable=True, writable=True)
        return ERRNO_SUCCESS, fd

    def read(self, fd: int, nbytes: int) -> tuple[int, bytes]:
        entry = self._fds.get(fd)
        if entry is None:
            return ERRNO_BADF, b""
        if not entry.readable:
            return ERRNO_BADF, b""
        if entry.kind == "stdin":
            chunk = self.stdin[entry.pos:entry.pos + nbytes]
        else:
            chunk = bytes(entry.file.data[entry.pos:entry.pos + nbytes])
        entry.pos += len(chunk)
        return ERRNO_SUCCESS, chunk

    def write(self, fd: int, data: bytes) -> tuple[int, int]:
        """Write at the fd's position; returns ``(errno, nwritten)``.

        Regular-file writes are capped by the per-file and whole-FS byte
        limits: bytes up to the boundary are written (a short write), and
        a write that cannot place a single byte returns ``ENOSPC``.
        """
        entry = self._fds.get(fd)
        if entry is None or not entry.writable:
            return ERRNO_BADF, 0
        if entry.kind == "stdout":
            self.stdout.extend(data)
            return ERRNO_SUCCESS, len(data)
        if entry.kind == "stderr":
            self.stderr.extend(data)
            return ERRNO_SUCCESS, len(data)
        file = entry.file
        allowed = len(data)
        end = entry.pos + allowed
        growth = max(0, end - len(file.data))
        if self.max_file_bytes is not None:
            room = self.max_file_bytes - len(file.data)
            if growth > room:
                allowed = max(0, len(data) - (growth - max(0, room)))
        if self.max_fs_bytes is not None and growth:
            room = self.max_fs_bytes - self.total_bytes()
            grow_now = max(0, entry.pos + allowed - len(file.data))
            if grow_now > room:
                allowed = max(0, allowed - (grow_now - max(0, room)))
        if allowed == 0 and data:
            return ERRNO_NOSPC, 0
        payload = data[:allowed]
        end = entry.pos + len(payload)
        if end > len(file.data):
            file.data.extend(bytes(end - len(file.data)))
        file.data[entry.pos:end] = payload
        entry.pos = end
        return ERRNO_SUCCESS, len(payload)

    def seek(self, fd: int, offset: int, whence: int) -> tuple[int, int]:
        entry = self._fds.get(fd)
        if entry is None:
            return ERRNO_BADF, 0
        if entry.kind != "file":
            if entry.kind == "stdin" and whence == WHENCE_CUR and offset == 0:
                return ERRNO_SUCCESS, entry.pos  # tell() on stdin
            return ERRNO_BADF, 0
        size = len(entry.file.data)
        if whence == WHENCE_SET:
            target = offset
        elif whence == WHENCE_CUR:
            target = entry.pos + offset
        elif whence == WHENCE_END:
            target = size + offset
        else:
            return ERRNO_INVAL, 0
        if target < 0:
            return ERRNO_INVAL, 0
        entry.pos = target
        return ERRNO_SUCCESS, target

    def close(self, fd: int) -> int:
        entry = self._fds.get(fd)
        if entry is None:
            return ERRNO_BADF
        if entry.kind != "file":
            return ERRNO_BADF  # stdio and the preopen stay open for the run
        del self._fds[fd]
        return ERRNO_SUCCESS

    def fdstat(self, fd: int) -> tuple[int, int]:
        entry = self._fds.get(fd)
        if entry is None:
            return ERRNO_BADF, 0
        return ERRNO_SUCCESS, entry.filetype
