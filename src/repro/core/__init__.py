"""Wasabi's core: analysis API, binary instrumenter, and runtime."""

from .analysis import (ALL_GROUPS, Analysis, BranchTarget, Location, MemArg,
                       used_groups)
from .composite import CompositeAnalysis
from .control import ControlFrame, ControlStack
from .hooks import HOOK_MODULE, HookRegistry, HookSpec, eager_hook_count
from .instrument import (InstrumentationConfig, InstrumentationResult,
                         instrument_module)
from .metadata import (BrTableInfo, EndEvent, FunctionInfo, ModuleInfo,
                       StaticInfo)
from .runtime import ERROR_POLICIES, WasabiRuntime
from .session import AnalysisSession, analyze

__all__ = [
    "ALL_GROUPS", "Analysis", "AnalysisSession", "BranchTarget",
    "BrTableInfo", "CompositeAnalysis", "ControlFrame", "ControlStack", "EndEvent", "FunctionInfo",
    "ERROR_POLICIES", "HOOK_MODULE", "HookRegistry", "HookSpec",
    "InstrumentationConfig", "InstrumentationResult", "Location", "MemArg",
    "ModuleInfo", "StaticInfo", "WasabiRuntime", "analyze",
    "eager_hook_count", "instrument_module", "used_groups",
]
