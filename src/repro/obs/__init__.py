"""Observability: metrics, span tracing, structured logging, the profiler.

Public surface of the telemetry subsystem. Typical use::

    from repro.obs import Telemetry

    tele = Telemetry(profile=True)
    session = AnalysisSession(module, analysis, telemetry=tele)
    session.run("main", [])
    tele.write_metrics("run.json", usage=session.machine.resource_usage())
    tele.write_trace("run.trace.json")
"""

from .log import (LOG_SCHEMA, FlightRecorder, StructuredLogger,
                  flight_from_jsonl, flight_to_jsonl, get_logger)
from .metrics import (HOOK_LATENCY_BUCKETS, SERVE_LATENCY_BUCKETS,
                      STAGE_SECONDS_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, parse_prometheus)
from .profiler import DEFAULT_SAMPLE_INTERVAL, Profiler
from .spans import (Span, SpanContext, Tracer, measure,
                    spans_from_chrome_trace, spans_from_jsonl,
                    spans_to_chrome_trace, spans_to_jsonl)
from .telemetry import (METRICS_SCHEMA, Event, Telemetry, maybe_span,
                        render_report)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "HOOK_LATENCY_BUCKETS",
    "STAGE_SECONDS_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "parse_prometheus",
    "Span",
    "SpanContext",
    "Tracer",
    "measure",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "spans_from_chrome_trace",
    "Profiler",
    "DEFAULT_SAMPLE_INTERVAL",
    "Event",
    "Telemetry",
    "METRICS_SCHEMA",
    "maybe_span",
    "render_report",
    "StructuredLogger",
    "FlightRecorder",
    "get_logger",
    "LOG_SCHEMA",
    "flight_to_jsonl",
    "flight_from_jsonl",
]
