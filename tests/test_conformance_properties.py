"""Property-based conformance: the interpreter vs independent references.

These tests check the numeric core against straightforward Python models
(independent of the implementation's own helpers), and check algebraic
identities the spec guarantees.
"""

import math
import struct

from hypothesis import assume, given, strategies as st

from repro.interp.values import BINOPS, UNOPS
from repro.wasm.numeric import to_signed, to_unsigned

u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
u64 = st.integers(min_value=0, max_value=2 ** 64 - 1)
f64s = st.floats(allow_nan=False, allow_infinity=False)
f32s = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestIntegerIdentities:
    @given(u32, u32)
    def test_sub_is_add_of_negation(self, a, b):
        neg_b = to_unsigned(-to_signed(b, 32), 32)
        assert BINOPS["i32.sub"](a, b) == BINOPS["i32.add"](a, neg_b)

    @given(u64, u64)
    def test_xor_self_inverse(self, a, b):
        assert BINOPS["i64.xor"](BINOPS["i64.xor"](a, b), b) == a

    @given(u32)
    def test_clz_ctz_popcnt_relation(self, x):
        assume(x != 0)
        clz = UNOPS["i32.clz"](x)
        ctz = UNOPS["i32.ctz"](x)
        assert clz + ctz <= 31
        assert UNOPS["i32.popcnt"](x) >= 1
        assert 1 << (31 - clz) <= x

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_shl_shr_u_roundtrip_on_low_bits(self, x, k):
        low = x & ((1 << (32 - k)) - 1)
        assert BINOPS["i32.shr_u"](BINOPS["i32.shl"](low, k), k) == low

    @given(u32, u32)
    def test_comparison_trichotomy_signed(self, a, b):
        lt = BINOPS["i32.lt_s"](a, b)
        gt = BINOPS["i32.gt_s"](a, b)
        eq = BINOPS["i32.eq"](a, b)
        assert lt + gt + eq == 1

    @given(u64, st.integers(min_value=1, max_value=2 ** 64 - 1))
    def test_signed_division_rounds_toward_zero(self, a, b):
        from fractions import Fraction

        sa, sb = to_signed(a, 64), to_signed(b, 64)
        assume(not (sa == -(2 ** 63) and sb == -1))
        assume(sb != 0)
        quotient = to_signed(BINOPS["i64.div_s"](a, b), 64)
        assert quotient == math.trunc(Fraction(sa, sb))  # exact reference
        remainder = to_signed(BINOPS["i64.rem_s"](a, b), 64)
        assert quotient * sb + remainder == sa


class TestFloatIdentities:
    @given(f64s, f64s)
    def test_add_commutes(self, a, b):
        assert BINOPS["f64.add"](a, b) == BINOPS["f64.add"](b, a) or \
            (math.isnan(BINOPS["f64.add"](a, b))
             and math.isnan(BINOPS["f64.add"](b, a)))

    @given(f32s, f32s)
    def test_f32_add_matches_struct_reference(self, a, b):
        try:
            expected = struct.unpack("<f", struct.pack("<f", a + b))[0]
        except OverflowError:
            expected = math.copysign(math.inf, a + b)
        result = BINOPS["f32.add"](a, b)
        if math.isnan(expected):
            assert math.isnan(result)
        else:
            assert result == expected

    def test_f32_overflow_rounds_to_infinity(self):
        f32_max = struct.unpack("<f", b"\xff\xff\x7f\x7f")[0]
        assert BINOPS["f32.add"](f32_max, f32_max) == math.inf
        assert BINOPS["f32.mul"](-f32_max, 2.0) == -math.inf

    @given(f64s)
    def test_floor_le_x_le_ceil(self, x):
        assert UNOPS["f64.floor"](x) <= x <= UNOPS["f64.ceil"](x)

    @given(f64s)
    def test_nearest_within_half(self, x):
        assume(abs(x) < 2 ** 52)
        nearest = UNOPS["f64.nearest"](x)
        assert abs(nearest - x) <= 0.5

    @given(f64s)
    def test_neg_involution(self, x):
        assert UNOPS["f64.neg"](UNOPS["f64.neg"](x)) == x

    @given(f64s, f64s)
    def test_min_max_partition(self, a, b):
        lo = BINOPS["f64.min"](a, b)
        hi = BINOPS["f64.max"](a, b)
        assert {lo, hi} == {a, b} or (a == b == lo == hi)

    @given(f64s)
    def test_reinterpret_roundtrip(self, x):
        bits = UNOPS["i64.reinterpret/f64"](x)
        assert 0 <= bits < 2 ** 64
        assert UNOPS["f64.reinterpret/i64"](bits) == x

    @given(st.integers(min_value=-2 ** 53, max_value=2 ** 53))
    def test_i64_to_f64_exact_in_53_bits(self, value):
        converted = UNOPS["f64.convert_s/i64"](to_unsigned(value, 64))
        assert converted == float(value)


class TestExecutionDifferential:
    """The same computation expressed via different instruction mixes must
    agree — exercised end-to-end through the interpreter."""

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_mul_by_shift_vs_mul(self, a, b):
        from repro.minic import compile_source
        from repro.interp import Machine
        module = compile_source("""
            export func via_mul(x: i32) -> i32 { return x * 8; }
            export func via_shift(x: i32) -> i32 { return x << 3; }
        """)
        instance = Machine().instantiate(module)
        assert instance.invoke("via_mul", [a]) == instance.invoke("via_shift", [a])

    @given(st.integers(min_value=0, max_value=30))
    def test_iterative_vs_recursive(self, n):
        from repro.minic import compile_source
        from repro.interp import Machine
        module = compile_source("""
            export func rec(n: i32) -> i64 {
                if (n <= 0) { return 1L; }
                return i64(n) * rec(n - 1);
            }
            export func iter(n: i32) -> i64 {
                var acc: i64 = 1;
                var i: i32;
                for (i = 1; i <= n; i = i + 1) { acc = acc * i64(i); }
                return acc;
            }
        """)
        instance = Machine().instantiate(module)
        assert instance.invoke("rec", [n]) == instance.invoke("iter", [n])


class TestEnginesBitIdentical:
    """The pre-decoded threaded engine and the legacy string-dispatch loop
    must agree bit-for-bit on the same hypothesis corpus of programs."""

    MIXED = """
        memory 1;
        export func crunch(a: i32, b: i32, x: f64) -> f64 {
            var i: i32;
            var acc: f64 = 0.0;
            mem_f64[0] = x;
            for (i = 0; i < 16; i = i + 1) {
                if ((a ^ i) % 3 == 0) {
                    acc = acc + mem_f64[0] * f64(i);
                } else {
                    mem_i32[8 + i] = a * i + b;
                    acc = acc - f64(mem_i32[8 + i]);
                }
            }
            return acc + f64(f32(x));
        }
        export func bits(a: i32, b: i32) -> i64 {
            var wide: i64 = i64(a) * i64(b);
            return (wide << 7) ^ (wide >> 3) ^ i64(a % (b | 1));
        }
    """

    @staticmethod
    def _both(module, name, args):
        from repro.interp import Machine
        out = []
        for predecode in (False, True):
            instance = Machine(predecode=predecode).instantiate(module)
            out.append(instance.invoke(name, args))
        return out

    @staticmethod
    def _bits_of(values):
        return [struct.pack("<d", v) if isinstance(v, float)
                else v.to_bytes(8, "little") for v in values]

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.floats(allow_nan=False, width=64))
    def test_mixed_program_bit_identical(self, a, b, x):
        from repro.minic import compile_source
        module = compile_source(self.MIXED)
        legacy, fast = self._both(module, "crunch", [a, b, x])
        assert self._bits_of(legacy) == self._bits_of(fast)

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_i64_bit_ops_bit_identical(self, a, b):
        from repro.minic import compile_source
        module = compile_source(self.MIXED)
        legacy, fast = self._both(module, "bits", [a, b])
        assert self._bits_of(legacy) == self._bits_of(fast)
