"""The WebAssembly interpreter (our stand-in for the browser engine).

Executes validated modules with exact value semantics. Function bodies are
flat instruction lists; a per-function *matching table* precomputed at
instantiation maps each ``block``/``loop``/``if``/``else`` to its matching
``end`` (and ``else``), so structured branches are O(1) jumps.
"""

from __future__ import annotations

import sys
from typing import Sequence

from ..wasm.errors import ExhaustionError, Trap, WasmError
from ..wasm.module import Function, Instr, Module
from ..wasm.numeric import f32_round
from ..wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType
from .host import GlobalInstance, HostFunction, Linker
from .memory import Memory
from .table import Table
from .values import BINOPS, MASK32, MASK64, UNOPS, default_value

#: Maximum nesting of WebAssembly calls before an exhaustion trap.
DEFAULT_MAX_CALL_DEPTH = 700


class BlockMatching:
    """For one body: maps block-start indices to their ``else``/``end``."""

    __slots__ = ("end_of", "else_of")

    def __init__(self, body: list[Instr]):
        self.end_of: dict[int, int] = {}
        self.else_of: dict[int, int | None] = {}
        open_blocks: list[int] = []
        for idx, instr in enumerate(body):
            op = instr.op
            if op in ("block", "loop", "if"):
                open_blocks.append(idx)
                self.else_of[idx] = None
            elif op == "else":
                if not open_blocks:
                    raise WasmError("else outside any block")
                start = open_blocks[-1]
                self.else_of[start] = idx
                # the else "opens" the second arm; it shares the if's end
                self.end_of[idx] = -1  # patched when the end is found
            elif op == "end":
                if open_blocks:
                    start = open_blocks.pop()
                    self.end_of[start] = idx
                    else_idx = self.else_of.get(start)
                    if else_idx is not None:
                        self.end_of[else_idx] = idx
                # an end with no open block is the function's final end


class WasmFunction:
    """A defined function bound to its instance, with precomputed matching."""

    __slots__ = ("instance", "func", "functype", "matching", "local_types")

    def __init__(self, instance: "Instance", func: Function, functype: FuncType):
        self.instance = instance
        self.func = func
        self.functype = functype
        self.matching = BlockMatching(func.body)
        self.local_types = list(func.locals)

    @property
    def name(self) -> str:
        return self.func.name or "<anonymous>"


class Instance:
    """A module instance: runtime state plus executable functions."""

    def __init__(self, module: Module, machine: "Machine"):
        self.module = module
        self.machine = machine
        self.functions: list[HostFunction | WasmFunction] = []
        self.globals: list[GlobalInstance] = []
        self.memory: Memory | None = None
        self.table: Table | None = None
        self.exports: dict[str, tuple[str, object]] = {}

    def invoke(self, name: str, args: Sequence[int | float] = ()) -> list[int | float]:
        """Call an exported function by name."""
        kind, item = self._export(name)
        if kind != "func":
            raise WasmError(f"export {name!r} is a {kind}, not a function")
        func_idx = item
        assert isinstance(func_idx, int)
        return self.machine.call(self, func_idx, list(args))

    def exported_memory(self, name: str = "memory") -> Memory:
        kind, item = self._export(name)
        if kind != "memory":
            raise WasmError(f"export {name!r} is a {kind}, not a memory")
        assert isinstance(item, Memory)
        return item

    def exported_global(self, name: str) -> GlobalInstance:
        kind, item = self._export(name)
        if kind != "global":
            raise WasmError(f"export {name!r} is a {kind}, not a global")
        assert isinstance(item, GlobalInstance)
        return item

    def _export(self, name: str) -> tuple[str, object]:
        try:
            return self.exports[name]
        except KeyError:
            raise WasmError(f"no export named {name!r}") from None


def _coerce(valtype: ValType, value: int | float) -> int | float:
    """Coerce a host-provided value to canonical runtime representation."""
    if valtype is ValType.I32:
        return int(value) & MASK32
    if valtype is ValType.I64:
        return int(value) & MASK64
    if valtype is ValType.F32:
        return f32_round(float(value))
    return float(value)


class Machine:
    """Executes instances. One machine may host several instances."""

    def __init__(self, max_call_depth: int = DEFAULT_MAX_CALL_DEPTH):
        self.max_call_depth = max_call_depth
        self._depth = 0
        # The interpreter recurses ~2 Python frames per Wasm call.
        needed = 3 * max_call_depth + 200
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)

    # -- instantiation -------------------------------------------------------

    def instantiate(self, module: Module, linker: Linker | None = None,
                    run_start: bool = True) -> Instance:
        """Create an instance, resolving imports through ``linker``."""
        linker = linker or Linker()
        instance = Instance(module, self)

        for imp in module.imports:
            resolved = linker.resolve(imp.module, imp.name)
            desc = imp.desc
            if isinstance(desc, int):  # function import
                expected = module.types[desc]
                if not isinstance(resolved, HostFunction):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a function")
                if resolved.functype != expected:
                    raise WasmError(
                        f"import {imp.module}.{imp.name} has type "
                        f"{resolved.functype}, expected {expected}")
                instance.functions.append(resolved)
            elif isinstance(desc, MemoryType):
                if not isinstance(resolved, Memory):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a memory")
                instance.memory = resolved
            elif isinstance(desc, TableType):
                if not isinstance(resolved, Table):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a table")
                instance.table = resolved
            elif isinstance(desc, GlobalType):
                if not isinstance(resolved, GlobalInstance):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a global")
                instance.globals.append(resolved)
            else:  # pragma: no cover
                raise WasmError(f"bad import descriptor {desc!r}")

        for func in module.functions:
            instance.functions.append(
                WasmFunction(instance, func, module.types[func.type_idx]))
        for glob in module.globals:
            instance.globals.append(
                GlobalInstance(glob.type, self._eval_init(instance, glob.init,
                                                          glob.type.valtype)))
        for memtype in module.memories:
            instance.memory = Memory(memtype.limits)
        for tabletype in module.tables:
            instance.table = Table(tabletype.limits)

        for segment in module.elements:
            if instance.table is None:
                raise WasmError("element segment without table")
            offset = self._eval_init(instance, segment.offset, ValType.I32)
            if offset + len(segment.func_idxs) > len(instance.table):
                raise Trap(f"element segment [{offset}, "
                           f"{offset + len(segment.func_idxs)}) out of table bounds")
            for i, func_idx in enumerate(segment.func_idxs):
                instance.table.set(offset + i, func_idx)
        for segment in module.data:
            if instance.memory is None:
                raise WasmError("data segment without memory")
            offset = self._eval_init(instance, segment.offset, ValType.I32)
            instance.memory.write(offset, segment.data)

        for export in module.exports:
            if export.kind == "func":
                instance.exports[export.name] = ("func", export.idx)
            elif export.kind == "memory":
                instance.exports[export.name] = ("memory", instance.memory)
            elif export.kind == "table":
                instance.exports[export.name] = ("table", instance.table)
            elif export.kind == "global":
                instance.exports[export.name] = ("global", instance.globals[export.idx])

        if run_start and module.start is not None:
            self.call(instance, module.start, [])
        return instance

    def _eval_init(self, instance: Instance, init: list[Instr],
                   expected: ValType) -> int | float:
        if len(init) != 1:
            raise WasmError("initializer must be a single constant instruction")
        instr = init[0]
        if instr.op == "get_global":
            return instance.globals[instr.idx].value
        if instr.op.endswith(".const"):
            return _coerce(expected, instr.value)
        raise WasmError(f"non-constant initializer {instr.op}")

    # -- function calls ------------------------------------------------------------

    def call(self, instance: Instance, func_idx: int,
             args: list[int | float]) -> list[int | float]:
        """Call any function in the instance's function index space."""
        func = instance.functions[func_idx]
        functype = func.functype
        if len(args) != len(functype.params):
            raise WasmError(f"expected {len(functype.params)} arguments, "
                            f"got {len(args)}")
        args = [_coerce(t, v) for t, v in zip(functype.params, args)]

        if self._depth >= self.max_call_depth:
            raise ExhaustionError("call stack exhausted")
        self._depth += 1
        try:
            if isinstance(func, HostFunction):
                raw = func.fn(args)
                if raw is None:
                    results: list[int | float] = []
                elif isinstance(raw, (list, tuple)):
                    results = list(raw)
                else:
                    results = [raw]
                if len(results) != len(functype.results):
                    raise WasmError(
                        f"host function {func.name} returned {len(results)} "
                        f"values, declared {len(functype.results)}")
                return [_coerce(t, v) for t, v in zip(functype.results, results)]
            return self._exec(func, args)
        finally:
            self._depth -= 1

    # -- the interpreter loop ---------------------------------------------------

    def _exec(self, wfunc: WasmFunction, args: list[int | float]) -> list[int | float]:
        instance = wfunc.instance
        body = wfunc.func.body
        matching = wfunc.matching
        locals_: list[int | float] = args + [default_value(t)
                                             for t in wfunc.local_types]
        stack: list[int | float] = []
        result_arity = len(wfunc.functype.results)
        pc = 0
        n_instrs = len(body)
        # label entries: (is_loop, block_pc, cont_pc, height, arity);
        # the implicit function block is the bottom-most label (its final
        # `end` pops it, and a branch to it returns from the function).
        labels: list[tuple[bool, int, int, int, int]] = [
            (False, -1, n_instrs, 0, result_arity)
        ]

        while pc < n_instrs:
            instr = body[pc]
            op = instr.op

            binop = BINOPS.get(op)
            if binop is not None:
                b = stack.pop()
                stack[-1] = binop(stack[-1], b)
                pc += 1
                continue
            unop = UNOPS.get(op)
            if unop is not None:
                stack[-1] = unop(stack[-1])
                pc += 1
                continue

            if op == "get_local":
                stack.append(locals_[instr.idx])
            elif op == "set_local":
                locals_[instr.idx] = stack.pop()
            elif op == "tee_local":
                locals_[instr.idx] = stack[-1]
            elif op == "i32.const":
                stack.append(instr.value & MASK32)
            elif op == "i64.const":
                stack.append(instr.value & MASK64)
            elif op == "f32.const":
                stack.append(f32_round(instr.value))
            elif op == "f64.const":
                stack.append(float(instr.value))
            elif ".load" in op:
                addr = stack.pop()
                stack.append(instance.memory.load(op, addr + instr.memarg.offset))
            elif ".store" in op:
                value = stack.pop()
                addr = stack.pop()
                instance.memory.store(op, addr + instr.memarg.offset, value)
            elif op == "block":
                arity = 0 if instr.blocktype is None else 1
                end_idx = matching.end_of[pc]
                labels.append((False, pc, end_idx + 1, len(stack), arity))
            elif op == "loop":
                labels.append((True, pc, pc + 1, len(stack), 0))
            elif op == "if":
                condition = stack.pop()
                arity = 0 if instr.blocktype is None else 1
                end_idx = matching.end_of[pc]
                labels.append((False, pc, end_idx + 1, len(stack), arity))
                if not condition:
                    else_idx = matching.else_of.get(pc)
                    if else_idx is not None:
                        pc = else_idx  # fall onto the else, skip to its body
                    else:
                        pc = end_idx - 1  # land on the end, which pops the label
            elif op == "else":
                # reached from the then-arm: skip to the matching end
                pc = matching.end_of[pc] - 1
            elif op == "end":
                if labels:
                    labels.pop()
                # the function's final end simply falls off the loop
            elif op == "br":
                pc = self._branch(instr.label, labels, stack)
                continue
            elif op == "br_if":
                if stack.pop():
                    pc = self._branch(instr.label, labels, stack)
                    continue
            elif op == "br_table":
                index = stack.pop()
                table_imm = instr.br_table
                if index < len(table_imm.labels):
                    label = table_imm.labels[index]
                else:
                    label = table_imm.default
                pc = self._branch(label, labels, stack)
                continue
            elif op == "return":
                return stack[len(stack) - result_arity:]
            elif op == "call":
                callee = instance.functions[instr.idx]
                n_params = len(callee.functype.params)
                call_args = stack[len(stack) - n_params:] if n_params else []
                del stack[len(stack) - n_params:]
                stack.extend(self.call(instance, instr.idx, call_args))
            elif op == "call_indirect":
                expected = instance.module.types[instr.idx]
                table_idx = stack.pop()
                func_addr = instance.table.get(table_idx)
                callee = instance.functions[func_addr]
                if callee.functype != expected:
                    raise Trap(f"indirect call type mismatch: entry {table_idx} "
                               f"has {callee.functype}, expected {expected}")
                n_params = len(expected.params)
                call_args = stack[len(stack) - n_params:] if n_params else []
                del stack[len(stack) - n_params:]
                stack.extend(self.call(instance, func_addr, call_args))
            elif op == "drop":
                stack.pop()
            elif op == "select":
                condition = stack.pop()
                second = stack.pop()
                first = stack.pop()
                stack.append(first if condition else second)
            elif op == "get_global":
                stack.append(instance.globals[instr.idx].value)
            elif op == "set_global":
                instance.globals[instr.idx].value = stack.pop()
            elif op == "memory.size":
                stack.append(instance.memory.size_pages)
            elif op == "memory.grow":
                delta = stack.pop()
                stack.append(instance.memory.grow(delta) & MASK32)
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise Trap("unreachable executed")
            else:  # pragma: no cover - validation excludes this
                raise WasmError(f"cannot execute {op}")
            pc += 1

        return stack[len(stack) - result_arity:] if result_arity else []

    @staticmethod
    def _branch(label: int, labels: list[tuple[bool, int, int, int, int]],
                stack: list[int | float]) -> int:
        """Perform a branch; returns the new pc."""
        is_loop, block_pc, cont_pc, height, arity = labels[-1 - label]
        if is_loop:
            # jump back to the loop instruction itself; it re-pushes its label
            del stack[height:]
            del labels[len(labels) - 1 - label:]
            return block_pc
        if arity:
            carried = stack[len(stack) - arity:]
            del stack[height:]
            stack.extend(carried)
        else:
            del stack[height:]
        del labels[len(labels) - 1 - label:]
        return cont_pc


def instantiate(module: Module, linker: Linker | None = None,
                run_start: bool = True,
                machine: Machine | None = None) -> Instance:
    """Convenience wrapper: instantiate ``module`` on a fresh machine."""
    machine = machine or Machine()
    return machine.instantiate(module, linker, run_start=run_start)
