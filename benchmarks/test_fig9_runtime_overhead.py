"""Figure 9: runtime overhead per instrumented hook group (RQ5).

Runs each workload uninstrumented and under each selective configuration
(plus 'all') with an empty analysis attached, reporting relative runtimes.
By default a representative PolyBench subset keeps the sweep to a few
minutes (REPRO_FULL=1 runs all 30 kernels, as the paper does).

Paper-shape expectations checked below: rare hooks ≈ 1.0x; call/return
moderate; const/local/binary expensive; 'all' the most expensive; numeric
PolyBench pays more for `binary`/`local` than the diverse real-world code.
"""

from __future__ import annotations

import json
import statistics

from repro.eval import (FIGURE_GROUPS, POLYBENCH_FAST_SUBSET, baseline_runtime,
                        hook_dispatch_payload, instrumented_runtime,
                        overhead_sweep, polybench_workloads,
                        realworld_workloads, render_fig9)
from repro.eval.timing import bench_interpreter, interp_bench_payload
from repro.workloads.polybench import kernel_names

from conftest import full_run


def _geomean_for(reports, config):
    values = [r.relative_runtime for r in reports if r.config == config]
    return statistics.geometric_mean(values)


def test_fig9(benchmark, write_report):
    if full_run():
        poly_names = kernel_names()
        repeats = 3
    else:
        poly_names = POLYBENCH_FAST_SUBSET
        repeats = 1
    configs = FIGURE_GROUPS

    poly_reports = []
    for workload in polybench_workloads(poly_names):
        poly_reports.extend(overhead_sweep(workload, configs, repeats=repeats))
    pdf_workload, engine_workload = realworld_workloads(rounds=6)
    pdf_reports = overhead_sweep(pdf_workload, configs, repeats=repeats)
    engine_reports = overhead_sweep(engine_workload, configs, repeats=repeats)

    series = {
        f"PolyBench ({len(poly_names)})": poly_reports,
        "PSPDFKit~": pdf_reports,
        "UnrealEngine~": engine_reports,
    }
    write_report("fig9_runtime_overhead",
                 render_fig9(series, configs + ["all"]))

    # paper-shape assertions (geomean over the PolyBench subset):
    # (1) hooks for instructions that rarely/never execute cost ~nothing
    for cheap in ["nop", "unreachable", "memory_size", "memory_grow"]:
        assert _geomean_for(poly_reports, cheap) < 1.3
    # (2) the expensive hooks of the paper are the expensive hooks here
    assert _geomean_for(poly_reports, "binary") > 1.5
    assert _geomean_for(poly_reports, "local") > 1.5
    assert _geomean_for(poly_reports, "const") > 1.2
    # (3) 'all' dominates every single group
    all_overhead = _geomean_for(poly_reports, "all")
    for config in configs:
        assert all_overhead >= _geomean_for(poly_reports, config) * 0.9
    assert all_overhead > 3.0
    # (4) numeric PolyBench pays more for `binary` than the diverse code
    assert _geomean_for(poly_reports, "binary") >= \
        _geomean_for(engine_reports, "binary") * 0.8

    # the pytest-benchmark number: 'all'-instrumented gemm iteration
    gemm = polybench_workloads(["gemm"])[0]
    base = baseline_runtime(gemm, repeats=1)

    def run_all():
        return instrumented_runtime(gemm, "all", repeats=1)

    instrumented = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert instrumented > base


def test_hook_dispatch_speedup(benchmark, results_dir):
    """Perf floor for call-site-specialized hook dispatch.

    Measures, per hook group and for 'all', the relative runtime under
    generic dispatch (every event parses its location parameters and hits
    per-site dictionaries) and under pre-bound ``OP_HOOK`` dispatch on the
    same PolyBench subset, then asserts that specialization removes at
    least half of the 'all'-hooks overhead:
    geomean (generic-1)/(specialized-1) >= 2. Records BENCH_hooks.json.
    """
    repeats = 3 if full_run() else 1
    configs = ["const", "binary", "local", "load", "store", "call",
               "begin", "end", "all"]
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)
    payload = hook_dispatch_payload(workloads, configs=configs,
                                    repeats=repeats)

    path = results_dir / "BENCH_hooks.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for config, stats in payload["groups"].items():
        print(f"{config:12s} generic={stats['generic_overhead']:6.2f}x "
              f"specialized={stats['specialized_overhead']:6.2f}x "
              f"improvement={stats['overhead_improvement']:.2f}x")
    print(f"geomean 'all' overhead improvement: "
          f"{payload['geomean_improvement_all']:.2f}x [recorded in {path}]")

    assert payload["geomean_improvement_all"] >= 2.0, (
        f"site-specialized dispatch below the 2x hook-overhead floor: "
        f"{payload['geomean_improvement_all']:.2f}x")
    # every measured group must at least not regress under specialization
    for config, stats in payload["groups"].items():
        assert stats["specialized_overhead"] <= \
            stats["generic_overhead"] * 1.05, config

    # the pytest-benchmark number: 'all'-instrumented gemm, specialized path
    gemm = polybench_workloads(["gemm"])[0]
    benchmark.pedantic(
        lambda: instrumented_runtime(gemm, "all", repeats=1, specialize=True),
        rounds=1, iterations=1)


def test_interp_predecode_speedup(benchmark, results_dir):
    """Tentpole perf floor: the profile-guided engine (PGO fusion table +
    quickening) must stay ≥3× faster (geomean) than the legacy
    string-dispatch loop on the Fig. 9 PolyBench uninstrumented baseline,
    with no single workload below 1.8×. Records the numbers — each with
    its dynamic opcode-class mix, so per-workload regressions are
    diagnosable — as BENCH_interp.json, plus the recorded corpus profile
    and the fusion table derived from it (the closed profiler→dispatch
    loop of `repro pgo`).

    This doubles as the CI bench-smoke benchmark: the pytest-benchmark
    fixture times an uninstrumented gemm run on the quickened engine, and
    the CI job puts a wall-clock ceiling on the whole invocation so a
    catastrophic interpreter slowdown fails the build.
    """
    from repro.interp.pgo import (fusion_table_payload, merge_profiles,
                                  record_workload_profile, write_profile)

    repeats = 5 if full_run() else 3
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)

    # close the loop: deterministically record the corpus profile
    # (PolyBench subset + the synthetic real-world stand-ins, unfused
    # streams) and derive the fusion table the PGO column runs with
    profiles = {w.name: record_workload_profile(w)
                for w in workloads + realworld_workloads()}
    corpus_profile = merge_profiles(list(profiles.values()))
    fusion_table = fusion_table_payload(corpus_profile)
    write_profile(corpus_profile, results_dir / "PGO_corpus_profile.json")
    write_profile(fusion_table, results_dir / "PGO_fusion_table.json")

    reports = bench_interpreter(workloads, repeats=repeats,
                                fusion_table=fusion_table, profiles=profiles)
    payload = interp_bench_payload(reports, fusion_table=fusion_table)

    path = results_dir / "BENCH_interp.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for entry in payload["workloads"]:
        mix = ", ".join(f"{cls} {share:.0%}"
                        for cls, share in
                        list(entry["opcode_classes"].items())[:4])
        print(f"{entry['name']:16s} legacy={entry['legacy_seconds']:.4f}s "
              f"predecoded={entry['predecoded_seconds']:.4f}s "
              f"pgo={entry['pgo_seconds']:.4f}s "
              f"speedup={entry['speedup']:.2f}x "
              f"(predecode-only {entry['predecode_speedup']:.2f}x) [{mix}]")
    print(f"geomean speedup: {payload['geomean_speedup']:.2f}x "
          f"(predecode-only {payload['geomean_predecode_speedup']:.2f}x, "
          f"{len(fusion_table['pairs'])} fused pairs) [recorded in {path}]")

    assert payload["geomean_speedup"] >= 3.0, (
        f"PGO engine regressed below the 3x floor: "
        f"{payload['geomean_speedup']:.2f}x geomean")
    for entry in payload["workloads"]:
        assert entry["speedup"] >= 1.8, (
            f"{entry['name']} below the 1.8x per-workload floor: "
            f"{entry['speedup']:.2f}x")
    # gemm (memory-bound: dominated by f64 load/store + address arith) is
    # the named beneficiary of memory-op fusion and quickening
    gemm_entry = next(e for e in payload["workloads"] if e["name"] == "gemm")
    assert gemm_entry["speedup"] > gemm_entry["predecode_speedup"], (
        "PGO+quickening failed to improve gemm over the unquickened engine")

    # the pytest-benchmark number: uninstrumented gemm, quickened engine
    from repro.eval.timing import time_workload
    gemm = polybench_workloads(["gemm"])[0]
    benchmark.pedantic(lambda: time_workload(gemm, repeats=1, predecode=True,
                                             quicken=True),
                       rounds=1, iterations=1)
