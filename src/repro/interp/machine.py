"""The WebAssembly interpreter (our stand-in for the browser engine).

Executes validated modules with exact value semantics. Two execution engines
share the same observable behaviour:

* the **pre-decoded, direct-threaded engine** (default): function bodies are
  translated once by :mod:`repro.interp.predecode` into flat arrays of
  ``(opcode-id, operand, ...)`` tuples with constants pre-masked, arithmetic
  handlers pre-resolved, and block/else/end targets baked into the stream;
  the decoded form is cached per :class:`~repro.wasm.module.Function` so
  repeated instantiations decode once;
* the **legacy string-dispatch loop**, kept for differential testing: pass
  ``Machine(predecode=False)`` or set ``REPRO_PREDECODE=0``.

Function bodies are flat instruction lists; in the legacy engine a
per-function *matching table* maps each ``block``/``loop``/``if``/``else``
to its matching ``end``, so structured branches are O(1) jumps.
"""

from __future__ import annotations

import os
import struct
import sys
import time
from typing import TYPE_CHECKING, Sequence

from ..wasm.errors import ExhaustionError, ResourceExhausted, Trap, WasmError
from ..wasm.module import Function, Instr, Module
from ..wasm.numeric import f32_round
from ..wasm.types import FuncType, GlobalType, MemoryType, TableType, ValType
from .host import GlobalInstance, HostFunction, Linker
from .limits import Meter, ResourceLimits, ResourceUsage
from .memory import Memory
from .predecode import (OP_CALL, OP_CALL_INDIRECT, OP_CALL_INDIRECT_IC,
                        OP_CONST, OP_HOOK, DecodedFunction, cached_decode,
                        decode_function, oob_message)
from .table import Table
from .values import BINOPS, MASK32, MASK64, UNOPS, default_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs → interp)
    from ..obs.telemetry import Telemetry

#: Maximum nesting of WebAssembly calls before an exhaustion trap.
DEFAULT_MAX_CALL_DEPTH = 700


def predecode_default() -> bool:
    """Whether new machines pre-decode, from ``REPRO_PREDECODE`` (default on)."""
    return os.environ.get("REPRO_PREDECODE", "1").lower() not in ("0", "false", "no", "off")


def specialize_hooks_default() -> bool:
    """Whether hook call sites are fused into pre-bound ``OP_HOOK``
    dispatchers, from ``REPRO_SPECIALIZE_HOOKS`` (default on). Only
    meaningful on pre-decoding machines."""
    return os.environ.get("REPRO_SPECIALIZE_HOOKS", "1").lower() not in (
        "0", "false", "no", "off")


def quicken_default() -> bool:
    """Whether memory ops are quickened and ``call_indirect`` sites get
    inline caches, from ``REPRO_QUICKEN`` (default on). Only meaningful on
    pre-decoding machines; ``REPRO_QUICKEN=0`` is the escape hatch that
    restores the unquickened streams as a differential oracle."""
    return os.environ.get("REPRO_QUICKEN", "1").lower() not in (
        "0", "false", "no", "off")


class BlockMatching:
    """For one body: maps block-start indices to their ``else``/``end``.

    Used by the legacy execution loop only; the pre-decoded engine resolves
    these targets into the instruction stream at decode time.
    """

    __slots__ = ("end_of", "else_of")

    def __init__(self, body: list[Instr]):
        self.end_of: dict[int, int] = {}
        self.else_of: dict[int, int | None] = {}
        open_blocks: list[int] = []
        for idx, instr in enumerate(body):
            op = instr.op
            if op in ("block", "loop", "if"):
                open_blocks.append(idx)
                self.else_of[idx] = None
            elif op == "else":
                if not open_blocks:
                    raise WasmError("else outside any block")
                start = open_blocks[-1]
                self.else_of[start] = idx
                # the else "opens" the second arm; it shares the if's end
                self.end_of[idx] = -1  # patched when the end is found
            elif op == "end":
                if open_blocks:
                    start = open_blocks.pop()
                    self.end_of[start] = idx
                    else_idx = self.else_of.get(start)
                    if else_idx is not None:
                        self.end_of[else_idx] = idx
                # an end with no open block is the function's final end


def _generic_hook_dispatcher(host: HostFunction, extra: tuple):
    """Per-site dispatcher for a hook import *without* a site factory.

    Semantically identical to executing the original const/const/call
    sequence: the pre-fused constants are appended to the popped value args
    and the host function is called. Wasabi-generated dispatchers
    (``is_wasabi_hook``) are void by construction; anything else keeps the
    strict host-result check of the generic call path.
    """
    fn = host.fn
    if getattr(host, "is_wasabi_hook", False):
        if not extra:
            return fn

        def dispatch(values: list) -> None:
            values.extend(extra)
            fn(values)

        return dispatch

    def dispatch(values: list) -> None:
        if extra:
            values.extend(extra)
        raw = fn(values)
        if raw is not None:
            # a void import returning values is a host bug: reuse the strict
            # coercion path, which raises unless the result list is empty
            Machine._host_results(host, raw)

    return dispatch


def bind_hook_sites(decoded: DecodedFunction,
                    functions: list) -> DecodedFunction:
    """Specialize a decoded stream's hook call sites for one instance.

    For every recorded site, the linked host function is resolved and the
    site is rewritten into an ``OP_HOOK`` superinstruction carrying a
    pre-bound dispatcher closure:

    * hosts annotated with a ``site_factory`` (the Wasabi runtime's
      location-aware hooks) get a closure bound to this exact call site —
      Location, static info, and presentation converters all resolved once;
    * any other hook import gets a generic closure that merely pre-fuses
      the constant operands (still skipping per-event marshalling).

    The shared per-:class:`~repro.wasm.module.Function` decode cache is
    never mutated: the returned stream is a per-instance copy.
    """
    code = list(decoded.code)
    original = decoded.code
    for pc in decoded.hook_sites:
        ins = original[pc]
        if ins[0] != OP_CALL:  # pragma: no cover - sites always decode to calls
            continue
        host = functions[ins[1]]
        if not isinstance(host, HostFunction):  # pragma: no cover - imports are host fns
            continue
        n_params = ins[2]
        factory = getattr(host, "site_factory", None)
        # hosts built by the Wasabi runtime carry a site registry so that
        # fault containment can atomically swap specialized sites for the
        # shared no-op after a hook fault (quarantine policy)
        registry = getattr(host, "site_registry", None)
        if (pc >= 2 and n_params >= 2
                and original[pc - 1][0] == OP_CONST
                and original[pc - 2][0] == OP_CONST):
            func_const = original[pc - 2][1]
            instr_const = original[pc - 1][1]
            bound = None
            if factory is not None:
                try:
                    bound = factory(func_const, instr_const)
                except Exception:
                    # a site the runtime has no static info for: keep the
                    # generic path, which fails (or not) at event time
                    # exactly like the unspecialized engine
                    bound = None
            if bound is None:
                bound = _generic_hook_dispatcher(host, (func_const, instr_const))
            code[pc - 2] = (OP_HOOK, bound, n_params - 2, 3)
            if registry is not None:
                registry.append((code, pc - 2))
        else:
            # bare hook call (e.g. emit_locations=False): the host function
            # is itself the per-hook dispatcher; bind it without the
            # _invoke_callee indirection
            code[pc] = (OP_HOOK, _generic_hook_dispatcher(host, ()), n_params, 1)
            if registry is not None:
                registry.append((code, pc))
    return DecodedFunction(code, decoded.source_body, decoded.hook_sites,
                           decoded.indirect_sites)


def bind_indirect_caches(decoded: DecodedFunction,
                         instance: "Instance") -> DecodedFunction:
    """Rewrite a stream's ``call_indirect`` slots into inline-cache twins.

    Each recorded site becomes an ``OP_CALL_INDIRECT_IC`` tuple carrying a
    fresh mutable cache cell ``[last_table_idx, last_func_addr,
    last_callee]``. The cells memoize instance-resolved callees, so —
    unlike memory-op quickening, which is instance-independent and may
    rewrite the shared decoded stream in place — the returned stream is a
    per-instance copy. Cells are registered on the instance so snapshot
    restore can reset them (``restore_instance`` must never resurrect a
    callee resolved against pre-restore table state).
    """
    code = list(decoded.code)
    cells = instance._ic_cells
    for pc in decoded.indirect_sites:
        ins = code[pc]
        if ins[0] != OP_CALL_INDIRECT:  # pragma: no cover - sites decode to call_indirect
            continue
        cell: list = [None, None, None]
        code[pc] = (OP_CALL_INDIRECT_IC, ins[1], ins[2], cell)
        cells.append(cell)
    return DecodedFunction(code, decoded.source_body, decoded.hook_sites,
                           decoded.indirect_sites)


class WasmFunction:
    """A defined function bound to its instance, with precomputed dispatch.

    ``decoded`` holds the pre-decoded threaded stream (None on machines with
    ``predecode=False``); on machines with ``specialize_hooks`` the stream's
    hook call sites are rebound per instance into ``OP_HOOK`` dispatchers;
    ``matching`` is the legacy block-matching table, built lazily so
    pre-decoding machines never pay for it.
    """

    __slots__ = ("instance", "func", "functype", "local_types", "default_locals",
                 "result_arity", "decoded", "_matching")

    def __init__(self, instance: "Instance", func: Function, functype: FuncType):
        self.instance = instance
        self.func = func
        self.functype = functype
        self.local_types = list(func.locals)
        self.default_locals = [default_value(t) for t in func.locals]
        self.result_arity = len(functype.results)
        self._matching: BlockMatching | None = None
        machine = instance.machine
        if machine.predecode:
            if machine._profiling:
                # unfused, unquickened decode (uncached: the shared cache
                # holds fused streams) so profiled opcode and pair counts
                # attribute 1:1 to source instructions
                decoded = decode_function(func, instance.module, fuse=False)
                hit = False
            else:
                decoded, hit = cached_decode(func, instance.module,
                                             pairs=machine.fusion_pairs,
                                             quicken=machine.quicken)
            if decoded.indirect_sites:
                # per-instance copy with call_indirect inline caches; must
                # precede hook binding so the quarantine registry ends up
                # referencing the same (final) code list the engine runs
                decoded = bind_indirect_caches(decoded, instance)
            if decoded.hook_sites and machine.specialize_hooks:
                decoded = bind_hook_sites(decoded, instance.functions)
            self.decoded: DecodedFunction | None = decoded
            if hit:
                machine.predecode_cache_hits += 1
            else:
                machine.predecode_cache_misses += 1
        else:
            self.decoded = None
            # keep the legacy engine's eager instantiation-time validation
            self._matching = BlockMatching(func.body)

    @property
    def matching(self) -> BlockMatching:
        if self._matching is None:
            self._matching = BlockMatching(self.func.body)
        return self._matching

    @property
    def name(self) -> str:
        return self.func.name or "<anonymous>"


class Instance:
    """A module instance: runtime state plus executable functions."""

    def __init__(self, module: Module, machine: "Machine"):
        self.module = module
        self.machine = machine
        self.functions: list[HostFunction | WasmFunction] = []
        self.globals: list[GlobalInstance] = []
        self.memory: Memory | None = None
        self.table: Table | None = None
        self.exports: dict[str, tuple[str, object]] = {}
        #: call_indirect inline-cache cells bound into this instance's
        #: streams; snapshot restore resets them (see bind_indirect_caches)
        self._ic_cells: list[list] = []

    def invoke(self, name: str, args: Sequence[int | float] = ()) -> list[int | float]:
        """Call an exported function by name."""
        kind, item = self._export(name)
        if kind != "func":
            raise WasmError(f"export {name!r} is a {kind}, not a function")
        func_idx = item
        assert isinstance(func_idx, int)
        tele = self.machine._telemetry
        if tele is None:
            return self.machine.call(self, func_idx, list(args))
        with tele.span("invoke", export=name):
            return self.machine.call(self, func_idx, list(args))

    def exported_memory(self, name: str = "memory") -> Memory:
        kind, item = self._export(name)
        if kind != "memory":
            raise WasmError(f"export {name!r} is a {kind}, not a memory")
        assert isinstance(item, Memory)
        return item

    def exported_global(self, name: str) -> GlobalInstance:
        kind, item = self._export(name)
        if kind != "global":
            raise WasmError(f"export {name!r} is a {kind}, not a global")
        assert isinstance(item, GlobalInstance)
        return item

    def _export(self, name: str) -> tuple[str, object]:
        try:
            return self.exports[name]
        except KeyError:
            raise WasmError(f"no export named {name!r}") from None

    # -- state capture (repro.interp.snapshot) --------------------------------

    def snapshot(self):
        """Capture full instance state; only valid at invocation boundaries."""
        from .snapshot import snapshot_instance
        return snapshot_instance(self)

    def restore(self, snap) -> None:
        """Restore state captured by :meth:`snapshot` (same module shape)."""
        from .snapshot import restore_instance
        restore_instance(self, snap)


def _coerce(valtype: ValType, value: int | float) -> int | float:
    """Coerce a host-provided value to canonical runtime representation.

    Used for *arguments* crossing the host→wasm boundary, where JavaScript
    style leniency (truncation, masking) is the expected behaviour.
    """
    if valtype is ValType.I32:
        return int(value) & MASK32
    if valtype is ValType.I64:
        return int(value) & MASK64
    if valtype is ValType.F32:
        return f32_round(float(value))
    return float(value)


def _coerce_host_result(valtype: ValType, value: int | float,
                        name: str) -> int | float:
    """Coerce one host-function result, rejecting lossy conversions.

    A host function that returns a float for an integer result slot (or a
    non-numeric value for any slot) is a bug in the host code; silently
    truncating it would corrupt the executing program, so it raises.
    """
    if valtype is ValType.I32 or valtype is ValType.I64:
        if not isinstance(value, int):  # note: bool is an int subclass
            raise WasmError(
                f"host function {name} returned non-integer {value!r} "
                f"for an {valtype.value} result")
        return value & (MASK32 if valtype is ValType.I32 else MASK64)
    if not isinstance(value, (int, float)):
        raise WasmError(
            f"host function {name} returned non-numeric {value!r} "
            f"for an {valtype.value} result")
    if valtype is ValType.F32:
        return f32_round(float(value))
    return float(value)


class Machine:
    """Executes instances. One machine may host several instances.

    ``predecode`` selects the execution engine: True for the pre-decoded
    threaded loop, False for the legacy string-dispatch loop, None (default)
    to follow the ``REPRO_PREDECODE`` environment variable.

    ``specialize_hooks`` controls call-site-specialized hook dispatch on the
    pre-decoded engine (None follows ``REPRO_SPECIALIZE_HOOKS``, default
    on). With it disabled, hook calls take the generic host-call path —
    the differential oracle for the specialized dispatchers.

    ``limits`` attaches a :class:`~repro.interp.limits.ResourceLimits`
    bundle: fuel and wall-clock deadlines are charged on back-edges and
    calls in both engines (raising ``FuelExhausted``/``DeadlineExceeded``
    traps), ``max_memory_pages`` caps linear memory, and ``max_call_depth``
    overrides the machine default. Without limits no meter exists and the
    hot loops take their unmetered paths.

    ``telemetry`` attaches a :class:`~repro.obs.telemetry.Telemetry` sink:
    the engines charge its raw counters (calls, taken branches, traps,
    memory.grow) at exactly the Meter's charge sites, under the same
    hoisted ``is not None`` guard discipline — no telemetry, no cost. A
    telemetry with an attached profiler additionally reroutes pre-decoded
    execution through the counting loop (:meth:`_exec_profiled`) and makes
    new instances decode *unfused* so opcode counts attribute 1:1.

    ``replay`` attaches a :class:`~repro.interp.replay.Recorder` or
    :class:`~repro.interp.replay.Replayer`: host-function calls (except
    Wasabi's generated hooks, which must stay engine-independent) and the
    meter's clock reads are recorded or served from the log. Without it
    the host-call paths pay one hoisted ``is not None`` test.

    ``quicken`` controls instantiation-time quickening on the pre-decoded
    engine (None follows ``REPRO_QUICKEN``, default on): memory ops are
    wrapped in ``OP_QUICK`` trampolines that rewrite themselves to
    pre-bound ``struct.Struct`` twins on first execution, and
    ``call_indirect`` sites get per-instance monomorphic inline caches.
    ``REPRO_QUICKEN=0`` restores the unquickened streams exactly — the
    differential oracle for the quickened engine.

    ``pgo_profile`` selects a profile-guided superinstruction table: a
    path to (or loaded dict of) a ``repro.profile/1`` or ``repro.fusion/1``
    artifact, resolved through :func:`repro.interp.pgo.resolve_fusion_pairs`.
    Without it, fusion uses the hand-picked default pair set, unchanged.
    """

    def __init__(self, max_call_depth: int = DEFAULT_MAX_CALL_DEPTH,
                 predecode: bool | None = None,
                 specialize_hooks: bool | None = None,
                 limits: ResourceLimits | None = None,
                 telemetry: "Telemetry | None" = None,
                 replay=None,
                 quicken: bool | None = None,
                 pgo_profile=None):
        if limits is not None and limits.max_call_depth is not None:
            max_call_depth = limits.max_call_depth
        self.max_call_depth = max_call_depth
        self.predecode = predecode_default() if predecode is None else predecode
        self.specialize_hooks = (specialize_hooks_default()
                                 if specialize_hooks is None else specialize_hooks)
        self.quicken = quicken_default() if quicken is None else quicken
        if pgo_profile is None:
            self.fusion_pairs: frozenset[tuple[int, int]] | None = None
        else:
            from .pgo import resolve_fusion_pairs
            self.fusion_pairs = resolve_fusion_pairs(pgo_profile)
        self.limits = limits
        self._replay = replay
        if limits is not None and limits.metered:
            # the replay clock must wrap before Meter construction: arming
            # the deadline in Meter.__init__ already reads the clock
            clock = (time.monotonic if replay is None
                     else replay.bind_clock(time.monotonic))
            self._meter: Meter | None = Meter(limits, clock=clock)
        else:
            self._meter = None
        self._memories: list[Memory] = []
        #: Decoded-stream cache statistics for this machine's instantiations.
        self.predecode_cache_hits = 0
        self.predecode_cache_misses = 0
        self._depth = 0
        self._telemetry: "Telemetry | None" = None
        self._profiling = False
        self._run_decoded = self._exec_decoded
        if telemetry is not None:
            self._set_telemetry(telemetry)
        # The interpreter recurses ~2 Python frames per Wasm call.
        needed = 3 * max_call_depth + 200
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)

    def _set_telemetry(self, telemetry: "Telemetry") -> None:
        if telemetry.profiler is not None and not self.predecode:
            raise ValueError(
                "the self-profiler requires the pre-decoded engine "
                "(Machine(predecode=True))")
        self._telemetry = telemetry
        self._profiling = telemetry.profiler is not None
        self._run_decoded = (self._exec_profiled if self._profiling
                             else self._exec_decoded)
        replay = self._replay
        if replay is not None and replay.is_replaying:
            replay.telemetry = telemetry

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a telemetry sink (idempotent for the same instance).

        Attach *before* instantiating modules when profiling: only
        instances created while a profiler is attached decode unfused for
        1:1 opcode attribution.
        """
        if telemetry is self._telemetry:
            return
        if self._telemetry is not None:
            raise ValueError("machine already has a different telemetry sink")
        self._set_telemetry(telemetry)

    def resource_usage(self) -> ResourceUsage:
        """Summary of resources consumed so far (cumulative over invokes).

        ``fuel_spent``/``peak_depth`` are tracked only on metered machines;
        ``peak_pages`` always reflects the largest linear memory this
        machine instantiated (memories never shrink, so current == peak).
        """
        usage = ResourceUsage()
        if self._meter is not None:
            usage.fuel_spent = self._meter.fuel_spent_total
            usage.peak_depth = self._meter.peak_depth
        usage.peak_pages = max(
            (memory.size_pages for memory in self._memories), default=0)
        return usage

    # -- instantiation -------------------------------------------------------

    def instantiate(self, module: Module, linker: Linker | None = None,
                    run_start: bool = True) -> Instance:
        """Create an instance, resolving imports through ``linker``."""
        tele = self._telemetry
        if tele is None:
            return self._instantiate(module, linker, run_start)
        with tele.span("instantiate", functions=len(module.functions)):
            return self._instantiate(module, linker, run_start)

    def _instantiate(self, module: Module, linker: Linker | None,
                     run_start: bool) -> Instance:
        linker = linker or Linker()
        instance = Instance(module, self)

        for imp in module.imports:
            resolved = linker.resolve(imp.module, imp.name)
            desc = imp.desc
            if isinstance(desc, int):  # function import
                expected = module.types[desc]
                if not isinstance(resolved, HostFunction):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a function")
                if resolved.functype != expected:
                    raise WasmError(
                        f"import {imp.module}.{imp.name} has type "
                        f"{resolved.functype}, expected {expected}")
                instance.functions.append(resolved)
            elif isinstance(desc, MemoryType):
                if not isinstance(resolved, Memory):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a memory")
                self._check_memory_cap(resolved.size_pages,
                                       f"imported memory {imp.module}.{imp.name}")
                instance.memory = resolved
            elif isinstance(desc, TableType):
                if not isinstance(resolved, Table):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a table")
                instance.table = resolved
            elif isinstance(desc, GlobalType):
                if not isinstance(resolved, GlobalInstance):
                    raise WasmError(f"import {imp.module}.{imp.name} is not a global")
                instance.globals.append(resolved)
            else:  # pragma: no cover
                raise WasmError(f"bad import descriptor {desc!r}")

        for func in module.functions:
            instance.functions.append(
                WasmFunction(instance, func, module.types[func.type_idx]))
        for glob in module.globals:
            instance.globals.append(
                GlobalInstance(glob.type, self._eval_init(instance, glob.init,
                                                          glob.type.valtype)))
        cap = self.limits.max_memory_pages if self.limits is not None else None
        for memtype in module.memories:
            self._check_memory_cap(memtype.limits.minimum, "declared memory")
            instance.memory = Memory(memtype.limits, policy_max_pages=cap)
        for tabletype in module.tables:
            instance.table = Table(tabletype.limits)
        if instance.memory is not None and \
                not any(m is instance.memory for m in self._memories):
            self._memories.append(instance.memory)

        for segment in module.elements:
            if instance.table is None:
                raise WasmError("element segment without table")
            offset = self._eval_init(instance, segment.offset, ValType.I32)
            if offset + len(segment.func_idxs) > len(instance.table):
                raise Trap(f"element segment [{offset}, "
                           f"{offset + len(segment.func_idxs)}) out of table bounds")
            for i, func_idx in enumerate(segment.func_idxs):
                instance.table.set(offset + i, func_idx)
        for segment in module.data:
            if instance.memory is None:
                raise WasmError("data segment without memory")
            offset = self._eval_init(instance, segment.offset, ValType.I32)
            instance.memory.write(offset, segment.data)

        for export in module.exports:
            if export.kind == "func":
                instance.exports[export.name] = ("func", export.idx)
            elif export.kind == "memory":
                instance.exports[export.name] = ("memory", instance.memory)
            elif export.kind == "table":
                instance.exports[export.name] = ("table", instance.table)
            elif export.kind == "global":
                instance.exports[export.name] = ("global", instance.globals[export.idx])

        if run_start and module.start is not None:
            self.call(instance, module.start, [])
        return instance

    def _check_memory_cap(self, pages: int, what: str) -> None:
        """Refuse instantiation when initial memory already exceeds the cap."""
        if self.limits is None or self.limits.max_memory_pages is None:
            return
        if pages > self.limits.max_memory_pages:
            raise ResourceExhausted(
                f"{what} is {pages} pages, exceeding the "
                f"max_memory_pages limit of {self.limits.max_memory_pages}")

    def _eval_init(self, instance: Instance, init: list[Instr],
                   expected: ValType) -> int | float:
        if len(init) != 1:
            raise WasmError("initializer must be a single constant instruction")
        instr = init[0]
        if instr.op == "get_global":
            return instance.globals[instr.idx].value
        if instr.op.endswith(".const"):
            return _coerce(expected, instr.value)
        raise WasmError(f"non-constant initializer {instr.op}")

    # -- function calls ------------------------------------------------------------

    def call(self, instance: Instance, func_idx: int,
             args: list[int | float]) -> list[int | float]:
        """Call any function in the instance's function index space."""
        func = instance.functions[func_idx]
        functype = func.functype
        if len(args) != len(functype.params):
            raise WasmError(f"expected {len(functype.params)} arguments, "
                            f"got {len(args)}")
        args = [_coerce(t, v) for t, v in zip(functype.params, args)]

        if self._depth >= self.max_call_depth:
            raise ExhaustionError("call stack exhausted")
        meter = self._meter
        if meter is not None and self._depth == 0:
            # fuel and deadline budgets are per top-level invocation, so a
            # fresh invoke after an exhaustion trap gets a fresh budget
            meter.arm()
        tele = self._telemetry
        self._depth += 1
        try:
            if meter is not None:
                meter.enter_call(self._depth)
            if tele is not None:
                tele.n_calls += 1
            if isinstance(func, HostFunction):
                if tele is not None:
                    tele.n_host_calls += 1
                replay = self._replay
                if replay is not None and \
                        not getattr(func, "is_wasabi_hook", False) and \
                        not getattr(func, "is_wasi", False):
                    return replay.host_call(
                        func.name, args,
                        lambda: self._host_results(func, func.fn(args)))
                return self._host_results(func, func.fn(args))
            if func.decoded is not None:
                return self._run_decoded(func, args)
            return self._exec(func, args)
        except Trap:
            if tele is not None and self._depth == 1:
                # count only traps escaping the top-level invocation, not
                # each frame the same trap unwinds through
                tele.n_traps += 1
            raise
        finally:
            self._depth -= 1

    @staticmethod
    def _host_results(func: HostFunction, raw: object) -> list[int | float]:
        """Normalize and strictly coerce a host function's return value."""
        declared = func.functype.results
        if raw is None:
            results: list[int | float] = []
        elif isinstance(raw, (list, tuple)):
            results = list(raw)
        else:
            results = [raw]
        if len(results) != len(declared):
            raise WasmError(
                f"host function {func.name} returned {len(results)} "
                f"values, declared {len(declared)}")
        return [_coerce_host_result(t, v, func.name)
                for t, v in zip(declared, results)]

    def _invoke_callee(self, callee: "HostFunction | WasmFunction",
                       call_args: list[int | float]) -> list[int | float]:
        """Call sequence for the pre-decoded engine.

        Wasm values on the operand stack are already canonical, so wasm→wasm
        and wasm→host calls skip the argument re-coercion and arity check of
        :meth:`call` (the host-call fast path of the Wasabi runtime hooks).
        """
        if callee.__class__ is WasmFunction:
            if self._depth >= self.max_call_depth:
                raise ExhaustionError("call stack exhausted")
            self._depth += 1
            try:
                meter = self._meter
                if meter is not None:
                    meter.enter_call(self._depth)
                tele = self._telemetry
                if tele is not None:
                    tele.n_calls += 1
                if callee.decoded is not None:
                    return self._run_decoded(callee, call_args)
                return self._exec(callee, call_args)
            finally:
                self._depth -= 1
        meter = self._meter
        if meter is not None:
            # mirror the legacy engine, where host calls also pass through
            # call() and are charged as one call event
            meter.enter_call(self._depth + 1)
        tele = self._telemetry
        if tele is not None:
            tele.n_calls += 1
            tele.n_host_calls += 1
        replay = self._replay
        if replay is not None and \
                not getattr(callee, "is_wasabi_hook", False) and \
                not getattr(callee, "is_wasi", False):
            # Wasabi hooks stay un-recorded: specialized OP_HOOK sites
            # bypass this path entirely, so recording them here would make
            # logs depend on the engine and hook-dispatch mode. WASI
            # syscalls record themselves (with their memory writes) as
            # wasi_call entries and run live during replay.
            return replay.host_call(callee.name, call_args,
                                    lambda: self._host_invoke(callee, call_args))
        raw = callee.fn(call_args)
        if raw is None and not callee.functype.results:
            return _NO_RESULTS  # void host call: the hot hook path
        return self._host_results(callee, raw)

    def _host_invoke(self, callee: HostFunction,
                     call_args: list[int | float]) -> list[int | float]:
        raw = callee.fn(call_args)
        if raw is None and not callee.functype.results:
            return _NO_RESULTS
        return self._host_results(callee, raw)

    # -- the pre-decoded interpreter loop ------------------------------------------

    def _exec_decoded(self, wfunc: WasmFunction,
                      args: list[int | float]) -> list[int | float]:
        instance = wfunc.instance
        code = wfunc.decoded.code
        functions = instance.functions
        globals_ = instance.globals
        memory = instance.memory
        table = instance.table
        # memory.grow extends the bytearray in place, so its identity is
        # stable for the lifetime of the instance and safe to cache here
        memdata = memory.data if memory is not None else None
        locals_ = args + wfunc.default_locals
        stack: list[int | float] = []
        append = stack.append
        pop = stack.pop
        unpack_from = struct.unpack_from
        pack_into = struct.pack_into
        result_arity = wfunc.result_arity
        meter = self._meter
        tele = self._telemetry
        n_instrs = len(code)
        # label entries: (is_loop, block_pc, cont_pc, height, arity);
        # the implicit function block is the bottom-most label.
        labels: list[tuple[bool, int, int, int, int]] = [
            (False, -1, n_instrs, 0, result_arity)
        ]
        pc = 0

        try:
            while True:
                ins = code[pc]
                op = ins[0]

                if op >= 35:
                    # Extended opcodes — PGO-fused superinstructions (35-50)
                    # and quickened twins (51-56) — appear only in
                    # profile-guided or quickened streams. Dispatching them
                    # from this guarded side chain keeps the main chain in its
                    # original, hotness-tuned order: default streams pay
                    # exactly one extra range check per instruction.
                    if op >= 51:
                        if op == 57:  # OP_SEGMENT: (_, compiled_fn, span)
                            ins[1](stack, locals_, memdata)
                            pc += ins[2]
                            continue
                        elif op == 52:  # OP_QLOAD: (_, bound_unpack, offset, width)
                            addr = pop() + ins[2]
                            try:
                                append(ins[1](memdata, addr)[0])
                            except struct.error:
                                raise Trap(self._oob(ins[3], addr, memdata,
                                                     "load")) from None
                            pc += 1
                            continue
                        elif op == 54:  # OP_QSTORE: (_, bound_pack, offset, width)
                            value = pop()
                            addr = pop() + ins[2]
                            try:
                                ins[1](memdata, addr, value)
                            except struct.error:
                                raise Trap(self._oob(ins[3], addr, memdata,
                                                     "store")) from None
                            pc += 1
                            continue
                        elif op == 53:  # OP_QLOAD_MASK: (_, bound_unpack, offset,
                            #               mask, width)
                            addr = pop() + ins[2]
                            try:
                                append(ins[1](memdata, addr)[0] & ins[3])
                            except struct.error:
                                raise Trap(self._oob(ins[4], addr, memdata,
                                                     "load")) from None
                            pc += 1
                            continue
                        elif op == 55:  # OP_QSTORE_MASK: (_, bound_pack, offset,
                            #               mask, width)
                            value = pop()
                            addr = pop() + ins[2]
                            try:
                                ins[1](memdata, addr, value & ins[3])
                            except struct.error:
                                raise Trap(self._oob(ins[4], addr, memdata,
                                                     "store")) from None
                            pc += 1
                            continue
                        elif op == 56:  # OP_CALL_INDIRECT_IC: (_, expected,
                            #               n_params, cell)
                            table_idx = pop()
                            cell = ins[3]
                            if (cell[0] == table_idx
                                    and table.entries[table_idx] == cell[1]):
                                # monomorphic hit: same slot still holds the same
                                # function address, so the memoized callee is valid
                                callee = cell[2]
                            else:
                                func_addr = table.get(table_idx)
                                callee = functions[func_addr]
                                if callee.functype != ins[1]:
                                    raise Trap(
                                        f"indirect call type mismatch: entry "
                                        f"{table_idx} has {callee.functype}, "
                                        f"expected {ins[1]}")
                                cell[0] = table_idx
                                cell[1] = func_addr
                                cell[2] = callee
                            n_params = ins[2]
                            if n_params:
                                call_args = stack[-n_params:]
                                del stack[-n_params:]
                            else:
                                call_args = []
                            results = self._invoke_callee(callee, call_args)
                            if results:
                                stack.extend(results)
                            pc += 1
                            continue
                        else:  # op == 51, OP_QUICK: (_, quickened_twin)
                            # first execution of a quickenable slot: atomically
                            # swap in the pre-resolved twin and re-dispatch the
                            # same pc (the same slot-swap mechanism quarantine
                            # uses for hook sites)
                            code[pc] = ins[1]
                            continue
                    if op == 35:  # OP_BINARY_CONST (fused)
                        b = pop()
                        stack[-1] = ins[1](stack[-1], b)
                        append(ins[2])
                    elif op == 36:  # OP_BINARY_BINARY (fused)
                        b = pop()
                        a = pop()
                        stack[-1] = ins[2](stack[-1], ins[1](a, b))
                    elif op == 37:  # OP_BINARY_GET_LOCAL (fused)
                        b = pop()
                        stack[-1] = ins[1](stack[-1], b)
                        append(locals_[ins[2]])
                    elif op == 39:  # OP_CONST_CONST (fused)
                        append(ins[1])
                        append(ins[2])
                    elif op == 38:  # OP_CONST_GET_LOCAL (fused)
                        append(ins[1])
                        append(locals_[ins[2]])
                    elif op == 40:  # OP_BINARY_SET_LOCAL (fused)
                        b = pop()
                        locals_[ins[2]] = ins[1](pop(), b)
                    elif op == 41:  # OP_BINARY_UNARY (fused)
                        b = pop()
                        stack[-1] = ins[2](ins[1](stack[-1], b))
                    elif op == 43:  # OP_BINARY_LOAD_FLOAT (fused)
                        b = pop()
                        addr = ins[1](pop(), b) + ins[3]
                        try:
                            append(unpack_from(ins[2], memdata, addr)[0])
                        except struct.error:
                            raise Trap(self._oob(ins[2], addr, memdata,
                                                 "load")) from None
                    elif op == 47:  # OP_LOAD_FLOAT_BINARY (fused)
                        addr = pop() + ins[2]
                        try:
                            stack[-1] = ins[3](stack[-1],
                                               unpack_from(ins[1], memdata,
                                                           addr)[0])
                        except struct.error:
                            raise Trap(self._oob(ins[1], addr, memdata,
                                                 "load")) from None
                    elif op == 45:  # OP_BINARY_STORE_FLOAT (fused)
                        b = pop()
                        value = ins[1](pop(), b)
                        addr = pop() + ins[3]
                        try:
                            pack_into(ins[2], memdata, addr, value)
                        except struct.error:
                            raise Trap(self._oob(ins[2], addr, memdata,
                                                 "store")) from None
                    elif op == 50:  # OP_LOAD_FLOAT_CONST (fused)
                        addr = pop() + ins[2]
                        try:
                            append(unpack_from(ins[1], memdata, addr)[0])
                        except struct.error:
                            raise Trap(self._oob(ins[1], addr, memdata,
                                                 "load")) from None
                        append(ins[3])
                    elif op == 42:  # OP_UNARY_BR_IF (fused)
                        if ins[1](pop()):
                            if meter is not None:
                                meter.branch(len(stack))
                            if tele is not None:
                                tele.n_branches += 1
                            is_loop, block_pc, cont_pc, height, arity = \
                                labels[-1 - ins[2]]
                            if is_loop:
                                del stack[height:]
                                del labels[len(labels) - 1 - ins[2]:]
                                pc = block_pc
                                continue
                            if arity:
                                carried = stack[len(stack) - arity:]
                                del stack[height:]
                                stack.extend(carried)
                            else:
                                del stack[height:]
                            del labels[len(labels) - 1 - ins[2]:]
                            pc = cont_pc
                            continue
                    elif op == 44:  # OP_BINARY_LOAD_INT (fused)
                        b = pop()
                        addr = ins[1](pop(), b) + ins[3]
                        try:
                            append(unpack_from(ins[2], memdata, addr)[0] & ins[4])
                        except struct.error:
                            raise Trap(self._oob(ins[2], addr, memdata,
                                                 "load")) from None
                    elif op == 48:  # OP_LOAD_INT_BINARY (fused)
                        addr = pop() + ins[2]
                        try:
                            stack[-1] = ins[4](stack[-1],
                                               unpack_from(ins[1], memdata,
                                                           addr)[0] & ins[3])
                        except struct.error:
                            raise Trap(self._oob(ins[1], addr, memdata,
                                                 "load")) from None
                    elif op == 46:  # OP_BINARY_STORE_INT (fused)
                        b = pop()
                        value = ins[1](pop(), b)
                        addr = pop() + ins[3]
                        try:
                            pack_into(ins[2], memdata, addr, value & ins[4])
                        except struct.error:
                            raise Trap(self._oob(ins[2], addr, memdata,
                                                 "store")) from None
                    else:  # op == 49, OP_SET_LOCAL_CONST (fused)
                        locals_[ins[1]] = pop()
                        append(ins[2])
                    pc += 2
                    continue

                if op == 0:  # OP_GET_LOCAL
                    append(locals_[ins[1]])
                elif op == 1:  # OP_BINARY
                    b = pop()
                    stack[-1] = ins[1](stack[-1], b)
                elif op == 2:  # OP_CONST (pre-masked / pre-rounded)
                    append(ins[1])
                elif op == 3:  # OP_SET_LOCAL
                    locals_[ins[1]] = pop()
                elif op == 30:  # OP_GET_LOCAL_CONST (fused)
                    append(locals_[ins[1]])
                    append(ins[2])
                    pc += 2
                    continue
                elif op == 31:  # OP_CONST_BINARY (fused)
                    stack[-1] = ins[1](stack[-1], ins[2])
                    pc += 2
                    continue
                elif op == 32:  # OP_GET_LOCAL_BINARY (fused)
                    stack[-1] = ins[1](stack[-1], locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 33:  # OP_GET2_LOCAL (fused)
                    append(locals_[ins[1]])
                    append(locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 34:  # OP_HOOK: (_, bound_dispatcher, n_args, skip)
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    ins[1](call_args)
                    pc += ins[3]
                    continue
                elif op == 4:  # OP_LOAD_INT: (_, fmt, offset, mask)
                    addr = pop() + ins[2]
                    try:
                        append(unpack_from(ins[1], memdata, addr)[0] & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                elif op == 5:  # OP_LOAD_FLOAT: (_, fmt, offset)
                    addr = pop() + ins[2]
                    try:
                        append(unpack_from(ins[1], memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                elif op == 6:  # OP_STORE_INT: (_, fmt, offset, width_mask)
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        pack_into(ins[1], memdata, addr, value & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "store")) from None
                elif op == 7:  # OP_STORE_FLOAT: (_, fmt, offset)
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        pack_into(ins[1], memdata, addr, value)
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "store")) from None
                elif op == 8:  # OP_BR_IF
                    if pop():
                        if meter is not None:
                            meter.branch(len(stack))
                        if tele is not None:
                            tele.n_branches += 1
                        is_loop, block_pc, cont_pc, height, arity = labels[-1 - ins[1]]
                        if is_loop:
                            del stack[height:]
                            del labels[len(labels) - 1 - ins[1]:]
                            pc = block_pc
                            continue
                        if arity:
                            carried = stack[len(stack) - arity:]
                            del stack[height:]
                            stack.extend(carried)
                        else:
                            del stack[height:]
                        del labels[len(labels) - 1 - ins[1]:]
                        pc = cont_pc
                        continue
                elif op == 9:  # OP_UNARY
                    stack[-1] = ins[1](stack[-1])
                elif op == 10:  # OP_TEE_LOCAL
                    locals_[ins[1]] = stack[-1]
                elif op == 11:  # OP_BR
                    if meter is not None:
                        meter.branch(len(stack))
                    if tele is not None:
                        tele.n_branches += 1
                    is_loop, block_pc, cont_pc, height, arity = labels[-1 - ins[1]]
                    if is_loop:
                        del stack[height:]
                        del labels[len(labels) - 1 - ins[1]:]
                        pc = block_pc
                        continue
                    if arity:
                        carried = stack[len(stack) - arity:]
                        del stack[height:]
                        stack.extend(carried)
                    else:
                        del stack[height:]
                    del labels[len(labels) - 1 - ins[1]:]
                    pc = cont_pc
                    continue
                elif op == 12:  # OP_END
                    if labels:
                        labels.pop()
                    # the function's final end simply falls off the loop
                elif op == 13:  # OP_LOOP
                    labels.append((True, pc, pc + 1, len(stack), 0))
                elif op == 14:  # OP_IF: (_, cont_pc, arity, false_pc)
                    condition = pop()
                    labels.append((False, pc, ins[1], len(stack), ins[2]))
                    if not condition:
                        pc = ins[3]
                        continue
                elif op == 15:  # OP_BLOCK: (_, cont_pc, arity)
                    labels.append((False, pc, ins[1], len(stack), ins[2]))
                elif op == 16:  # OP_JUMP (else reached from the then-arm)
                    pc = ins[1]
                    continue
                elif op == 17:  # OP_CALL: (_, func_idx, n_params)
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    results = self._invoke_callee(functions[ins[1]], call_args)
                    if results:
                        stack.extend(results)
                elif op == 18:  # OP_RETURN
                    return stack[len(stack) - result_arity:]
                elif op == 19:  # OP_GET_GLOBAL
                    append(globals_[ins[1]].value)
                elif op == 20:  # OP_SET_GLOBAL
                    globals_[ins[1]].value = pop()
                elif op == 21:  # OP_SELECT
                    condition = pop()
                    second = pop()
                    first = pop()
                    append(first if condition else second)
                elif op == 22:  # OP_DROP
                    pop()
                elif op == 23:  # OP_CALL_INDIRECT: (_, expected_type, n_params)
                    table_idx = pop()
                    func_addr = table.get(table_idx)
                    callee = functions[func_addr]
                    if callee.functype != ins[1]:
                        raise Trap(f"indirect call type mismatch: entry {table_idx} "
                                   f"has {callee.functype}, expected {ins[1]}")
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    results = self._invoke_callee(callee, call_args)
                    if results:
                        stack.extend(results)
                elif op == 24:  # OP_BR_TABLE: (_, labels, default)
                    index = pop()
                    if meter is not None:
                        meter.branch(len(stack))
                    if tele is not None:
                        tele.n_branches += 1
                    table_labels = ins[1]
                    depth = table_labels[index] if index < len(table_labels) else ins[2]
                    is_loop, block_pc, cont_pc, height, arity = labels[-1 - depth]
                    if is_loop:
                        del stack[height:]
                        del labels[len(labels) - 1 - depth:]
                        pc = block_pc
                        continue
                    if arity:
                        carried = stack[len(stack) - arity:]
                        del stack[height:]
                        stack.extend(carried)
                    else:
                        del stack[height:]
                    del labels[len(labels) - 1 - depth:]
                    pc = cont_pc
                    continue
                elif op == 25:  # OP_MEMORY_SIZE
                    append(memory.size_pages)
                elif op == 26:  # OP_MEMORY_GROW
                    delta = pop()
                    append(memory.grow(delta) & MASK32)
                    if tele is not None:
                        tele.note_grow(memory.size_pages)
                elif op == 27:  # OP_NOP
                    pass
                elif op == 28:  # OP_UNREACHABLE
                    raise Trap("unreachable executed")
                else:  # OP_RAISE: malformed instruction decoded to a placeholder
                    raise ins[1]
                pc += 1
        except IndexError:
            # the only legitimate way out: pc reached the implicit
            # function end (falling off the final `end`, or a branch to
            # the function-level label). Anything else is a real bug in
            # a handler and is re-raised.
            if pc != n_instrs:
                raise
        return stack[len(stack) - result_arity:] if result_arity else []

    @staticmethod
    def _oob(fmt: str | int, addr: int, memdata: bytearray | None,
             what: str) -> str:
        # quickened twins carry the access width directly; base slots
        # carry the struct format string
        width = fmt if isinstance(fmt, int) else struct.calcsize(fmt)
        return oob_message(width, addr, memdata, what)

    # -- the profiled interpreter loop --------------------------------------------

    def _exec_profiled(self, wfunc: WasmFunction,
                       args: list[int | float]) -> list[int | float]:
        """Counting twin of :meth:`_exec_decoded` for the self-profiler.

        Identical observable semantics; additionally counts every executed
        instruction into the profiler's dense per-opcode array, attributes
        executed counts to the running function frame, and samples the live
        call stack every ``sample_interval`` instructions. Only bound as
        ``_run_decoded`` when the attached telemetry carries a profiler, so
        ordinary runs never pay for the counting.

        Functions instantiated under the profiler decode unfused, so the
        fused-pair opcodes normally never appear here; handlers for them
        are kept (counted under the ``fused`` class) so instances created
        *before* the profiler was attached still execute correctly.
        """
        profiler = self._telemetry.profiler
        op_counts = profiler.op_counts
        pair_counts = profiler.pair_counts
        interval = profiler.sample_interval
        instance = wfunc.instance
        code = wfunc.decoded.code
        functions = instance.functions
        globals_ = instance.globals
        memory = instance.memory
        table = instance.table
        memdata = memory.data if memory is not None else None
        locals_ = args + wfunc.default_locals
        stack: list[int | float] = []
        append = stack.append
        pop = stack.pop
        unpack_from = struct.unpack_from
        pack_into = struct.pack_into
        result_arity = wfunc.result_arity
        meter = self._meter
        tele = self._telemetry
        n_instrs = len(code)
        labels: list[tuple[bool, int, int, int, int]] = [
            (False, -1, n_instrs, 0, result_arity)
        ]
        pc = 0
        executed = 0
        # opcode-pair tracking: two instructions executed back to back at
        # adjacent pcs form one fusible pair (prev_base = prev_op * N)
        prev_pc = -2
        prev_base = 0
        n_opcodes = len(op_counts)

        profiler.enter(wfunc.name)
        try:
            while pc < n_instrs:
                ins = code[pc]
                op = ins[0]
                if op == 51:  # OP_QUICK: resolve the trampoline *before*
                    # counting, so the twin is charged exactly once per
                    # execution (never the trampoline plus the twin)
                    ins = code[pc] = ins[1]
                    op = ins[0]
                op_counts[op] += 1
                if prev_pc + 1 == pc:
                    pair_counts[prev_base + op] += 1
                prev_pc = pc
                prev_base = op * n_opcodes
                executed += 1
                profiler.ticks = ticks = profiler.ticks + 1
                if ticks >= profiler.next_sample:
                    profiler.sample()

                if op == 0:  # OP_GET_LOCAL
                    append(locals_[ins[1]])
                elif op == 1:  # OP_BINARY
                    b = pop()
                    stack[-1] = ins[1](stack[-1], b)
                elif op == 2:  # OP_CONST
                    append(ins[1])
                elif op == 3:  # OP_SET_LOCAL
                    locals_[ins[1]] = pop()
                elif op == 30:  # OP_GET_LOCAL_CONST (fused)
                    append(locals_[ins[1]])
                    append(ins[2])
                    pc += 2
                    continue
                elif op == 31:  # OP_CONST_BINARY (fused)
                    stack[-1] = ins[1](stack[-1], ins[2])
                    pc += 2
                    continue
                elif op == 32:  # OP_GET_LOCAL_BINARY (fused)
                    stack[-1] = ins[1](stack[-1], locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 33:  # OP_GET2_LOCAL (fused)
                    append(locals_[ins[1]])
                    append(locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 35:  # OP_BINARY_CONST (fused)
                    b = pop()
                    stack[-1] = ins[1](stack[-1], b)
                    append(ins[2])
                    pc += 2
                    continue
                elif op == 36:  # OP_BINARY_BINARY (fused)
                    b = pop()
                    a = pop()
                    stack[-1] = ins[2](stack[-1], ins[1](a, b))
                    pc += 2
                    continue
                elif op == 37:  # OP_BINARY_GET_LOCAL (fused)
                    b = pop()
                    stack[-1] = ins[1](stack[-1], b)
                    append(locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 38:  # OP_CONST_GET_LOCAL (fused)
                    append(ins[1])
                    append(locals_[ins[2]])
                    pc += 2
                    continue
                elif op == 39:  # OP_CONST_CONST (fused)
                    append(ins[1])
                    append(ins[2])
                    pc += 2
                    continue
                elif op == 40:  # OP_BINARY_SET_LOCAL (fused)
                    b = pop()
                    locals_[ins[2]] = ins[1](pop(), b)
                    pc += 2
                    continue
                elif op == 41:  # OP_BINARY_UNARY (fused)
                    b = pop()
                    stack[-1] = ins[2](ins[1](stack[-1], b))
                    pc += 2
                    continue
                elif op == 42:  # OP_UNARY_BR_IF (fused)
                    if ins[1](pop()):
                        if meter is not None:
                            meter.branch(len(stack))
                        tele.n_branches += 1
                        is_loop, block_pc, cont_pc, height, arity = \
                            labels[-1 - ins[2]]
                        if is_loop:
                            del stack[height:]
                            del labels[len(labels) - 1 - ins[2]:]
                            pc = block_pc
                            continue
                        if arity:
                            carried = stack[len(stack) - arity:]
                            del stack[height:]
                            stack.extend(carried)
                        else:
                            del stack[height:]
                        del labels[len(labels) - 1 - ins[2]:]
                        pc = cont_pc
                        continue
                    pc += 2
                    continue
                elif op == 43:  # OP_BINARY_LOAD_FLOAT (fused)
                    b = pop()
                    addr = ins[1](pop(), b) + ins[3]
                    try:
                        append(unpack_from(ins[2], memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[2], addr, memdata, "load")) from None
                    pc += 2
                    continue
                elif op == 44:  # OP_BINARY_LOAD_INT (fused)
                    b = pop()
                    addr = ins[1](pop(), b) + ins[3]
                    try:
                        append(unpack_from(ins[2], memdata, addr)[0] & ins[4])
                    except struct.error:
                        raise Trap(self._oob(ins[2], addr, memdata, "load")) from None
                    pc += 2
                    continue
                elif op == 45:  # OP_BINARY_STORE_FLOAT (fused)
                    b = pop()
                    value = ins[1](pop(), b)
                    addr = pop() + ins[3]
                    try:
                        pack_into(ins[2], memdata, addr, value)
                    except struct.error:
                        raise Trap(self._oob(ins[2], addr, memdata, "store")) from None
                    pc += 2
                    continue
                elif op == 46:  # OP_BINARY_STORE_INT (fused)
                    b = pop()
                    value = ins[1](pop(), b)
                    addr = pop() + ins[3]
                    try:
                        pack_into(ins[2], memdata, addr, value & ins[4])
                    except struct.error:
                        raise Trap(self._oob(ins[2], addr, memdata, "store")) from None
                    pc += 2
                    continue
                elif op == 47:  # OP_LOAD_FLOAT_BINARY (fused)
                    addr = pop() + ins[2]
                    try:
                        stack[-1] = ins[3](stack[-1],
                                           unpack_from(ins[1], memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                    pc += 2
                    continue
                elif op == 48:  # OP_LOAD_INT_BINARY (fused)
                    addr = pop() + ins[2]
                    try:
                        stack[-1] = ins[4](stack[-1],
                                           unpack_from(ins[1], memdata, addr)[0]
                                           & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                    pc += 2
                    continue
                elif op == 49:  # OP_SET_LOCAL_CONST (fused)
                    locals_[ins[1]] = pop()
                    append(ins[2])
                    pc += 2
                    continue
                elif op == 50:  # OP_LOAD_FLOAT_CONST (fused)
                    addr = pop() + ins[2]
                    try:
                        append(unpack_from(ins[1], memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                    append(ins[3])
                    pc += 2
                    continue
                elif op == 52:  # OP_QLOAD (quickened)
                    addr = pop() + ins[2]
                    try:
                        append(ins[1](memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[3], addr, memdata, "load")) from None
                elif op == 53:  # OP_QLOAD_MASK (quickened)
                    addr = pop() + ins[2]
                    try:
                        append(ins[1](memdata, addr)[0] & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[4], addr, memdata, "load")) from None
                elif op == 54:  # OP_QSTORE (quickened)
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        ins[1](memdata, addr, value)
                    except struct.error:
                        raise Trap(self._oob(ins[3], addr, memdata, "store")) from None
                elif op == 55:  # OP_QSTORE_MASK (quickened)
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        ins[1](memdata, addr, value & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[4], addr, memdata, "store")) from None
                elif op == 56:  # OP_CALL_INDIRECT_IC (quickened)
                    table_idx = pop()
                    cell = ins[3]
                    if cell[0] == table_idx and \
                            table.entries[table_idx] == cell[1]:
                        callee = cell[2]
                    else:
                        func_addr = table.get(table_idx)
                        callee = functions[func_addr]
                        if callee.functype != ins[1]:
                            raise Trap(
                                f"indirect call type mismatch: entry {table_idx} "
                                f"has {callee.functype}, expected {ins[1]}")
                        cell[0] = table_idx
                        cell[1] = func_addr
                        cell[2] = callee
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    results = self._invoke_callee(callee, call_args)
                    if results:
                        stack.extend(results)
                elif op == 34:  # OP_HOOK
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    ins[1](call_args)
                    pc += ins[3]
                    continue
                elif op == 4:  # OP_LOAD_INT
                    addr = pop() + ins[2]
                    try:
                        append(unpack_from(ins[1], memdata, addr)[0] & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                elif op == 5:  # OP_LOAD_FLOAT
                    addr = pop() + ins[2]
                    try:
                        append(unpack_from(ins[1], memdata, addr)[0])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "load")) from None
                elif op == 6:  # OP_STORE_INT
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        pack_into(ins[1], memdata, addr, value & ins[3])
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "store")) from None
                elif op == 7:  # OP_STORE_FLOAT
                    value = pop()
                    addr = pop() + ins[2]
                    try:
                        pack_into(ins[1], memdata, addr, value)
                    except struct.error:
                        raise Trap(self._oob(ins[1], addr, memdata, "store")) from None
                elif op == 8:  # OP_BR_IF
                    if pop():
                        if meter is not None:
                            meter.branch(len(stack))
                        tele.n_branches += 1
                        is_loop, block_pc, cont_pc, height, arity = labels[-1 - ins[1]]
                        if is_loop:
                            del stack[height:]
                            del labels[len(labels) - 1 - ins[1]:]
                            pc = block_pc
                            continue
                        if arity:
                            carried = stack[len(stack) - arity:]
                            del stack[height:]
                            stack.extend(carried)
                        else:
                            del stack[height:]
                        del labels[len(labels) - 1 - ins[1]:]
                        pc = cont_pc
                        continue
                elif op == 9:  # OP_UNARY
                    stack[-1] = ins[1](stack[-1])
                elif op == 10:  # OP_TEE_LOCAL
                    locals_[ins[1]] = stack[-1]
                elif op == 11:  # OP_BR
                    if meter is not None:
                        meter.branch(len(stack))
                    tele.n_branches += 1
                    is_loop, block_pc, cont_pc, height, arity = labels[-1 - ins[1]]
                    if is_loop:
                        del stack[height:]
                        del labels[len(labels) - 1 - ins[1]:]
                        pc = block_pc
                        continue
                    if arity:
                        carried = stack[len(stack) - arity:]
                        del stack[height:]
                        stack.extend(carried)
                    else:
                        del stack[height:]
                    del labels[len(labels) - 1 - ins[1]:]
                    pc = cont_pc
                    continue
                elif op == 12:  # OP_END
                    if labels:
                        labels.pop()
                elif op == 13:  # OP_LOOP
                    labels.append((True, pc, pc + 1, len(stack), 0))
                elif op == 14:  # OP_IF
                    condition = pop()
                    labels.append((False, pc, ins[1], len(stack), ins[2]))
                    if not condition:
                        pc = ins[3]
                        continue
                elif op == 15:  # OP_BLOCK
                    labels.append((False, pc, ins[1], len(stack), ins[2]))
                elif op == 16:  # OP_JUMP
                    pc = ins[1]
                    continue
                elif op == 17:  # OP_CALL
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    results = self._invoke_callee(functions[ins[1]], call_args)
                    if results:
                        stack.extend(results)
                elif op == 18:  # OP_RETURN
                    return stack[len(stack) - result_arity:]
                elif op == 19:  # OP_GET_GLOBAL
                    append(globals_[ins[1]].value)
                elif op == 20:  # OP_SET_GLOBAL
                    globals_[ins[1]].value = pop()
                elif op == 21:  # OP_SELECT
                    condition = pop()
                    second = pop()
                    first = pop()
                    append(first if condition else second)
                elif op == 22:  # OP_DROP
                    pop()
                elif op == 23:  # OP_CALL_INDIRECT
                    table_idx = pop()
                    func_addr = table.get(table_idx)
                    callee = functions[func_addr]
                    if callee.functype != ins[1]:
                        raise Trap(f"indirect call type mismatch: entry {table_idx} "
                                   f"has {callee.functype}, expected {ins[1]}")
                    n_params = ins[2]
                    if n_params:
                        call_args = stack[-n_params:]
                        del stack[-n_params:]
                    else:
                        call_args = []
                    results = self._invoke_callee(callee, call_args)
                    if results:
                        stack.extend(results)
                elif op == 24:  # OP_BR_TABLE
                    index = pop()
                    if meter is not None:
                        meter.branch(len(stack))
                    tele.n_branches += 1
                    table_labels = ins[1]
                    depth = table_labels[index] if index < len(table_labels) else ins[2]
                    is_loop, block_pc, cont_pc, height, arity = labels[-1 - depth]
                    if is_loop:
                        del stack[height:]
                        del labels[len(labels) - 1 - depth:]
                        pc = block_pc
                        continue
                    if arity:
                        carried = stack[len(stack) - arity:]
                        del stack[height:]
                        stack.extend(carried)
                    else:
                        del stack[height:]
                    del labels[len(labels) - 1 - depth:]
                    pc = cont_pc
                    continue
                elif op == 25:  # OP_MEMORY_SIZE
                    append(memory.size_pages)
                elif op == 26:  # OP_MEMORY_GROW
                    delta = pop()
                    append(memory.grow(delta) & MASK32)
                    tele.note_grow(memory.size_pages)
                elif op == 27:  # OP_NOP
                    pass
                elif op == 28:  # OP_UNREACHABLE
                    raise Trap("unreachable executed")
                else:  # OP_RAISE
                    raise ins[1]
                pc += 1

            return stack[len(stack) - result_arity:] if result_arity else []
        finally:
            profiler.exit(executed)

    # -- the legacy interpreter loop ---------------------------------------------

    def _exec(self, wfunc: WasmFunction, args: list[int | float]) -> list[int | float]:
        instance = wfunc.instance
        body = wfunc.func.body
        matching = wfunc.matching
        locals_: list[int | float] = args + [default_value(t)
                                             for t in wfunc.local_types]
        stack: list[int | float] = []
        result_arity = len(wfunc.functype.results)
        meter = self._meter
        tele = self._telemetry
        pc = 0
        n_instrs = len(body)
        # label entries: (is_loop, block_pc, cont_pc, height, arity);
        # the implicit function block is the bottom-most label (its final
        # `end` pops it, and a branch to it returns from the function).
        labels: list[tuple[bool, int, int, int, int]] = [
            (False, -1, n_instrs, 0, result_arity)
        ]

        while pc < n_instrs:
            instr = body[pc]
            op = instr.op

            binop = BINOPS.get(op)
            if binop is not None:
                b = stack.pop()
                stack[-1] = binop(stack[-1], b)
                pc += 1
                continue
            unop = UNOPS.get(op)
            if unop is not None:
                stack[-1] = unop(stack[-1])
                pc += 1
                continue

            if op == "get_local":
                stack.append(locals_[instr.idx])
            elif op == "set_local":
                locals_[instr.idx] = stack.pop()
            elif op == "tee_local":
                locals_[instr.idx] = stack[-1]
            elif op == "i32.const":
                stack.append(instr.value & MASK32)
            elif op == "i64.const":
                stack.append(instr.value & MASK64)
            elif op == "f32.const":
                stack.append(f32_round(instr.value))
            elif op == "f64.const":
                stack.append(float(instr.value))
            elif ".load" in op:
                addr = stack.pop()
                stack.append(instance.memory.load(op, addr + instr.memarg.offset))
            elif ".store" in op:
                value = stack.pop()
                addr = stack.pop()
                instance.memory.store(op, addr + instr.memarg.offset, value)
            elif op == "block":
                arity = 0 if instr.blocktype is None else 1
                end_idx = matching.end_of[pc]
                labels.append((False, pc, end_idx + 1, len(stack), arity))
            elif op == "loop":
                labels.append((True, pc, pc + 1, len(stack), 0))
            elif op == "if":
                condition = stack.pop()
                arity = 0 if instr.blocktype is None else 1
                end_idx = matching.end_of[pc]
                labels.append((False, pc, end_idx + 1, len(stack), arity))
                if not condition:
                    else_idx = matching.else_of.get(pc)
                    if else_idx is not None:
                        pc = else_idx  # fall onto the else, skip to its body
                    else:
                        pc = end_idx - 1  # land on the end, which pops the label
            elif op == "else":
                # reached from the then-arm: skip to the matching end
                pc = matching.end_of[pc] - 1
            elif op == "end":
                if labels:
                    labels.pop()
                # the function's final end simply falls off the loop
            elif op == "br":
                if meter is not None:
                    meter.branch(len(stack))
                if tele is not None:
                    tele.n_branches += 1
                pc = self._branch(instr.label, labels, stack)
                continue
            elif op == "br_if":
                if stack.pop():
                    if meter is not None:
                        meter.branch(len(stack))
                    if tele is not None:
                        tele.n_branches += 1
                    pc = self._branch(instr.label, labels, stack)
                    continue
            elif op == "br_table":
                index = stack.pop()
                if meter is not None:
                    meter.branch(len(stack))
                if tele is not None:
                    tele.n_branches += 1
                table_imm = instr.br_table
                if index < len(table_imm.labels):
                    label = table_imm.labels[index]
                else:
                    label = table_imm.default
                pc = self._branch(label, labels, stack)
                continue
            elif op == "return":
                return stack[len(stack) - result_arity:]
            elif op == "call":
                callee = instance.functions[instr.idx]
                n_params = len(callee.functype.params)
                call_args = stack[len(stack) - n_params:] if n_params else []
                del stack[len(stack) - n_params:]
                stack.extend(self.call(instance, instr.idx, call_args))
            elif op == "call_indirect":
                expected = instance.module.types[instr.idx]
                table_idx = stack.pop()
                func_addr = instance.table.get(table_idx)
                callee = instance.functions[func_addr]
                if callee.functype != expected:
                    raise Trap(f"indirect call type mismatch: entry {table_idx} "
                               f"has {callee.functype}, expected {expected}")
                n_params = len(expected.params)
                call_args = stack[len(stack) - n_params:] if n_params else []
                del stack[len(stack) - n_params:]
                stack.extend(self.call(instance, func_addr, call_args))
            elif op == "drop":
                stack.pop()
            elif op == "select":
                condition = stack.pop()
                second = stack.pop()
                first = stack.pop()
                stack.append(first if condition else second)
            elif op == "get_global":
                stack.append(instance.globals[instr.idx].value)
            elif op == "set_global":
                instance.globals[instr.idx].value = stack.pop()
            elif op == "memory.size":
                stack.append(instance.memory.size_pages)
            elif op == "memory.grow":
                delta = stack.pop()
                stack.append(instance.memory.grow(delta) & MASK32)
                if tele is not None:
                    tele.note_grow(instance.memory.size_pages)
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise Trap("unreachable executed")
            else:  # pragma: no cover - validation excludes this
                raise WasmError(f"cannot execute {op}")
            pc += 1

        return stack[len(stack) - result_arity:] if result_arity else []

    @staticmethod
    def _branch(label: int, labels: list[tuple[bool, int, int, int, int]],
                stack: list[int | float]) -> int:
        """Perform a branch; returns the new pc."""
        is_loop, block_pc, cont_pc, height, arity = labels[-1 - label]
        if is_loop:
            # jump back to the loop instruction itself; it re-pushes its label
            del stack[height:]
            del labels[len(labels) - 1 - label:]
            return block_pc
        if arity:
            carried = stack[len(stack) - arity:]
            del stack[height:]
            stack.extend(carried)
        else:
            del stack[height:]
        del labels[len(labels) - 1 - label:]
        return cont_pc


#: Shared empty result list for void host calls. Never mutated.
_NO_RESULTS: list[int | float] = []


def instantiate(module: Module, linker: Linker | None = None,
                run_start: bool = True,
                machine: Machine | None = None) -> Instance:
    """Convenience wrapper: instantiate ``module`` on a fresh machine."""
    machine = machine or Machine()
    return machine.instantiate(module, linker, run_start=run_start)
