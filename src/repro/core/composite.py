"""Running several analyses in one instrumented execution.

Wasabi instruments for the *union* of the hooks the analyses implement and
fans every event out to each analysis that implements it. Selective
instrumentation still applies: an instruction class is only instrumented
if at least one member analysis observes it.
"""

from __future__ import annotations

from typing import Sequence

from .analysis import Analysis, HOOK_METHOD_TO_GROUP, used_groups


class CompositeAnalysis(Analysis):
    """Fans hook events out to several member analyses."""

    def __init__(self, analyses: Sequence[Analysis]):
        self.analyses = list(analyses)
        hook_methods = list(HOOK_METHOD_TO_GROUP) + ["start"]
        for method in hook_methods:
            receivers = [getattr(analysis, method) for analysis in self.analyses
                         if getattr(type(analysis), method)
                         is not getattr(Analysis, method)]
            if receivers:
                setattr(self, method, _fan_out(receivers))

    def groups(self) -> frozenset[str]:
        out: set[str] = set()
        for analysis in self.analyses:
            out |= used_groups(analysis)
        return frozenset(out)


def _fan_out(receivers):
    if len(receivers) == 1:
        return receivers[0]

    def dispatch(*args, **kwargs):
        for receiver in receivers:
            receiver(*args, **kwargs)

    return dispatch
