"""The abstract control stack (paper §2.4.4, Figure 6).

While instrumenting, Wasabi tracks the nesting of blocks. Each frame
records the block kind and the locations of its ``begin`` and matching
``end`` instruction. The stack answers two static questions:

* what absolute location does a branch with relative label *n* lead to
  (resolving relative labels, §2.4.4), and
* which blocks' ``end`` hooks must fire when a branch/return jumps out of
  them (dynamic block nesting, §2.4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wasm.errors import WasmError
from ..wasm.module import Instr
from .analysis import BranchTarget, Location


@dataclass(frozen=True)
class ControlFrame:
    """One abstract control stack entry (cf. Figure 6 in the paper)."""

    kind: str        # 'function' | 'block' | 'loop' | 'if' | 'else'
    begin: int       # original instruction index of the begin (-1 = function)
    end: int         # original instruction index of the matching end


def match_blocks(body: list[Instr]) -> dict[int, int]:
    """Map each block-opening (and ``else``) instruction index to its ``end``.

    The function's implicit block is keyed by -1 and maps to the final end.
    """
    matching: dict[int, int] = {}
    open_blocks: list[int] = [-1]
    else_of_open: dict[int, int] = {}
    for idx, instr in enumerate(body):
        op = instr.op
        if op in ("block", "loop", "if"):
            open_blocks.append(idx)
        elif op == "else":
            if len(open_blocks) <= 1:
                raise WasmError("else outside any block")
            else_of_open[open_blocks[-1]] = idx
        elif op == "end":
            start = open_blocks.pop()
            matching[start] = idx
            if start in else_of_open:
                matching[else_of_open.pop(start)] = idx
    if open_blocks:
        raise WasmError(f"{len(open_blocks)} unclosed block(s)")
    return matching


class ControlStack:
    """Maintained by the instrumenter as it walks a function body."""

    def __init__(self, func_idx: int, body: list[Instr]):
        self.func_idx = func_idx
        self.matching = match_blocks(body)
        self.frames: list[ControlFrame] = [
            ControlFrame("function", -1, self.matching[-1])
        ]

    # -- walking ----------------------------------------------------------------

    def enter(self, kind: str, begin_idx: int) -> ControlFrame:
        frame = ControlFrame(kind, begin_idx, self.matching[begin_idx])
        self.frames.append(frame)
        return frame

    def enter_else(self, else_idx: int) -> tuple[ControlFrame, ControlFrame]:
        """Swap the top ``if`` frame for an ``else`` frame.

        Returns ``(if_frame, else_frame)`` so the instrumenter can emit the
        if-arm's end hook and the else-arm's begin hook.
        """
        if_frame = self.frames.pop()
        if if_frame.kind != "if":
            raise WasmError("else without matching if frame")
        else_frame = ControlFrame("else", else_idx, self.matching[else_idx])
        self.frames.append(else_frame)
        return if_frame, else_frame

    def exit(self) -> ControlFrame:
        if not self.frames:
            raise WasmError("control stack underflow")
        return self.frames.pop()

    @property
    def top(self) -> ControlFrame:
        return self.frames[-1]

    @property
    def depth(self) -> int:
        return len(self.frames)

    # -- static queries (the paper's §2.4.4 / §2.4.5) ------------------------------

    def frame_for_label(self, label: int) -> ControlFrame:
        if label >= len(self.frames):
            raise WasmError(f"branch label {label} exceeds nesting {len(self.frames) - 1}")
        return self.frames[-1 - label]

    def resolve_label(self, label: int) -> BranchTarget:
        """Resolve a relative branch label to an absolute location.

        For a ``loop`` the next executed instruction is the first one in the
        loop body (a backward jump); for every other block kind it is the
        instruction after the matching ``end`` (a forward jump).
        """
        frame = self.frame_for_label(label)
        if frame.kind == "loop":
            instr_idx = frame.begin + 1
        else:
            instr_idx = frame.end + 1
        return BranchTarget(label, Location(self.func_idx, instr_idx))

    def traversed_frames(self, label: int) -> list[ControlFrame]:
        """Frames whose ``end`` hooks fire when branching to ``label``.

        All frames between the current top (inclusive) and the branch
        target (inclusive), top-most first (paper §2.4.5).
        """
        return list(reversed(self.frames[len(self.frames) - 1 - label:]))

    def all_frames_for_return(self) -> list[ControlFrame]:
        """Frames whose ``end`` hooks fire on ``return``: everything up to
        and including the function block."""
        return list(reversed(self.frames))
