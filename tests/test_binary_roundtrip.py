"""Binary format: encode/decode units plus whole-module roundtrip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (DecodeError, Instr, Limits, Module, decode_module,
                        encode_module, validate_module)
from repro.wasm.builder import ModuleBuilder
from repro.wasm.decoder import _Reader, decode_instr
from repro.wasm.encoder import MAGIC, VERSION, encode_instr
from repro.wasm.module import BrTable, MemArg
from repro.wasm.types import F32, F64, I32, I64, FuncType, GlobalType
from repro.workloads import engine_demo, pdf_toolkit
from repro.workloads.polybench import compile_kernel, kernel_names
from repro.workloads.spec_corpus import corpus


def roundtrip(module: Module) -> bytes:
    raw = encode_module(module)
    decoded = decode_module(raw)
    raw2 = encode_module(decoded)
    assert raw == raw2, "re-encoding after decode changed the binary"
    return raw


class TestInstrEncoding:
    def assert_instr_roundtrip(self, instr: Instr):
        raw = encode_instr(instr)
        decoded = decode_instr(_Reader(raw))
        assert encode_instr(decoded) == raw

    def test_simple(self):
        self.assert_instr_roundtrip(Instr("i32.add"))

    def test_const_immediates(self):
        for instr in [Instr("i32.const", value=-42),
                      Instr("i64.const", value=1 << 62),
                      Instr("f32.const", value=1.5),
                      Instr("f64.const", value=-2.25)]:
            self.assert_instr_roundtrip(instr)

    def test_memarg(self):
        self.assert_instr_roundtrip(Instr("f64.load", memarg=MemArg(3, 4096)))

    def test_br_table(self):
        self.assert_instr_roundtrip(
            Instr("br_table", br_table=BrTable((0, 1, 5), 2)))

    def test_block_types(self):
        for bt in [None, I32, I64, F32, F64]:
            self.assert_instr_roundtrip(Instr("block", blocktype=bt))

    def test_call_indirect_reserved_byte(self):
        raw = encode_instr(Instr("call_indirect", idx=3))
        assert raw[-1] == 0x00
        broken = raw[:-1] + b"\x01"
        with pytest.raises(DecodeError):
            decode_instr(_Reader(broken))

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_i32_const_roundtrip(self, value):
        decoded = decode_instr(_Reader(encode_instr(Instr("i32.const", value=value))))
        assert decoded.value == value

    @given(st.floats(allow_nan=False, width=32))
    def test_f32_const_roundtrip(self, value):
        decoded = decode_instr(_Reader(encode_instr(Instr("f32.const", value=value))))
        assert decoded.value == value


class TestModuleStructure:
    def test_header(self, add_module):
        raw = encode_module(add_module)
        assert raw.startswith(MAGIC + VERSION)

    def test_bad_magic_rejected(self):
        with pytest.raises(DecodeError):
            decode_module(b"\x00nope\x01\x00\x00\x00")

    def test_bad_version_rejected(self):
        with pytest.raises(DecodeError):
            decode_module(MAGIC + b"\x02\x00\x00\x00")

    def test_sections_out_of_order_rejected(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,))
        fb.i32_const(7)
        fb.finish()
        raw = bytearray(encode_module(builder.build()))
        # find the type section (id=1) and function section (id=3); swap ids
        # crudely by duplicating a later section id earlier: simplest is to
        # append an out-of-order section at the end
        raw += bytes([1, 1, 0])  # empty type section after code section
        with pytest.raises(DecodeError):
            decode_module(bytes(raw))

    def test_roundtrip_preserves_names(self, fib_module):
        raw = encode_module(fib_module)
        decoded = decode_module(raw)
        assert decoded.name == "fib"
        assert decoded.functions[0].name == "fib"

    def test_roundtrip_preserves_custom_sections(self, add_module):
        from repro.wasm.module import CustomSection
        add_module.custom_sections.append(CustomSection("vendor", b"\x01\x02"))
        decoded = decode_module(encode_module(add_module))
        assert decoded.custom_sections == [CustomSection("vendor", b"\x01\x02")]

    def test_imports_globals_table_memory(self):
        builder = ModuleBuilder("full")
        builder.import_function("env", "f", FuncType((I64,), (F64,)))
        builder.import_memory("env", "mem", Limits(1, 10))
        builder.import_global("env", "g", GlobalType(I32, mutable=False))
        builder.add_global(F64, mutable=True, init=3.5, export="gg")
        builder.add_table(4, 8)
        fb = builder.function((), (), name="t", export="t")
        fb.emit("nop")
        fb.finish()
        builder.add_element(1, [fb.func_idx])
        module = builder.build()
        decoded = decode_module(roundtrip(module))
        assert decoded.num_imported_functions == 1
        assert len(decoded.imported_memories()) == 1
        assert len(decoded.imported_globals()) == 1
        assert decoded.tables[0].limits == Limits(4, 8)
        assert decoded.elements[0].func_idxs == [1]

    def test_data_segments(self):
        builder = ModuleBuilder()
        builder.add_memory(1)
        builder.add_data(16, b"hello wasm")
        decoded = decode_module(roundtrip(builder.build()))
        assert decoded.data[0].data == b"hello wasm"

    def test_start_section(self):
        builder = ModuleBuilder()
        glob = builder.add_global(I32, mutable=True, init=0)
        fb = builder.function((), (), name="init")
        fb.i32_const(1).set_global(glob)
        fb.finish()
        builder.set_start(fb.func_idx)
        decoded = decode_module(roundtrip(builder.build()))
        assert decoded.start == 0

    def test_truncated_binary_rejected(self, fib_module):
        raw = encode_module(fib_module)
        with pytest.raises(DecodeError):
            decode_module(raw[:len(raw) - 3])


class TestCorpusRoundtrip:
    """Whole-program roundtrips over every workload family."""

    @pytest.mark.parametrize("name", kernel_names())
    def test_polybench_roundtrip(self, name):
        module = compile_kernel(name)
        decoded = decode_module(roundtrip(module))
        validate_module(decoded)
        assert decoded.instruction_count() == module.instruction_count()

    def test_synthetic_roundtrip(self):
        for module in (engine_demo(), pdf_toolkit()):
            decoded = decode_module(roundtrip(module))
            validate_module(decoded)

    def test_spec_corpus_roundtrip(self):
        for program in corpus()[:40]:
            roundtrip(program.module)


@st.composite
def random_expression_module(draw):
    """Small random — but always valid — modules: straight-line arithmetic."""
    ops_i32 = ["i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or",
               "i32.xor", "i32.shl", "i32.rotl"]
    builder = ModuleBuilder()
    fb = builder.function((I32,), (I32,), export="run")
    fb.get_local(0)
    for _ in range(draw(st.integers(min_value=1, max_value=20))):
        fb.i32_const(draw(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1)))
        fb.emit(draw(st.sampled_from(ops_i32)))
    fb.finish()
    return builder.build()


class TestPropertyRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(random_expression_module())
    def test_random_module_roundtrip_and_validate(self, module):
        decoded = decode_module(roundtrip(module))
        validate_module(decoded)
