"""A WebAssembly interpreter with exact MVP semantics.

Stands in for the browser engine the paper runs instrumented binaries on.
Two engines share the same observable behaviour: the default pre-decoded
threaded loop (see :mod:`repro.interp.predecode`) and the legacy
string-dispatch loop (``Machine(predecode=False)`` / ``REPRO_PREDECODE=0``),
kept for differential testing.
"""

from .host import GlobalInstance, HostFunction, Linker
from .limits import (DEADLINE_CHECK_INTERVAL, Meter, ResourceLimits,
                     ResourceUsage)
from .machine import (DEFAULT_MAX_CALL_DEPTH, Instance, Machine, WasmFunction,
                      bind_hook_sites, instantiate, predecode_default,
                      specialize_hooks_default)
from .memory import Memory
from .predecode import (HOOK_IMPORT_MODULE, DecodedFunction, cached_decode,
                        decode_function)
from .table import Table

__all__ = [
    "DEADLINE_CHECK_INTERVAL", "DEFAULT_MAX_CALL_DEPTH", "DecodedFunction",
    "GlobalInstance", "HOOK_IMPORT_MODULE", "HostFunction", "Instance",
    "Linker", "Machine", "Memory", "Meter", "ResourceLimits", "ResourceUsage",
    "Table", "WasmFunction", "bind_hook_sites", "cached_decode",
    "decode_function", "instantiate", "predecode_default",
    "specialize_hooks_default",
]
