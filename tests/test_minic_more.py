"""Additional MiniC coverage: globals, casts matrix, errors, kernels helpers."""

import pytest

from repro.interp import Machine
from repro.minic import ParseError, TypeError_, compile_source
from repro.wasm import validate_module


def run(source, entry="f", args=()):
    module = compile_source(source)
    validate_module(module)
    return Machine().instantiate(module).invoke(entry, args)


class TestCastMatrix:
    CASES = [
        ("i32", "i64", 7, 7),
        ("i32", "f32", -3, -3.0),
        ("i32", "f64", 12, 12.0),
        ("i64", "i32", (1 << 32) + 9, 9),
        ("i64", "f64", 1 << 40, float(1 << 40)),
        ("f32", "f64", 1.5, 1.5),
        ("f64", "f32", 2.5, 2.5),
        ("f64", "i32", -7.9, (-7) & 0xFFFFFFFF),
        ("f64", "i64", 9.99, 9),
        ("f32", "i32", 3.5, 3),
    ]

    @pytest.mark.parametrize("src_t,dst_t,value,expected", CASES)
    def test_cast(self, src_t, dst_t, value, expected):
        result = run(f"export func f(x: {src_t}) -> {dst_t} "
                     f"{{ return {dst_t}(x); }}", args=(value,))
        assert result == [expected]

    def test_identity_cast(self):
        assert run("export func f(x: i32) -> i32 { return i32(x); }",
                   args=(5,)) == [5]


class TestGlobalsAndStart:
    def test_global_literal_coercion(self):
        module = compile_source("""
            global g: f64 = 3;
            export func f() -> f64 { return g; }
        """)
        assert Machine().instantiate(module).invoke("f") == [3.0]

    def test_global_requires_literal(self):
        with pytest.raises(TypeError_, match="literal"):
            compile_source("""
                func make() -> i32 { return 1; }
                global g: i32 = make();
            """)

    def test_unknown_start_function(self):
        with pytest.raises(TypeError_, match="not found"):
            compile_source("start nothing;")

    def test_start_with_params_rejected(self):
        with pytest.raises(TypeError_, match="start"):
            compile_source("func s(x: i32) {} start s;")


class TestParserErrors:
    def test_duplicate_memory(self):
        with pytest.raises(ParseError, match="duplicate memory"):
            compile_source("memory 1; memory 2;")

    def test_duplicate_table(self):
        with pytest.raises(ParseError, match="duplicate table"):
            compile_source("func a() {} table [a]; table [a];")

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment"):
            compile_source("export func f() { 1 + 2 = 3; }")

    def test_table_entry_must_be_function(self):
        with pytest.raises(TypeError_, match="not a function"):
            compile_source("global g: i32 = 0; table [g];")

    def test_unknown_indirect_type(self):
        with pytest.raises(TypeError_, match="undefined function type"):
            compile_source("""
                export func f() -> i32 { return call_indirect[nope](0); }
            """)


class TestSemanticsCorners:
    def test_while_zero_iterations(self):
        assert run("""
            export func f() -> i32 {
                var n: i32 = 0;
                while (0) { n = n + 1; }
                return n;
            }
        """) == [0]

    def test_for_without_clauses(self):
        assert run("""
            export func f() -> i32 {
                var n: i32 = 0;
                for (;;) {
                    n = n + 1;
                    if (n == 5) { break; }
                }
                return n;
            }
        """) == [5]

    def test_deeply_nested_expression(self):
        expr = "1"
        for _ in range(30):
            expr = f"({expr} + 1)"
        assert run(f"export func f() -> i32 {{ return {expr}; }}") == [31]

    def test_logical_ops_normalize_to_bool(self):
        assert run("export func f(a: i32, b: i32) -> i32 { return a && b; }",
                   args=(7, 9)) == [1]
        assert run("export func f(a: i32, b: i32) -> i32 { return a || b; }",
                   args=(0, 0)) == [0]

    def test_remainder_sign(self):
        assert run("export func f(a: i32, b: i32) -> i32 { return a % b; }",
                   args=(-7, 3)) == [(-1) & 0xFFFFFFFF]

    def test_memory_grow_in_expression(self):
        assert run("""
            memory 1;
            export func f() -> i32 {
                return memory_grow(1) + memory_size();
            }
        """) == [3]  # grow returns 1 (old size), size is then 2

    def test_i64_shift_by_i64(self):
        assert run("export func f(x: i64) -> i64 { return x >> 2L; }",
                   args=(-8,)) == [((-8 >> 2)) & ((1 << 64) - 1)]

    def test_hex_literals(self):
        assert run("export func f() -> i32 { return 0xFF & 0x0F; }") == [15]
