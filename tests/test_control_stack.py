"""The abstract control stack: label resolution and traversed blocks (§2.4.4/5)."""

import pytest

from repro.core.analysis import Location
from repro.core.control import ControlStack, match_blocks
from repro.wasm import Instr, WasmError


def body(*ops):
    return [Instr(op) if isinstance(op, str) else op for op in ops]


class TestMatchBlocks:
    def test_function_block(self):
        matching = match_blocks(body("nop", "end"))
        assert matching == {-1: 1}

    def test_nested(self):
        instrs = body("block", "block", "end", "end", "end")
        matching = match_blocks(instrs)
        assert matching == {1: 2, 0: 3, -1: 4}

    def test_if_else(self):
        instrs = body("if", "nop", "else", "nop", "end", "end")
        matching = match_blocks(instrs)
        assert matching[0] == 4      # if -> its end
        assert matching[2] == 4      # else -> the same end
        assert matching[-1] == 5

    def test_unbalanced_rejected(self):
        with pytest.raises(WasmError):
            match_blocks(body("block", "end"))  # function end missing


class TestPaperExample:
    """The example of Table 3 row 5 / Figure 6: block containing a loop."""

    def setup_method(self):
        # indices:       0        1       2        3     4      5
        self.body = body("block", "loop", "nop", "br", "end", "end", "end")
        self.ctrl = ControlStack(0, self.body)
        self.ctrl.enter("block", 0)
        self.ctrl.enter("loop", 1)

    def test_control_stack_matches_figure6(self):
        frames = self.ctrl.frames
        assert [(f.kind, f.begin, f.end) for f in frames] == [
            ("function", -1, 6), ("block", 0, 5), ("loop", 1, 4)]

    def test_br_label_1_resolves_past_block_end(self):
        # br 1 targets the block; next instruction is after its end (idx 6)
        target = self.ctrl.resolve_label(1)
        assert target.label == 1
        assert target.location == Location(0, 6)

    def test_br_label_0_resolves_to_loop_body_start(self):
        target = self.ctrl.resolve_label(0)
        assert target.location == Location(0, 2)  # first instr in loop

    def test_traversed_frames_include_target(self):
        # branching to the block "ends" both the loop and the block
        traversed = self.ctrl.traversed_frames(1)
        assert [f.kind for f in traversed] == ["loop", "block"]

    def test_return_traverses_everything(self):
        frames = self.ctrl.all_frames_for_return()
        assert [f.kind for f in frames] == ["loop", "block", "function"]

    def test_label_out_of_range(self):
        with pytest.raises(WasmError):
            self.ctrl.resolve_label(5)


class TestEnterExit:
    def test_else_swaps_frame(self):
        instrs = body("if", "nop", "else", "nop", "end", "end")
        ctrl = ControlStack(3, instrs)
        ctrl.enter("if", 0)
        if_frame, else_frame = ctrl.enter_else(2)
        assert if_frame.kind == "if" and if_frame.begin == 0
        assert else_frame.kind == "else" and else_frame.begin == 2
        assert else_frame.end == 4
        assert ctrl.top is else_frame

    def test_else_without_if_rejected(self):
        instrs = body("block", "nop", "end", "end")
        ctrl = ControlStack(0, instrs)
        ctrl.enter("block", 0)
        with pytest.raises(WasmError):
            ctrl.enter_else(1)

    def test_exit_pops(self):
        instrs = body("block", "end", "end")
        ctrl = ControlStack(0, instrs)
        ctrl.enter("block", 0)
        frame = ctrl.exit()
        assert frame.kind == "block"
        assert ctrl.top.kind == "function"
