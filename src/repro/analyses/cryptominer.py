"""Cryptominer detection by instruction profiling (paper Figure 1).

The re-implementation of the profiling part of SEISMIC [Wang et al. 2018]:
mining algorithms have a distinctive signature of integer binary
instructions (add/and/shl/shr_u/xor). Ten lines of analysis logic in the
paper; the rest here is reporting.
"""

from __future__ import annotations

from ..core.analysis import Analysis

#: The instruction signature monitored in the paper's Figure 1.
SIGNATURE_OPS = ("i32.add", "i32.and", "i32.shl", "i32.shr_u", "i32.xor")


class CryptominerDetector(Analysis):
    """Gathers the Figure-1 signature from the ``binary`` hook."""

    def __init__(self, threshold: float = 0.5, min_total: int = 1000):
        self.signature: dict[str, int] = {}
        self.total_binary = 0
        self.threshold = threshold
        self.min_total = min_total

    def binary(self, location, op, first, second, result):
        self.total_binary += 1
        if op in SIGNATURE_OPS:
            self.signature[op] = self.signature.get(op, 0) + 1

    # reporting ------------------------------------------------------------------

    @property
    def signature_fraction(self) -> float:
        if self.total_binary == 0:
            return 0.0
        return sum(self.signature.values()) / self.total_binary

    def is_suspicious(self) -> bool:
        """A mining-like profile: mostly hash-style integer ops, and *all*
        five signature instructions present (hash rounds use every one)."""
        return (self.total_binary >= self.min_total
                and self.signature_fraction >= self.threshold
                and all(op in self.signature for op in SIGNATURE_OPS))
