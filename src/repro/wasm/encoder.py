"""Encoder for the WebAssembly binary format (spec 1.0 / MVP).

Produces complete ``.wasm`` binaries, including an optional name section
carrying function names. Integer immediates are written in canonical
(minimal-length) LEB128; as the paper notes (§4.5), this occasionally makes
instrumented binaries *smaller* than their input.
"""

from __future__ import annotations

import struct

from . import leb128, opcodes
from .errors import EncodeError
from .module import (BrTable, DataSegment, ElemSegment, Export,
                     Function, Global, Import, Instr, MemArg, Module)
from .numeric import to_signed
from .types import (EMPTY_BLOCKTYPE_BYTE, VALTYPE_TO_BYTE, FuncType,
                    GlobalType, Limits, MemoryType, TableType, ValType)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_SECTION_IDS = {
    "custom": 0, "type": 1, "import": 2, "function": 3, "table": 4,
    "memory": 5, "global": 6, "export": 7, "start": 8, "element": 9,
    "code": 10, "data": 11,
}


def _u32(value: int) -> bytes:
    return leb128.encode_unsigned(value)


def _name(text: str) -> bytes:
    raw = text.encode("utf-8")
    return _u32(len(raw)) + raw


def _vec(items: list[bytes]) -> bytes:
    return _u32(len(items)) + b"".join(items)


def encode_valtype(valtype: ValType) -> bytes:
    return bytes([VALTYPE_TO_BYTE[valtype]])


def encode_functype(functype: FuncType) -> bytes:
    if len(functype.results) > 1:
        raise EncodeError(
            f"the MVP binary format allows at most one result, got {functype}")
    return (b"\x60"
            + _vec([encode_valtype(t) for t in functype.params])
            + _vec([encode_valtype(t) for t in functype.results]))


def encode_limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return b"\x00" + _u32(limits.minimum)
    return b"\x01" + _u32(limits.minimum) + _u32(limits.maximum)


def encode_globaltype(globaltype: GlobalType) -> bytes:
    return encode_valtype(globaltype.valtype) + (b"\x01" if globaltype.mutable else b"\x00")


def encode_tabletype(tabletype: TableType) -> bytes:
    return b"\x70" + encode_limits(tabletype.limits)  # 0x70 = funcref


def encode_instr(instr: Instr) -> bytes:
    """Encode a single instruction (opcode byte + immediates)."""
    op = opcodes.BY_NAME.get(instr.op)
    if op is None:
        raise EncodeError(f"unknown mnemonic {instr.op!r}")
    out = bytearray([op.byte])
    imm = op.imm
    if imm is opcodes.Imm.NONE:
        pass
    elif imm is opcodes.Imm.BLOCKTYPE:
        if instr.blocktype is None:
            out.append(EMPTY_BLOCKTYPE_BYTE)
        else:
            out.append(VALTYPE_TO_BYTE[instr.blocktype])
    elif imm is opcodes.Imm.LABEL:
        out += _u32(instr.label)
    elif imm is opcodes.Imm.BR_TABLE:
        table: BrTable = instr.br_table
        out += _vec([_u32(lbl) for lbl in table.labels])
        out += _u32(table.default)
    elif imm is opcodes.Imm.FUNC_IDX or imm is opcodes.Imm.LOCAL_IDX \
            or imm is opcodes.Imm.GLOBAL_IDX:
        out += _u32(instr.idx)
    elif imm is opcodes.Imm.TYPE_IDX:
        out += _u32(instr.idx)
        out.append(0x00)  # reserved table index
    elif imm is opcodes.Imm.MEMARG:
        memarg: MemArg = instr.memarg or MemArg()
        out += _u32(memarg.align) + _u32(memarg.offset)
    elif imm is opcodes.Imm.MEM_IDX:
        out.append(0x00)  # reserved memory index
    elif imm is opcodes.Imm.CONST_I32:
        out += leb128.encode_signed(to_signed(int(instr.value), 32))
    elif imm is opcodes.Imm.CONST_I64:
        out += leb128.encode_signed(to_signed(int(instr.value), 64))
    elif imm is opcodes.Imm.CONST_F32:
        out += struct.pack("<f", instr.value)
    elif imm is opcodes.Imm.CONST_F64:
        out += struct.pack("<d", instr.value)
    else:  # pragma: no cover - exhaustive
        raise EncodeError(f"unhandled immediate kind {imm}")
    return bytes(out)


def encode_expr(body: list[Instr], *, terminated: bool = False) -> bytes:
    """Encode an instruction sequence, appending ``end`` unless already present."""
    out = bytearray()
    for instr in body:
        out += encode_instr(instr)
    if not terminated:
        out += b"\x0b"
    return bytes(out)


def _encode_import(imp: Import) -> bytes:
    out = _name(imp.module) + _name(imp.name)
    desc = imp.desc
    if isinstance(desc, int):
        return out + b"\x00" + _u32(desc)
    if isinstance(desc, TableType):
        return out + b"\x01" + encode_tabletype(desc)
    if isinstance(desc, MemoryType):
        return out + b"\x02" + encode_limits(desc.limits)
    if isinstance(desc, GlobalType):
        return out + b"\x03" + encode_globaltype(desc)
    raise EncodeError(f"bad import descriptor {desc!r}")


_EXPORT_KIND = {"func": 0, "table": 1, "memory": 2, "global": 3}


def _encode_export(export: Export) -> bytes:
    return _name(export.name) + bytes([_EXPORT_KIND[export.kind]]) + _u32(export.idx)


def _encode_global(glob: Global) -> bytes:
    return encode_globaltype(glob.type) + encode_expr(glob.init)


def _encode_elem(segment: ElemSegment) -> bytes:
    return (b"\x00" + encode_expr(segment.offset)
            + _vec([_u32(idx) for idx in segment.func_idxs]))


def _encode_data(segment: DataSegment) -> bytes:
    return (b"\x00" + encode_expr(segment.offset)
            + _u32(len(segment.data)) + segment.data)


def _encode_code(func: Function) -> bytes:
    # Run-length compress consecutive locals of the same type.
    groups: list[tuple[int, ValType]] = []
    for valtype in func.locals:
        if groups and groups[-1][1] == valtype:
            groups[-1] = (groups[-1][0] + 1, valtype)
        else:
            groups.append((1, valtype))
    body = _vec([_u32(count) + encode_valtype(t) for count, t in groups])
    body += encode_expr(func.body, terminated=_ends_with_end(func.body))
    return _u32(len(body)) + body


def _ends_with_end(body: list[Instr]) -> bool:
    return bool(body) and body[-1].op == "end"


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + _u32(len(payload)) + payload


def _name_section(module: Module) -> bytes | None:
    subsections = bytearray()
    if module.name is not None:
        subsections += b"\x00" + _u32(len(_name(module.name))) + _name(module.name)
    named = [(module.num_imported_functions + i, f.name)
             for i, f in enumerate(module.functions) if f.name]
    if named:
        assoc = _vec([_u32(idx) + _name(name) for idx, name in named])
        subsections += b"\x01" + _u32(len(assoc)) + assoc
    if not subsections:
        return None
    payload = _name("name") + bytes(subsections)
    return _section(0, payload)


def encode_module(module: Module) -> bytes:
    """Serialize a :class:`Module` to a complete ``.wasm`` binary."""
    out = bytearray(MAGIC + VERSION)
    if module.types:
        out += _section(1, _vec([encode_functype(t) for t in module.types]))
    if module.imports:
        out += _section(2, _vec([_encode_import(i) for i in module.imports]))
    if module.functions:
        out += _section(3, _vec([_u32(f.type_idx) for f in module.functions]))
    if module.tables:
        out += _section(4, _vec([encode_tabletype(t) for t in module.tables]))
    if module.memories:
        out += _section(5, _vec([encode_limits(m.limits) for m in module.memories]))
    if module.globals:
        out += _section(6, _vec([_encode_global(g) for g in module.globals]))
    if module.exports:
        out += _section(7, _vec([_encode_export(e) for e in module.exports]))
    if module.start is not None:
        out += _section(8, _u32(module.start))
    if module.elements:
        out += _section(9, _vec([_encode_elem(e) for e in module.elements]))
    if module.functions:
        out += _section(10, _vec([_encode_code(f) for f in module.functions]))
    if module.data:
        out += _section(11, _vec([_encode_data(d) for d in module.data]))
    name_sec = _name_section(module)
    if name_sec:
        out += name_sec
    for custom in module.custom_sections:
        out += _section(0, _name(custom.name) + custom.payload)
    return bytes(out)
