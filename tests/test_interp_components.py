"""Unit tests for interpreter components: Memory, Table, Linker, host glue."""

import pytest
from hypothesis import given, strategies as st

from repro.interp.host import GlobalInstance, HostFunction, Linker
from repro.interp.memory import Memory
from repro.interp.table import Table
from repro.wasm import Trap, WasmError
from repro.wasm.types import F64, I32, PAGE_SIZE, FuncType, GlobalType, Limits


class TestMemory:
    def test_initial_size(self):
        memory = Memory(Limits(2))
        assert memory.size_pages == 2
        assert memory.size_bytes == 2 * PAGE_SIZE
        assert memory.read(0, 4) == b"\x00\x00\x00\x00"

    def test_write_read(self):
        memory = Memory(Limits(1))
        memory.write(100, b"\xde\xad\xbe\xef")
        assert memory.read(100, 4) == b"\xde\xad\xbe\xef"

    def test_bounds_check(self):
        memory = Memory(Limits(1))
        with pytest.raises(Trap, match="out of bounds"):
            memory.read(PAGE_SIZE - 3, 4)
        with pytest.raises(Trap):
            memory.write(PAGE_SIZE, b"\x01")
        # last valid byte
        memory.write(PAGE_SIZE - 1, b"\x01")

    def test_grow(self):
        memory = Memory(Limits(1, 3))
        assert memory.grow(1) == 1
        assert memory.size_pages == 2
        assert memory.grow(2) == -1  # beyond max
        assert memory.size_pages == 2
        assert memory.grow(0) == 2

    def test_grow_unbounded_capped_at_4gib(self):
        memory = Memory(Limits(0))
        assert memory.grow(70000) == -1

    def test_typed_load_store(self):
        memory = Memory(Limits(1))
        memory.store("i64.store", 8, 0x1122334455667788)
        assert memory.load("i64.load", 8) == 0x1122334455667788
        assert memory.load("i32.load", 8) == 0x55667788
        assert memory.load("i32.load8_u", 8) == 0x88
        assert memory.load("i32.load8_s", 8) == 0xFFFFFF88  # sign-extended
        memory.store("f64.store", 32, -2.5)
        assert memory.load("f64.load", 32) == -2.5

    def test_narrow_store_truncates(self):
        memory = Memory(Limits(1))
        memory.store("i32.store8", 0, 0x1FF)
        assert memory.load("i32.load8_u", 0) == 0xFF
        memory.store("i64.store32", 16, (1 << 40) | 7)
        assert memory.load("i64.load32_u", 16) == 7

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_i64_roundtrip(self, value):
        memory = Memory(Limits(1))
        memory.store("i64.store", 0, value)
        assert memory.load("i64.load", 0) == value

    @given(st.integers(min_value=-2 ** 15, max_value=2 ** 15 - 1))
    def test_sign_extension_consistent(self, value):
        memory = Memory(Limits(1))
        memory.store("i32.store16", 0, value & 0xFFFF)
        loaded = memory.load("i32.load16_s", 0)
        assert loaded == value & 0xFFFFFFFF


class TestTable:
    def test_basic(self):
        table = Table(Limits(3))
        assert len(table) == 3
        table.set(1, 42)
        assert table.get(1) == 42
        assert table.lookup(1) == 42

    def test_uninitialized_traps(self):
        table = Table(Limits(2))
        with pytest.raises(Trap, match="uninitialized"):
            table.get(0)
        assert table.lookup(0) is None

    def test_out_of_bounds_traps(self):
        table = Table(Limits(2))
        with pytest.raises(Trap, match="out of bounds"):
            table.get(5)
        assert table.lookup(5) is None
        with pytest.raises(Trap):
            table.set(5, 1)


class TestLinker:
    def test_resolution(self):
        linker = Linker()
        linker.define("a", "b", 42)
        assert linker.resolve("a", "b") == 42

    def test_unresolved(self):
        with pytest.raises(WasmError, match="unresolved import"):
            Linker().resolve("env", "missing")

    def test_define_function(self):
        linker = Linker()
        linker.define_function("env", "f", FuncType((I32,), (I32,)),
                               lambda args: args[0])
        host = linker.resolve("env", "f")
        assert isinstance(host, HostFunction)
        assert host.functype == FuncType((I32,), (I32,))

    def test_define_memory_and_global(self):
        linker = Linker()
        memory = linker.define_memory("env", "mem", Limits(1))
        assert isinstance(memory, Memory)
        box = linker.define_global("env", "g", GlobalType(F64), 2.5)
        assert isinstance(box, GlobalInstance)
        assert box.value == 2.5

    def test_import_type_checked_at_instantiation(self, machine):
        from repro.wasm.builder import ModuleBuilder
        builder = ModuleBuilder()
        builder.import_function("env", "f", FuncType((I32,), (I32,)))
        fb = builder.function((), ())
        fb.finish()
        linker = Linker()
        linker.define_function("env", "f", FuncType((), ()), lambda args: None)
        with pytest.raises(WasmError, match="has type"):
            machine.instantiate(builder.build(), linker)

    def test_shared_memory_between_host_and_module(self, machine):
        from repro.wasm.builder import ModuleBuilder
        builder = ModuleBuilder()
        builder.import_memory("env", "mem", Limits(1))
        fb = builder.function((), (I32,), export="peek")
        fb.i32_const(4)
        fb.load("i32.load")
        fb.finish()
        linker = Linker()
        memory = linker.define_memory("env", "mem", Limits(1))
        instance = machine.instantiate(builder.build(), linker)
        memory.store("i32.store", 4, 777)
        assert instance.invoke("peek") == [777]
