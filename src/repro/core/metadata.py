"""Static information generated alongside the instrumented binary.

The paper's "generate" step (Figure 2) produces, next to the instrumented
binary, (a) the low-level hook definitions and (b) static information the
runtime needs to enrich low-level events into high-level hook calls:
resolved branch targets, memory-access offsets, variable indices, call
targets, block begin/end matching, and general module info
(``Wasabi.module.info``).

All locations and function indices refer to the *original* module, so
analyses are insulated from the index shifts instrumentation introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..wasm.module import Module
from ..wasm.types import FuncType, GlobalType
from .analysis import BranchTarget, Location
from .hooks import HookSpec


@dataclass(frozen=True)
class FunctionInfo:
    """Static description of one function (original index space)."""

    idx: int
    name: str
    type: FuncType
    imported: bool
    export_names: tuple[str, ...] = ()
    instr_count: int = 0


@dataclass(frozen=True)
class EndEvent:
    """One block end that fires when a br_table entry is taken (§2.4.5)."""

    kind: str
    begin: Location
    end: Location


@dataclass(frozen=True)
class BrTableInfo:
    """Per-``br_table`` static info: resolved targets and, per entry, the
    blocks whose end hooks must fire; the default entry is last."""

    targets: tuple[BranchTarget, ...]
    default: BranchTarget
    ended: tuple[tuple[EndEvent, ...], ...]  # aligned with targets + (default,)

    def select(self, table_index: int) -> tuple[BranchTarget, tuple[EndEvent, ...]]:
        if table_index < len(self.targets):
            return self.targets[table_index], self.ended[table_index]
        return self.default, self.ended[-1]


@dataclass
class ModuleInfo:
    """The analysis-facing module summary (``Wasabi.module.info``)."""

    functions: list[FunctionInfo] = field(default_factory=list)
    globals: list[GlobalType] = field(default_factory=list)
    start: int | None = None
    has_memory: bool = False
    has_table: bool = False

    def function(self, idx: int) -> FunctionInfo:
        return self.functions[idx]

    def func_name(self, idx: int) -> str:
        return self.functions[idx].name

    @classmethod
    def from_module(cls, module: Module) -> "ModuleInfo":
        info = cls(start=module.start,
                   has_memory=module.num_memories > 0,
                   has_table=module.num_tables > 0)
        exports_by_func: dict[int, list[str]] = {}
        for export in module.exports:
            if export.kind == "func":
                exports_by_func.setdefault(export.idx, []).append(export.name)
        for idx in range(module.num_functions):
            info.functions.append(FunctionInfo(
                idx=idx,
                name=module.func_name(idx),
                type=module.func_type(idx),
                imported=idx < module.num_imported_functions,
                export_names=tuple(exports_by_func.get(idx, ())),
                instr_count=(len(module.function_at(idx).body)
                             if module.function_at(idx) else 0),
            ))
        for gidx in range(module.num_globals):
            info.globals.append(module.global_type(gidx))
        return info


@dataclass
class StaticInfo:
    """Everything the Wasabi runtime needs besides the instrumented binary."""

    module_info: ModuleInfo
    hooks: list[HookSpec] = field(default_factory=list)
    #: load/store offset per location
    memarg_offsets: dict[tuple[int, int], int] = field(default_factory=dict)
    #: local/global index per location
    var_indices: dict[tuple[int, int], int] = field(default_factory=dict)
    #: direct call targets (original function indices) per location
    call_targets: dict[tuple[int, int], int] = field(default_factory=dict)
    #: resolved targets of br and br_if per location
    br_targets: dict[tuple[int, int], BranchTarget] = field(default_factory=dict)
    #: per-br_table info per location
    br_tables: dict[tuple[int, int], BrTableInfo] = field(default_factory=dict)
    #: begin location per (func, end-instr, block kind)
    begin_of_end: dict[tuple[int, int, str], Location] = field(default_factory=dict)

    def hook_by_name(self) -> dict[str, HookSpec]:
        return {spec.name: spec for spec in self.hooks}

    # -- per-site accessors --------------------------------------------------------
    # Used by the runtime's site-specialized dispatch: each is resolved once
    # per call site at specialization time, never per event.

    def memarg_offset(self, func: int, instr: int) -> int:
        """Static offset of the load/store at a location (0 if unknown)."""
        return self.memarg_offsets.get((func, instr), 0)

    def var_index(self, func: int, instr: int) -> int:
        """Local/global index touched at a location."""
        return self.var_indices[(func, instr)]

    def call_target(self, func: int, instr: int) -> int:
        """Original callee index of the direct call at a location."""
        return self.call_targets[(func, instr)]

    def br_target(self, func: int, instr: int) -> BranchTarget:
        """Resolved target of the br/br_if at a location."""
        return self.br_targets[(func, instr)]

    def br_table_info(self, func: int, instr: int) -> BrTableInfo:
        """Resolved targets/traversed-ends of the br_table at a location."""
        return self.br_tables[(func, instr)]

    def begin_location(self, func: int, instr: int, kind: str) -> Location:
        """Begin location matching the block end at a location."""
        return self.begin_of_end[(func, instr, kind)]
