"""Host-boundary record/replay, crash bundles, and the test-case reducer.

The acceptance criteria live here: a bundle recorded on one engine
replays on the other with an identical error class, trap message, and
Location; a perturbed log raises :class:`ReplayDivergence`; the reducer
shrinks a crashing mutant while preserving its failure signature.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import Analysis, AnalysisSession
from repro.eval import reduce_bytes, reduce_failure, reduce_invocations
from repro.eval.faultinject import (Failure, classify, mutate,
                                    replay_failure_bundle, save_failure_bundle,
                                    seed_corpus)
from repro.interp import (Linker, Machine, Recorder, Replayer, ResourceLimits,
                          load_crash_bundle, replay_linker, restore_instance,
                          snapshot_instance, write_crash_bundle)
from repro.minic import compile_source
from repro.obs import Telemetry
from repro.wasm import (DeadlineExceeded, ReplayDivergence, Trap, WasmError,
                        encode_module)

ENGINES = [True, False]


@pytest.fixture
def host_module():
    """Calls an imported host function whose results drive control flow."""
    return compile_source("""
        import func roll() -> i32;
        memory 1;
        export func play(n: i32) -> i32 {
            var i: i32 = 0;
            var acc: i32 = 0;
            while (i < n) {
                acc = acc + roll();
                mem_i32[i] = acc;
                i = i + 1;
            }
            return acc;
        }
    """, "host")


def _rolling_linker(values):
    """env.roll returning successive values from a list (nondeterminism)."""
    from repro.wasm.types import I32, FuncType
    state = {"i": 0}

    def roll(args):
        value = values[state["i"] % len(values)]
        state["i"] += 1
        return value

    linker = Linker()
    linker.define_function("env", "roll", FuncType((), (I32,)), roll)
    return linker


class TestRecorder:
    def test_host_calls_recorded_in_order(self, host_module):
        recorder = Recorder()
        machine = Machine(replay=recorder)
        inst = machine.instantiate(host_module, _rolling_linker([3, 5, 7]))
        assert inst.invoke("play", [3]) == [15]
        calls = [e for e in recorder.entries if e["kind"] == "host_call"]
        assert [c["results"] for c in calls] == [[3], [5], [7]]
        assert all(c["name"] == "env.roll" for c in calls)

    def test_host_error_recorded_and_replayed(self, host_module):
        from repro.wasm.types import I32, FuncType

        def bad(args):
            raise Trap("host says no")

        linker = Linker()
        linker.define_function("env", "roll", FuncType((), (I32,)), bad)
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(host_module, linker)
        with pytest.raises(Trap, match="host says no"):
            inst.invoke("play", [1])
        calls = [e for e in recorder.entries if e["kind"] == "host_call"]
        assert calls and calls[-1]["error"]["type"] == "Trap"

        # replay re-raises the recorded trap without entering the host
        replayer = Replayer(recorder.entries)
        inst2 = Machine(replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        with pytest.raises(Trap, match="host says no"):
            inst2.invoke("play", [1])
        replayer.finish()

    def test_jsonl_round_trip(self, host_module, tmp_path):
        recorder = Recorder()
        machine = Machine(replay=recorder)
        inst = machine.instantiate(host_module, _rolling_linker([1]))
        inst.invoke("play", [2])
        path = recorder.write(tmp_path / "log.jsonl")
        replayer = Replayer.load(path)
        assert replayer._streams["host_call"] == \
            [e for e in recorder.entries if e["kind"] == "host_call"]


class TestReplayer:
    @pytest.mark.parametrize("record_engine", ENGINES)
    @pytest.mark.parametrize("replay_engine", ENGINES)
    def test_cross_engine_replay(self, host_module, record_engine,
                                 replay_engine):
        recorder = Recorder()
        machine = Machine(predecode=record_engine, replay=recorder)
        inst = machine.instantiate(host_module, _rolling_linker([2, 9, 4]))
        pre = snapshot_instance(inst)
        assert inst.invoke("play", [3]) == [2 + 9 + 4]

        replayer = Replayer(recorder.entries)
        machine2 = Machine(predecode=replay_engine, replay=replayer)
        inst2 = machine2.instantiate(host_module, replay_linker(host_module))
        restore_instance(inst2, pre)
        assert inst2.invoke("play", [3]) == [15]
        replayer.finish()
        # post-state is bit-identical too
        assert snapshot_instance(inst2).memory == \
            snapshot_instance(inst).memory

    def test_divergent_results_replay_as_recorded(self, host_module):
        """The log is authoritative: replay returns recorded results."""
        recorder = Recorder()
        machine = Machine(replay=recorder)
        inst = machine.instantiate(host_module, _rolling_linker([10]))
        inst.invoke("play", [1])

        entries = json.loads(json.dumps(recorder.entries))
        entries[-1]["results"] = [33]
        replayer = Replayer(entries)
        inst2 = Machine(replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        assert inst2.invoke("play", [1]) == [33]

    def test_perturbed_args_raise_divergence(self, host_module):
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(
            host_module, _rolling_linker([10]))
        inst.invoke("play", [1])

        entries = json.loads(json.dumps(recorder.entries))
        for entry in entries:
            if entry["kind"] == "host_call":
                entry["name"] = "rolled"
        replayer = Replayer(entries)
        inst2 = Machine(replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        with pytest.raises(ReplayDivergence, match="log entry #0"):
            inst2.invoke("play", [1])

    def test_exhausted_log_raises_divergence(self, host_module):
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(
            host_module, _rolling_linker([10]))
        inst.invoke("play", [1])
        replayer = Replayer(recorder.entries)
        inst2 = Machine(replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        inst2.invoke("play", [1])
        with pytest.raises(ReplayDivergence, match="no more host calls"):
            inst2.invoke("play", [1])

    def test_finish_flags_unconsumed_entries(self, host_module):
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(
            host_module, _rolling_linker([10]))
        inst.invoke("play", [2])
        replayer = Replayer(recorder.entries)
        inst2 = Machine(replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        inst2.invoke("play", [1])  # consumes one of the two recorded calls
        with pytest.raises(ReplayDivergence, match="never replayed"):
            replayer.finish()

    def test_telemetry_counts_replayed_calls(self, host_module):
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(
            host_module, _rolling_linker([10]))
        inst.invoke("play", [3])
        telemetry = Telemetry()
        replayer = Replayer(recorder.entries, telemetry=telemetry)
        inst2 = Machine(telemetry=telemetry, replay=replayer).instantiate(
            host_module, replay_linker(host_module))
        inst2.invoke("play", [3])
        registry = telemetry.snapshot()
        counter = registry.get("repro_replayed_host_calls_total")
        assert counter is not None and counter.value == 3

    def test_clock_reads_replayed(self, host_module):
        """A recorded DeadlineExceeded reproduces without real time passing."""
        times = iter([0.0] + [x * 10.0 for x in range(1, 400)])
        recorder = Recorder()
        limits = ResourceLimits(deadline_seconds=5.0, fuel=10**9)
        machine = Machine(limits=limits, replay=recorder)
        # swap the meter's base clock for a synthetic one for determinism
        machine._meter._clock = recorder.bind_clock(lambda: next(times))
        machine._meter.arm()
        inst = machine.instantiate(host_module, _rolling_linker([1]))
        with pytest.raises(DeadlineExceeded):
            inst.invoke("play", [10**6])

        replayer = Replayer(recorder.entries)
        machine2 = Machine(limits=limits, replay=replayer)
        inst2 = machine2.instantiate(host_module, replay_linker(host_module))
        with pytest.raises(DeadlineExceeded):
            inst2.invoke("play", [10**6])


class FaultyAnalysis(Analysis):
    """Raises on the Nth binary event, for fault record/replay tests."""

    def __init__(self, fail_at=3):
        self.events = 0
        self.fail_at = fail_at

    def binary(self, loc, op, a, b, r):
        self.events += 1
        if self.events == self.fail_at:
            raise RuntimeError("injected fault")


@pytest.fixture
def work_module():
    return compile_source("""
        export func work(n: i32) -> i32 {
            var i: i32 = 0;
            var acc: i32 = 0;
            while (i < n) {
                acc = acc + i * 3;
                i = i + 1;
            }
            return acc;
        }
    """, "work")


class TestHookFaultReplay:
    def test_quarantine_recorded_and_verified(self, work_module):
        recorder = Recorder()
        session = AnalysisSession(work_module, FaultyAnalysis(), replay=recorder,
                                  on_analysis_error="quarantine")
        result_live = session.instance.invoke("work", [10])
        faults = [e for e in recorder.entries if e["kind"] == "hook_fault"]
        quarantines = [e for e in recorder.entries
                       if e["kind"] == "quarantine"]
        assert len(faults) == 1 and faults[0]["action"] == "quarantine"
        assert faults[0]["error"]["type"] == "RuntimeError"
        assert len(quarantines) == 1
        # hook calls themselves are NOT recorded (engine independence)
        assert not any(e["kind"] == "host_call" for e in recorder.entries)

        replayer = Replayer(recorder.entries)
        session2 = AnalysisSession(work_module, FaultyAnalysis(),
                                   replay=replayer,
                                   on_analysis_error="quarantine")
        assert session2.instance.invoke("work", [10]) == result_live
        replayer.finish()

    def test_fault_divergence_detected(self, work_module):
        recorder = Recorder()
        session = AnalysisSession(work_module, FaultyAnalysis(fail_at=3),
                                  replay=recorder,
                                  on_analysis_error="quarantine")
        session.instance.invoke("work", [10])

        replayer = Replayer(recorder.entries)
        # replay with a hook faulting at a *different* event
        session2 = AnalysisSession(work_module, FaultyAnalysis(fail_at=5),
                                   replay=replayer,
                                   on_analysis_error="quarantine")
        with pytest.raises(ReplayDivergence):
            session2.instance.invoke("work", [10])


class TestCrashBundles:
    def test_write_load_round_trip(self, host_module, tmp_path):
        recorder = Recorder()
        inst = Machine(replay=recorder).instantiate(
            host_module, _rolling_linker([6]))
        pre = snapshot_instance(inst)
        inst.invoke("play", [1])
        manifest = {"kind": "invoke", "error": None,
                    "invocations": [{"export": "play", "args": [1]}]}
        path = write_crash_bundle(tmp_path / "b", encode_module(host_module),
                                  manifest, snapshot=pre, recorder=recorder)
        bundle = load_crash_bundle(path)
        assert bundle.module_bytes == encode_module(host_module)
        assert bundle.manifest["kind"] == "invoke"
        assert bundle.snapshot is not None
        assert bundle.replayer() is not None

    def test_schema_tag_checked(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"schema": "x/1"}))
        with pytest.raises(WasmError, match="schema"):
            load_crash_bundle(tmp_path)

    def test_pipeline_bundle_replays(self, tmp_path):
        corpus = seed_corpus()
        rng = random.Random("20260806:fib:0")
        mutant, recipe = mutate(corpus["fib"], rng)
        cls = classify(mutant)
        assert cls.outcome != "pass"
        failure = Failure(corpus_name="fib", index=0, seed=20260806,
                          stage=cls.stage, recipe=recipe,
                          exc_type=cls.exc_type, message=cls.message)
        bundle_path = save_failure_bundle(failure, mutant, tmp_path)
        bundle = load_crash_bundle(bundle_path)
        # align the recorded outcome with the true classification (Failure
        # records are only minted for escapes; this one is a rejection)
        bundle.manifest["error"]["outcome"] = cls.outcome
        reproduced, live = replay_failure_bundle(bundle)
        assert reproduced, f"bundle did not reproduce: {live}"

    def test_pipeline_bundle_detects_drift(self, tmp_path):
        corpus = seed_corpus()
        rng = random.Random("20260806:fib:0")
        mutant, recipe = mutate(corpus["fib"], rng)
        cls = classify(mutant)
        failure = Failure(corpus_name="fib", index=0, seed=20260806,
                          stage=cls.stage, recipe=recipe,
                          exc_type="TotallyDifferentError", message="nope")
        bundle = load_crash_bundle(save_failure_bundle(failure, mutant,
                                                       tmp_path))
        bundle.manifest["error"]["outcome"] = cls.outcome
        reproduced, live = replay_failure_bundle(bundle)
        assert not reproduced


class TestReducer:
    def test_reduce_bytes_minimizes(self):
        data = bytes(range(64))

        def has_marker(candidate):
            return b"\x2a" in candidate  # byte 42 must survive

        reduced, tests = reduce_bytes(data, has_marker)
        assert reduced == b"\x2a"
        assert tests > 0

    def test_reduce_bytes_rejects_passing_input(self):
        with pytest.raises(ValueError, match="predicate"):
            reduce_bytes(b"abc", lambda c: False)

    def test_reduce_failure_preserves_signature(self):
        corpus = seed_corpus()
        rng = random.Random("20260806:fib:0")
        mutant, _ = mutate(corpus["fib"], rng)
        target = classify(mutant)
        assert target.outcome != "pass"
        reduced, reduction = reduce_failure(mutant, target=target)
        assert classify(reduced).signature == target.signature
        # the acceptance bar: at least half the bytes gone
        assert reduction.ratio >= 0.5, reduction.summary()
        assert reduction.reduced_size == len(reduced)

    def test_reduce_failure_refuses_passing_module(self, fib_module):
        binary = encode_module(fib_module)
        assert classify(binary).outcome == "pass"
        with pytest.raises(ValueError, match="passing"):
            reduce_failure(binary)

    def test_reduce_invocations(self):
        calls = [{"export": "f", "args": [i]} for i in range(10)]

        def needs_seven(candidate):
            return any(c["args"] == [7] for c in candidate)

        reduced, reduction = reduce_invocations(calls, needs_seven)
        assert reduced == [{"export": "f", "args": [7]}]
        assert reduction.original_size == 10
        assert reduction.reduced_size == 1

    def test_reduced_bundle_replays_exactly(self, tmp_path):
        from repro.eval import reduce_bundle
        corpus = seed_corpus()
        rng = random.Random("20260806:fib:0")
        mutant, recipe = mutate(corpus["fib"], rng)
        cls = classify(mutant)
        failure = Failure(corpus_name="fib", index=0, seed=20260806,
                          stage=cls.stage, recipe=recipe,
                          exc_type=cls.exc_type, message=cls.message)
        bundle = load_crash_bundle(save_failure_bundle(failure, mutant,
                                                       tmp_path))
        bundle.manifest["error"]["outcome"] = cls.outcome
        (bundle.path / "manifest.json").write_text(
            json.dumps(bundle.manifest, indent=2) + "\n")
        reduction = reduce_bundle(bundle)
        assert reduction.ratio >= 0.5
        # reload from disk: the reduced bundle still reproduces
        reloaded = load_crash_bundle(bundle.path)
        assert reloaded.manifest["reduction"]["reduced_size"] < \
            reduction.original_size
        reproduced, live = replay_failure_bundle(reloaded)
        assert reproduced, f"reduced bundle did not reproduce: {live}"
