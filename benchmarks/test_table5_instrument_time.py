"""Table 5: time to instrument programs (RQ3).

Times the full binary→binary pipeline (decode, instrument for all hooks,
re-encode) for the 30 PolyBench kernels and the two real-world stand-ins,
reporting mean ± stddev and throughput (MB/s), like the paper's Table 5.
The absolute throughput differs (Python vs Rust, and our binaries are
scaled down); the paper-shape claims that must hold are (a) small binaries
instrument near-instantaneously relative to the big ones and (b) throughput
does not degrade for larger binaries.
"""

from __future__ import annotations

from repro.eval import render_table5, time_instrumentation
from repro.wasm.encoder import encode_module
from repro.workloads import engine_demo, pdf_toolkit
from repro.workloads.polybench import compile_kernel, kernel_names

from conftest import full_run


def test_table5(benchmark, write_report):
    repeats = 5 if full_run() else 3
    reports = []
    for name in kernel_names():
        reports.append(time_instrumentation(
            f"polybench/{name}", compile_kernel(name), repeats=repeats))
    # larger stand-ins to make throughput comparable across sizes
    pdf = pdf_toolkit(4.0)
    engine = engine_demo(8.0)
    pdf_report = time_instrumentation("pdf_toolkit (scale 4)", pdf,
                                      repeats=repeats)
    engine_report = time_instrumentation("engine_demo (scale 8)", engine,
                                         repeats=repeats)
    reports += [pdf_report, engine_report]
    write_report("table5_instrument_time", render_table5(reports))

    polybench = [r for r in reports if r.name.startswith("polybench")]
    mean_poly = sum(r.mean_seconds for r in polybench) / len(polybench)
    # shape: small kernels instrument much faster than the big binaries
    assert mean_poly < engine_report.mean_seconds
    # shape: throughput is not dramatically worse on the big binary
    # (the paper observes throughput *increasing* with size)
    mean_tp = sum(r.throughput_mb_per_s for r in polybench) / len(polybench)
    assert engine_report.throughput_mb_per_s > 0.3 * mean_tp

    # the pytest-benchmark number: instrumenting the large engine binary
    raw = encode_module(engine)
    from repro.eval import instrument_binary
    out = benchmark.pedantic(instrument_binary, args=(raw,), rounds=3,
                             iterations=1)
    assert len(out) > len(raw)
