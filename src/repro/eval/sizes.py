"""RQ4: binary code size increase per hook group (paper Figure 8, §4.5)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instrument import instrument_module
from ..wasm.encoder import encode_module
from ..wasm.module import Module
from .hooks_matrix import FIGURE_GROUPS


@dataclass
class SizeReport:
    """Size metrics of one program under one instrumentation configuration."""

    name: str
    config: str                   # hook group, or 'all'
    original_bytes: int
    instrumented_bytes: int
    hook_count: int

    @property
    def increase_percent(self) -> float:
        """0% = unchanged; may be slightly negative thanks to canonical
        LEB128 re-encoding (paper footnote 13)."""
        return 100.0 * (self.instrumented_bytes - self.original_bytes) \
            / self.original_bytes


def measure_size(name: str, module: Module,
                 groups: frozenset[str] | None,
                 config_name: str,
                 original_bytes: int | None = None) -> SizeReport:
    if original_bytes is None:
        original_bytes = len(encode_module(module))
    result = instrument_module(module, groups=groups)
    return SizeReport(name=name, config=config_name,
                      original_bytes=original_bytes,
                      instrumented_bytes=len(encode_module(result.module)),
                      hook_count=result.hook_count)


def size_sweep(name: str, module: Module,
               groups: list[str] | None = None,
               include_all: bool = True) -> list[SizeReport]:
    """Measure size increase for every hook group (Figure 8's x-axis)."""
    original_bytes = len(encode_module(module))
    reports = []
    for group in (groups or FIGURE_GROUPS):
        reports.append(measure_size(name, module, frozenset({group}), group,
                                    original_bytes))
    if include_all:
        reports.append(measure_size(name, module, None, "all", original_bytes))
    return reports
