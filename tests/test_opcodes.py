"""The opcode table: completeness and consistency with the spec."""

from repro.wasm import opcodes
from repro.wasm.opcodes import BY_BYTE, BY_NAME, HookGroup, Imm
from repro.wasm.types import F32, F64, I32, I64


class TestTableCompleteness:
    def test_number_of_opcodes_matches_mvp(self):
        # the MVP defines exactly 172 opcodes
        assert len(BY_BYTE) == 172

    def test_numeric_instruction_count_matches_paper(self):
        # the paper (§2.3) mentions "123 numeric instructions alone";
        # that is the unary+binary operators, excluding the 4 consts
        non_const = [op for op in opcodes.NUMERIC_OPS
                     if op.group is not HookGroup.CONST]
        assert len(non_const) == 123
        assert len(opcodes.NUMERIC_OPS) == 127

    def test_no_gaps_in_numeric_ranges(self):
        for byte in range(0x45, 0xC0):
            assert byte in BY_BYTE, hex(byte)

    def test_control_opcodes(self):
        assert BY_BYTE[0x00].mnemonic == "unreachable"
        assert BY_BYTE[0x0B].mnemonic == "end"
        assert BY_BYTE[0x10].mnemonic == "call"
        assert BY_BYTE[0x11].mnemonic == "call_indirect"

    def test_memory_opcodes(self):
        assert BY_BYTE[0x28].mnemonic == "i32.load"
        assert BY_BYTE[0x3E].mnemonic == "i64.store32"
        assert BY_BYTE[0x3F].mnemonic == "memory.size"
        assert BY_BYTE[0x40].mnemonic == "memory.grow"


class TestSignatures:
    def test_binary_signature(self):
        params, results = BY_NAME["i32.add"].signature
        assert params == (I32, I32) and results == (I32,)

    def test_comparison_returns_i32(self):
        for name in ["i64.lt_s", "f32.eq", "f64.ge"]:
            assert BY_NAME[name].signature[1] == (I32,)

    def test_eqz_is_unary(self):
        assert BY_NAME["i64.eqz"].signature == ((I64,), (I32,))
        assert BY_NAME["i64.eqz"].group is HookGroup.UNARY

    def test_conversions(self):
        assert BY_NAME["i32.wrap/i64"].signature == ((I64,), (I32,))
        assert BY_NAME["f64.promote/f32"].signature == ((F32,), (F64,))
        assert BY_NAME["i64.reinterpret/f64"].signature == ((F64,), (I64,))

    def test_loads_take_address(self):
        for name, out in [("i32.load8_s", I32), ("i64.load32_u", I64),
                          ("f32.load", F32)]:
            assert BY_NAME[name].signature == ((I32,), (out,))

    def test_stores_take_address_and_value(self):
        assert BY_NAME["i64.store16"].signature == ((I32, I64), ())

    def test_polymorphic_ops_have_no_signature(self):
        for name in ["drop", "select", "call", "return", "br", "get_local"]:
            assert BY_NAME[name].signature is None


class TestImmediates:
    def test_kinds(self):
        assert BY_NAME["block"].imm is Imm.BLOCKTYPE
        assert BY_NAME["br_table"].imm is Imm.BR_TABLE
        assert BY_NAME["call"].imm is Imm.FUNC_IDX
        assert BY_NAME["call_indirect"].imm is Imm.TYPE_IDX
        assert BY_NAME["i64.const"].imm is Imm.CONST_I64
        assert BY_NAME["f32.load"].imm is Imm.MEMARG
        assert BY_NAME["memory.grow"].imm is Imm.MEM_IDX


class TestHookGroups:
    def test_groups_cover_every_instruction(self):
        # every opcode belongs to some Wasabi hook group
        for op in BY_BYTE.values():
            assert op.group is not None, op.mnemonic

    def test_paper_era_mnemonics(self):
        # the analysis API passes paper-era (2018) names to hooks
        assert "get_local" in BY_NAME
        assert "i32.trunc_s/f32" in BY_NAME
        assert "local.get" not in BY_NAME
