"""Property and boundary tests for the service wire codec.

The codec carries every supervised request — module bytes, packed WASI
filesystem images, fuzz corpus snapshots — so its two contracts get
pinned here directly:

* **round-trip**: any JSON-able message whose leaves may be ``bytes``
  (nested arbitrarily deep, including the ``$bytes`` marker shape itself
  appearing as *data*) decodes back exactly;
* **bounded**: a frame just over the 64 MiB cap raises the documented
  :class:`~repro.serve.wire.WireError` on both the reader and the
  decoder, never an allocation or a silent truncation.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.serve import wire

# Dict keys must avoid the reserved "$bytes" marker (a user dict with
# exactly that key is indistinguishable from packed bytes on the wire —
# the codec owns that shape) and the envelope's "schema" slot.
_keys = st.text(min_size=1, max_size=8).filter(
    lambda k: k not in ("$bytes", "schema"))

_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=32),
    st.binary(max_size=64),
)

_values = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=16,
)

_messages = st.dictionaries(_keys, _values, max_size=6)


@settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
@given(_messages)
def test_roundtrip_nested_bytes_payloads(message):
    assert wire.loads(wire.dumps(message)) == message


def test_roundtrip_packed_fs_image_shape():
    """The WASI serve-request shape specifically: bytes nested in dicts
    in lists in dicts, mixed with scalars."""
    message = {
        "kind": "run",
        "module": b"\x00asm\x01\x00\x00\x00",
        "wasi": {
            "stdin": b"alpha\nbeta\n",
            "files": {"data.csv": b"a,1\nb,2\n", "empty": b""},
            "faults": {"seed": 7, "rate": 0.25,
                       "schedule": [{"syscall": "fd_read", "index": 1,
                                     "errno": 29}]},
        },
        "limits": None,
    }
    assert wire.loads(wire.dumps(message)) == message


def test_bytes_marker_as_data_survives():
    """A *string* field whose value looks like the marker is not bytes,
    and a dict with extra keys next to ``$bytes`` is left alone."""
    message = {"a": {"$bytes": "not-base64!", "x": 1}}
    packed = wire.dumps(message)
    decoded = wire.loads(packed)
    assert decoded == message


def test_empty_and_exact_bytes_roundtrip():
    for payload in (b"", b"\x00", bytes(range(256))):
        assert wire.loads(wire.dumps({"m": payload})) == {"m": payload}


# -- the 64 MiB cap, both ends ------------------------------------------------


def _oversized_line() -> bytes:
    """A syntactically valid frame one byte past MAX_MESSAGE_BYTES."""
    filler = b"x" * (wire.MAX_MESSAGE_BYTES + 1 - 20)
    line = b'{"schema":"?","p":"' + filler + b'"}\n'
    assert len(line) > wire.MAX_MESSAGE_BYTES
    return line


def test_loads_rejects_over_cap():
    with pytest.raises(wire.WireError, match="exceeds"):
        wire.loads(_oversized_line())


def test_read_line_rejects_over_cap():
    with pytest.raises(wire.WireError, match="size cap"):
        wire.read_line(io.BytesIO(_oversized_line()))


def test_read_line_accepts_frame_at_cap_boundary():
    """A line of exactly MAX_MESSAGE_BYTES passes the reader (the cap is
    an exclusive upper bound on overage, not a fuzzy threshold)."""
    line = b"y" * (wire.MAX_MESSAGE_BYTES - 1) + b"\n"
    assert wire.read_line(io.BytesIO(line)) == line


def test_dumps_then_reader_roundtrip_under_cap():
    blob = {"module": b"\x01" * 1024}
    line = wire.dumps(blob)
    assert wire.loads(wire.read_line(io.BytesIO(line))) == blob


def test_schema_tag_is_enforced():
    naked = json.dumps({"kind": "ping"}).encode() + b"\n"
    with pytest.raises(wire.WireError, match="schema"):
        wire.loads(naked)
