"""Span tracing for the instrumentation pipeline, with three exporters.

A *span* is one timed region — ``decode``, ``validate``, ``instrument``,
``encode``, ``instantiate``, ``invoke`` — recorded with its start time,
duration, nesting depth, and free-form attributes. The :class:`Tracer`
collects spans with a *single injected clock* (the same discipline as
:class:`repro.interp.limits.Meter`), so tests drive it with a fake clock
and every bench artifact derives from the identical time source.

Exporters:

* :func:`spans_to_jsonl` — one JSON object per line, trivially greppable
  and streamable (:func:`spans_from_jsonl` is its inverse);
* :func:`spans_to_chrome_trace` — the Chrome trace-event JSON format
  (complete ``"ph": "X"`` events, microsecond timestamps), loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev;
* the Prometheus path: the telemetry façade folds span durations into a
  ``repro_stage_seconds`` histogram per stage name (see
  :mod:`repro.obs.telemetry`).

:func:`measure` is the shared clock-and-report path of the evaluation
harness: ``eval/timing.py`` and ``eval/overhead.py`` time every repeat as a
span through it, so BENCH artifacts and telemetry cannot drift onto
different clocks.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable


class Span:
    """One completed timed region."""

    __slots__ = ("name", "start", "duration", "depth", "attrs")

    def __init__(self, name: str, start: float, duration: float,
                 depth: int = 0, attrs: dict | None = None):
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.attrs = attrs or {}

    def as_dict(self) -> dict:
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "depth": self.depth,
                "attrs": self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, depth={self.depth})"


class Tracer:
    """Collects spans; nesting is tracked by an explicit depth counter.

    The clock is injected (default :func:`time.perf_counter`); all span
    timestamps come from it and nothing else, so a deterministic fake clock
    yields deterministic spans.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.spans: list[Span] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a region; the span is recorded when the region exits.

        Spans are appended in *completion* order (children before parents),
        with ``depth`` recording the nesting level at entry.
        """
        depth = self._depth
        self._depth += 1
        start = self.clock()
        try:
            yield
        finally:
            duration = self.clock() - start
            self._depth -= 1
            self.spans.append(Span(name, start, duration, depth, attrs or None))

    def durations(self, name: str) -> list[float]:
        """Durations of every completed span called ``name``, in order."""
        return [span.duration for span in self.spans if span.name == name]


# -- exporters ----------------------------------------------------------------


def spans_to_jsonl(spans: list[Span]) -> str:
    """One JSON object per line; inverse of :func:`spans_from_jsonl`."""
    return "\n".join(json.dumps(span.as_dict(), sort_keys=True)
                     for span in spans) + ("\n" if spans else "")


def spans_from_jsonl(text: str) -> list[Span]:
    spans = []
    for line in text.splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        spans.append(Span(entry["name"], entry["start"], entry["duration"],
                          entry.get("depth", 0), entry.get("attrs") or {}))
    return spans


def spans_to_chrome_trace(spans: list[Span],
                          process_name: str = "repro") -> dict:
    """Chrome trace-event JSON (the dict; dump with ``json.dumps``).

    Timestamps are microseconds relative to the earliest span, which keeps
    them small and origin-independent (``perf_counter`` has an arbitrary
    epoch). All spans land on one pid/tid — the pipeline is single-threaded
    — so Perfetto renders the nesting purely from the X-event intervals.
    """
    origin = min((span.start for span in spans), default=0.0)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for span in spans:
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": 1,
            "args": dict(span.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(payload: dict) -> list[Span]:
    """Inverse of :func:`spans_to_chrome_trace` (depth is not recoverable)."""
    spans = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        spans.append(Span(event["name"], event["ts"] / 1e6,
                          event["dur"] / 1e6, 0, dict(event.get("args") or {})))
    return spans


# -- the shared measurement path ----------------------------------------------


def measure(fn: Callable[[], object], repeats: int, *,
            name: str = "measure",
            tracer: Tracer | None = None,
            clock: Callable[[], float] | None = None,
            attrs: dict | None = None) -> list[float]:
    """Run ``fn`` ``repeats`` times, recording each run as one span.

    Returns the per-repeat durations (callers take ``min``/``mean`` as
    their protocol dictates). When no tracer is passed, a throwaway one is
    created over ``clock`` (default ``perf_counter``) — so the measurement
    path is *identical* whether or not the spans are kept.
    """
    if tracer is None:
        tracer = Tracer(clock=clock or time.perf_counter)
    attrs = attrs or {}
    durations: list[float] = []
    for repeat in range(repeats):
        with tracer.span(name, repeat=repeat, **attrs):
            fn()
        durations.append(tracer.spans[-1].duration)
    return durations
