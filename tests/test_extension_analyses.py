"""Extension analyses: shadow memory, heap profiler, hot-loop detection."""

import pytest

from repro import analyze
from repro.analyses.heap_profile import HeapProfiler
from repro.analyses.hot_loops import HotLoopAnalysis
from repro.analyses.shadow import ShadowMemory, access_width
from repro.minic import compile_source


class TestShadowMemory:
    def make(self):
        return ShadowMemory(default=frozenset(),
                            merge=lambda a, b: a | b)

    def test_default(self):
        shadow = self.make()
        assert shadow.read(100, 8) == frozenset()
        assert shadow.shadowed_bytes() == 0

    def test_write_read(self):
        shadow = self.make()
        shadow.write(10, 4, frozenset({"x"}))
        assert shadow.read(10, 4) == frozenset({"x"})
        assert shadow.read(12, 1) == frozenset({"x"})
        assert shadow.read(14, 2) == frozenset()

    def test_merge_across_bytes(self):
        shadow = self.make()
        shadow.write(0, 2, frozenset({"a"}))
        shadow.write(2, 2, frozenset({"b"}))
        assert shadow.read(0, 4) == frozenset({"a", "b"})

    def test_clear_via_default_write(self):
        shadow = self.make()
        shadow.write(0, 8, frozenset({"a"}))
        shadow.write(2, 4, frozenset())   # overwrite with default clears
        assert shadow.shadowed_bytes() == 4
        assert shadow.read(2, 4) == frozenset()

    def test_op_width_helpers(self):
        assert access_width("i32.load8_u") == 1
        assert access_width("i64.store16") == 2
        assert access_width("i64.load32_s") == 4
        assert access_width("f32.load") == 4
        assert access_width("f64.store") == 8
        assert access_width("i64.load") == 8
        shadow = self.make()
        shadow.write_for("i64.store", 0, frozenset({"q"}))
        assert shadow.read_for("i32.load8_u", 7) == frozenset({"q"})
        assert shadow.read_for("i32.load8_u", 8) == frozenset()

    def test_regions(self):
        shadow = self.make()
        shadow.write(0, 4, frozenset({"a"}))
        shadow.write(4, 4, frozenset({"b"}))
        shadow.write(100, 2, frozenset({"a"}))
        regions = list(shadow.regions())
        assert regions == [(0, 4, frozenset({"a"})), (4, 4, frozenset({"b"})),
                           (100, 2, frozenset({"a"}))]


class TestHeapProfiler:
    def test_working_set_and_undefined_reads(self):
        module = compile_source("""
            memory 1;
            export func main() -> i32 {
                mem_i32[0] = 5;
                mem_i32[1] = 6;
                var defined: i32 = mem_i32[0];
                var undefined: i32 = mem_i32[100];   // never written
                return defined + undefined;
            }
        """)
        profiler = HeapProfiler()
        analyze(module, profiler, entry="main")
        assert profiler.working_set_bytes() == 8
        assert profiler.written_regions() == [(0, 8)]
        assert len(profiler.undefined_reads) == 1
        assert profiler.undefined_reads[0][2] == 400
        assert profiler.bytes_written == 8
        assert profiler.bytes_read == 8

    def test_data_segments_pre_registered(self):
        module = compile_source("""
            memory 1;
            export func main() -> i32 { return mem_i32[0]; }
        """)
        profiler = HeapProfiler(initial_data=[(0, 4)])
        analyze(module, profiler, entry="main")
        assert profiler.undefined_reads == []

    def test_grow_tracking(self):
        module = compile_source("""
            memory 1;
            export func main() -> i32 {
                memory_grow(2);
                memory_grow(1);
                return memory_size();
            }
        """)
        profiler = HeapProfiler()
        session = analyze(module, profiler, entry="main")
        assert [e.delta_pages for e in profiler.grow_events] == [2, 1]
        assert profiler.peak_pages == 4
        assert profiler.failed_grows() == []


class TestHotLoops:
    def test_trip_counts(self):
        module = compile_source("""
            export func main(n: i32) -> i32 {
                var total: i32 = 0;
                var outer: i32;
                for (outer = 0; outer < 3; outer = outer + 1) {
                    var inner: i32;
                    for (inner = 0; inner < n; inner = inner + 1) {
                        total = total + 1;
                    }
                }
                return total;
            }
        """)
        analysis = HotLoopAnalysis()
        session = analyze(module, analysis, entry="main", args=(10,))
        stats = analysis.stats()
        assert len(stats) == 2
        hottest = stats[0]
        # the inner loop runs 3 entries x (10 + 1 header checks)
        assert hottest.entries == 3
        assert hottest.iterations == 33
        assert hottest.average_trip_count == pytest.approx(11.0)
        outer = stats[1]
        assert outer.entries == 1 and outer.iterations == 4

    def test_re_entry_counted(self):
        module = compile_source("""
            export func work(n: i32) -> i32 {
                var i: i32 = 0;
                while (i < n) { i = i + 1; }
                return i;
            }
        """)
        analysis = HotLoopAnalysis()
        session = analyze(module, analysis, entry="work", args=(2,))
        session.invoke("work", [2])
        stats = analysis.stats()[0]
        assert stats.entries == 2
        assert analysis.total_loop_iterations() == stats.iterations
