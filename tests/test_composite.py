"""Running several analyses in one execution via CompositeAnalysis."""

from repro import analyze
from repro.analyses import (BasicBlockProfiler, CallGraphAnalysis,
                            CryptominerDetector, MemoryTracer)
from repro.core.analysis import used_groups
from repro.core.composite import CompositeAnalysis
from repro.eval import polybench_workloads


class TestComposite:
    def test_union_of_groups(self):
        composite = CompositeAnalysis([CallGraphAnalysis(), MemoryTracer()])
        assert used_groups(composite) == frozenset({"call", "load", "store"})
        assert composite.groups() == used_groups(composite)

    def test_all_members_observe(self):
        workload = polybench_workloads(["trisolv"])[0]
        call_graph = CallGraphAnalysis()
        tracer = MemoryTracer()
        blocks = BasicBlockProfiler()
        composite = CompositeAnalysis([call_graph, tracer, blocks])
        session = analyze(workload.module(), composite,
                          linker=workload.linker(), entry="main")
        assert call_graph.edges
        assert tracer.trace
        assert blocks.counts

    def test_events_match_standalone_runs(self):
        workload = polybench_workloads(["durbin"])[0]

        standalone = MemoryTracer()
        analyze(workload.module(), standalone, linker=workload.linker(),
                entry="main")

        in_composite = MemoryTracer()
        composite = CompositeAnalysis([in_composite, CryptominerDetector()])
        analyze(workload.module(), composite, linker=workload.linker(),
                entry="main")

        assert [a.address for a in standalone.trace] == \
            [a.address for a in in_composite.trace]

    def test_multiple_receivers_same_hook(self):
        workload = polybench_workloads(["trisolv"])[0]
        first, second = MemoryTracer(), MemoryTracer()
        composite = CompositeAnalysis([first, second])
        analyze(workload.module(), composite, linker=workload.linker(),
                entry="main")
        assert len(first.trace) == len(second.trace) > 0

    def test_empty_composite_instruments_nothing(self):
        from repro.core import instrument_module
        workload = polybench_workloads(["trisolv"])[0]
        composite = CompositeAnalysis([])
        assert composite.groups() == frozenset()
        result = instrument_module(workload.module(),
                                   groups=composite.groups())
        assert result.hook_count == 0
