"""Telemetry overhead floor: observability must be pay-as-you-go.

Three claims, pinned on the Figure 9 PolyBench fast subset:

1. **Disabled telemetry is (near-)free.** A machine built without a
   ``Telemetry`` sink runs the exact interpreter loops with a single
   hoisted ``tele is not None`` test at each charge site — the same
   discipline (and the same sites) as the Meter's disabled path. The
   test measures that guard's cost directly (timeit differencing) and
   multiplies by the exact number of charge events per run (telemetry
   itself counts them when enabled), yielding a deterministic
   upper-bound estimate of the disabled-path overhead. Floor: <= 2%.

2. **Enabled telemetry is cheap.** Counting raw integers at the charge
   sites keeps a telemetry-attached run within 1.5x of the plain run.

3. **The profiler pays for what it gives.** Per-instruction counting
   costs real time; the factor is recorded (not asserted) so regressions
   show up in the artifact diff.

Results are recorded in ``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import statistics
import time
import timeit

from repro.eval import POLYBENCH_FAST_SUBSET, polybench_workloads
from repro.interp import Machine
from repro.obs import Telemetry

from conftest import full_run


def _guard_cost_seconds() -> float:
    """Per-event cost of the disabled-path guard, ``tele is not None``."""
    n = 2_000_000
    guarded = min(timeit.repeat("if tele is not None: pass",
                                globals={"tele": None},
                                number=n, repeat=7)) / n
    empty = min(timeit.repeat("pass", number=n, repeat=7)) / n
    return max(guarded - empty, 0.0)


def _time_workload(workload, repeats, telemetry_factory=None):
    """Best-of-``repeats`` invoke time; also the telemetry charge count."""
    module = workload.module()
    best, events = float("inf"), 0
    for _ in range(repeats):
        telemetry = telemetry_factory() if telemetry_factory else None
        machine = Machine(telemetry=telemetry)
        instance = machine.instantiate(module, workload.linker())
        start = time.perf_counter()
        instance.invoke(workload.entry, workload.args)
        best = min(best, time.perf_counter() - start)
        if telemetry is not None:
            events = (telemetry.n_calls + telemetry.n_branches
                      + telemetry.n_mem_grow)
    return best, events


def test_telemetry_overhead(benchmark, results_dir):
    repeats = 5 if full_run() else 3
    guard_s = _guard_cost_seconds()
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)

    rows = []
    for workload in workloads:
        off_seconds, _ = _time_workload(workload, repeats)
        counted_seconds, events = _time_workload(workload, repeats, Telemetry)
        profiled_seconds, _ = _time_workload(
            workload, repeats, lambda: Telemetry(profile=True))
        rows.append({
            "name": workload.name,
            "off_seconds": off_seconds,
            "counted_seconds": counted_seconds,
            "counted_overhead": counted_seconds / off_seconds,
            "profiled_seconds": profiled_seconds,
            "profiled_overhead": profiled_seconds / off_seconds,
            "charge_events": events,
            "disabled_overhead": events * guard_s / off_seconds,
        })

    payload = {
        "guard_ns": guard_s * 1e9,
        "workloads": rows,
        "geomean_counted_overhead": statistics.geometric_mean(
            r["counted_overhead"] for r in rows),
        "geomean_profiled_overhead": statistics.geometric_mean(
            r["profiled_overhead"] for r in rows),
        "max_disabled_overhead": max(r["disabled_overhead"] for r in rows),
    }
    path = results_dir / "BENCH_obs.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(f"{r['name']:16s} off={r['off_seconds']:.4f}s "
              f"counted={r['counted_overhead']:.3f}x "
              f"profiled={r['profiled_overhead']:.3f}x "
              f"events={r['charge_events']} "
              f"disabled~{r['disabled_overhead']:.5%}")
    print(f"guard cost {payload['guard_ns']:.2f} ns/event; "
          f"geomean counted {payload['geomean_counted_overhead']:.3f}x; "
          f"geomean profiled {payload['geomean_profiled_overhead']:.3f}x; "
          f"max disabled {payload['max_disabled_overhead']:.4%} "
          f"[recorded in {path}]")

    # (1) the ISSUE floor: disabled telemetry costs <= 2% on every kernel
    assert payload["max_disabled_overhead"] <= 0.02, payload
    # (2) raw-field counting stays cheap even when attached
    assert payload["geomean_counted_overhead"] <= 1.5, payload
    # (3) profiled overhead is recorded above, deliberately unasserted:
    # per-instruction attribution is opt-in and pays what it pays

    # the pytest-benchmark number: telemetry-attached trisolv
    trisolv = polybench_workloads(["trisolv"])[0]
    benchmark.pedantic(lambda: _time_workload(trisolv, 1, Telemetry),
                       rounds=1, iterations=1)


def test_telemetry_counts_on_bench_path(results_dir):
    """The charge sites actually fire on the bench harness — guarding
    against a silently detached sink making claim (2) vacuous."""
    trisolv = polybench_workloads(["trisolv"])[0]
    module = trisolv.module()
    counts = []
    for predecode in (True, False):
        tele = Telemetry()
        machine = Machine(predecode=predecode, telemetry=tele)
        instance = machine.instantiate(module, trisolv.linker())
        instance.invoke(trisolv.entry, trisolv.args)
        assert tele.n_calls > 0 and tele.n_branches > 0, \
            f"telemetry never charged on trisolv (predecode={predecode})"
        counts.append((tele.n_calls, tele.n_branches))
    assert counts[0] == counts[1], "engines disagree on charge counts"
