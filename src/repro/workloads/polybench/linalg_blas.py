"""PolyBench BLAS kernels: gemm, gemver, gesummv, symm, syr2k, syrk, trmm."""

from __future__ import annotations

from .common import register


@register("gemm", "linear-algebra/blas", 10)
def gemm(n: int) -> str:
    a, b, c = 0, n * n, 2 * n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(i*j % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64(i*(j+1) % {n}) / {float(n)};
            mem_f64[{c} + i*{n} + j] = f64(i*(j+2) % {n}) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j] * beta;
        }}
        for (k = 0; k < {n}; k = k + 1) {{
            for (j = 0; j < {n}; j = j + 1) {{
                mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j]
                    + alpha * mem_f64[{a} + i*{n} + k] * mem_f64[{b} + k*{n} + j];
            }}
        }}
        if (i % 4 == 0) {{
            print_f64(checksum_f64({c} + i*{n}, {n}));
        }}
    }}
    var result: f64 = checksum_f64({c}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("gemver", "linear-algebra/blas", 12)
def gemver(n: int) -> str:
    a = 0
    u1, v1, u2, v2 = n * n, n * n + n, n * n + 2 * n, n * n + 3 * n
    w, x, y, z = n * n + 4 * n, n * n + 5 * n, n * n + 6 * n, n * n + 7 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{u1} + i] = f64(i);
        mem_f64[{u2} + i] = f64(i+1) / fn / 2.0;
        mem_f64[{v1} + i] = f64(i+1) / fn / 4.0;
        mem_f64[{v2} + i] = f64(i+1) / fn / 6.0;
        mem_f64[{y} + i] = f64(i+1) / fn / 8.0;
        mem_f64[{z} + i] = f64(i+1) / fn / 9.0;
        mem_f64[{x} + i] = 0.0;
        mem_f64[{w} + i] = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(i*j % {n}) / fn;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j]
                + mem_f64[{u1} + i] * mem_f64[{v1} + j]
                + mem_f64[{u2} + i] * mem_f64[{v2} + j];
        }}
    }}
    print_f64(checksum_f64({a}, {n * n}));
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{x} + i] = mem_f64[{x} + i]
                + beta * mem_f64[{a} + j*{n} + i] * mem_f64[{y} + j];
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x} + i] = mem_f64[{x} + i] + mem_f64[{z} + i];
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{w} + i] = mem_f64[{w} + i]
                + alpha * mem_f64[{a} + i*{n} + j] * mem_f64[{x} + j];
        }}
    }}
    var result: f64 = checksum_f64({w}, {n});
    print_f64(result);
    return result;
}}
"""


@register("gesummv", "linear-algebra/blas", 12)
def gesummv(n: int) -> str:
    a, b = 0, n * n
    tmp, x, y = 2 * n * n, 2 * n * n + n, 2 * n * n + 2 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x} + i] = f64(i % {n}) / {float(n)};
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i*j + 1) % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64((i*j + 2) % {n}) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{tmp} + i] = 0.0;
        mem_f64[{y} + i] = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{tmp} + i] = mem_f64[{a} + i*{n} + j] * mem_f64[{x} + j] + mem_f64[{tmp} + i];
            mem_f64[{y} + i] = mem_f64[{b} + i*{n} + j] * mem_f64[{x} + j] + mem_f64[{y} + i];
        }}
        mem_f64[{y} + i] = alpha * mem_f64[{tmp} + i] + beta * mem_f64[{y} + i];
    }}
    var result: f64 = checksum_f64({y}, {n});
    print_f64(result);
    return result;
}}
"""


@register("symm", "linear-algebra/blas", 10)
def symm(n: int) -> str:
    a, b, c = 0, n * n, 2 * n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i+j) % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64((i*j+1) % {n}) / {float(n)};
            mem_f64[{c} + i*{n} + j] = f64((i*j+2) % {n}) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var temp2: f64 = 0.0;
            for (k = 0; k < i; k = k + 1) {{
                mem_f64[{c} + k*{n} + j] = mem_f64[{c} + k*{n} + j]
                    + alpha * mem_f64[{b} + i*{n} + j] * mem_f64[{a} + i*{n} + k];
                temp2 = temp2 + mem_f64[{b} + k*{n} + j] * mem_f64[{a} + i*{n} + k];
            }}
            mem_f64[{c} + i*{n} + j] = beta * mem_f64[{c} + i*{n} + j]
                + alpha * mem_f64[{b} + i*{n} + j] * mem_f64[{a} + i*{n} + i]
                + alpha * temp2;
        }}
    }}
    var result: f64 = checksum_f64({c}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("syr2k", "linear-algebra/blas", 10)
def syr2k(n: int) -> str:
    a, b, c = 0, n * n, 2 * n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i*j+1) % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64((i*j+2) % {n}) / {float(n)};
            mem_f64[{c} + i*{n} + j] = f64((i*j+3) % {n}) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j <= i; j = j + 1) {{
            mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j] * beta;
        }}
        for (k = 0; k < {n}; k = k + 1) {{
            for (j = 0; j <= i; j = j + 1) {{
                mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j]
                    + mem_f64[{a} + j*{n} + k] * alpha * mem_f64[{b} + i*{n} + k]
                    + mem_f64[{b} + j*{n} + k] * alpha * mem_f64[{a} + i*{n} + k];
            }}
        }}
    }}
    var result: f64 = checksum_f64({c}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("syrk", "linear-algebra/blas", 10)
def syrk(n: int) -> str:
    a, c = 0, n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i*j+1) % {n}) / {float(n)};
            mem_f64[{c} + i*{n} + j] = f64((i*j+2) % {n}) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j <= i; j = j + 1) {{
            mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j] * beta;
        }}
        for (k = 0; k < {n}; k = k + 1) {{
            for (j = 0; j <= i; j = j + 1) {{
                mem_f64[{c} + i*{n} + j] = mem_f64[{c} + i*{n} + j]
                    + alpha * mem_f64[{a} + i*{n} + k] * mem_f64[{a} + j*{n} + k];
            }}
        }}
    }}
    var result: f64 = checksum_f64({c}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("trmm", "linear-algebra/blas", 10)
def trmm(n: int) -> str:
    a, b = 0, n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i+j) % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64({n} + i - j) / {float(n)};
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            for (k = i + 1; k < {n}; k = k + 1) {{
                mem_f64[{b} + i*{n} + j] = mem_f64[{b} + i*{n} + j]
                    + mem_f64[{a} + k*{n} + i] * mem_f64[{b} + k*{n} + j];
            }}
            mem_f64[{b} + i*{n} + j] = alpha * mem_f64[{b} + i*{n} + j];
        }}
    }}
    var result: f64 = checksum_f64({b}, {n * n});
    print_f64(result);
    return result;
}}
"""
