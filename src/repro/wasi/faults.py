"""The syscall fault-injection plane: deterministic host-boundary failures.

Real hosts fail at the syscall boundary — disks fill, reads get
interrupted, clocks jump. This module makes every such failure mode
*injectable and reproducible*: a :class:`FaultPlane` decides, per
``(syscall, call-index)`` site, whether a fault fires and what kind, from
one of three sources (checked in order):

1. an explicit **schedule** — ``{(syscall, index): Fault}`` — for tests
   that pin one exact failure at one exact call;
2. a **predicate** — ``fn(syscall, index) -> Fault | None`` — for
   campaign-style targeted injection;
3. a **seeded schedule** — each site draws from
   ``random.Random(f"{seed}:{syscall}:{index}")``, so the full fault
   pattern is a pure function of the seed and the guest's own syscall
   sequence, independent of host state, engine, or wall clock.

Injected faults are *well-formed guest-visible outcomes*: an errno return,
a shortened transfer, or skewed clock readings — never a host exception.
The one exception is ``escalate=True``, the hard tier: the syscall raises
:class:`~repro.wasm.errors.WasiExhausted` (a trap), aborting the
invocation the way an exhausted resource budget does — the path that
produces replayable crash bundles from I/O workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .abi import ERRNO_INTR, ERRNO_IO, ERRNO_NOSPC

#: Seeded-mode default: fraction of syscall sites that receive a fault.
DEFAULT_FAULT_RATE = 0.05


@dataclass(frozen=True)
class Fault:
    """One injected outcome for one syscall site.

    Exactly one effect applies per site: ``escalate`` wins, then
    ``errno``, then ``short`` (cap the transfer length of a read/write),
    then ``clock_skew_ns`` (added to ``clock_time_get`` readings from
    this site on).
    """

    errno: int | None = None
    short: int | None = None
    clock_skew_ns: int = 0
    escalate: bool = False

    def describe(self) -> str:
        if self.escalate:
            return "escalate"
        if self.errno is not None:
            return f"errno={self.errno}"
        if self.short is not None:
            return f"short={self.short}"
        return f"clock_skew_ns={self.clock_skew_ns}"


#: Seeded-mode fault menu per syscall: (weight, fault) choices. Syscalls
#: absent here never fault under a pure seed (argument marshalling like
#: ``args_get`` has no real-world failure mode worth modelling).
_SEEDED_MENU: dict[str, list[Fault]] = {
    "fd_read": [Fault(errno=ERRNO_IO), Fault(errno=ERRNO_INTR),
                Fault(short=1), Fault(short=7)],
    "fd_write": [Fault(errno=ERRNO_IO), Fault(errno=ERRNO_INTR),
                 Fault(errno=ERRNO_NOSPC), Fault(short=1), Fault(short=7)],
    "fd_seek": [Fault(errno=ERRNO_IO)],
    "random_get": [Fault(errno=ERRNO_IO)],
    "clock_time_get": [Fault(clock_skew_ns=1_000_000),
                       Fault(clock_skew_ns=50_000_000)],
    "path_open": [Fault(errno=ERRNO_IO), Fault(errno=ERRNO_INTR)],
}


class FaultPlane:
    """Per-site fault decisions, deterministic by construction.

    ``schedule`` and ``predicate`` compose with the seed: an explicit
    schedule entry wins, then the predicate, then the seeded draw. With
    neither a seed, schedule, nor predicate the plane injects nothing
    (but still counts sites, so ``repro run -v`` reporting is uniform).
    """

    def __init__(self, seed: int | None = None,
                 schedule: dict[tuple[str, int], Fault] | None = None,
                 predicate=None, rate: float = DEFAULT_FAULT_RATE,
                 escalate_rate: float = 0.0):
        self.seed = seed
        self.schedule = dict(schedule) if schedule else {}
        self.predicate = predicate
        self.rate = rate
        self.escalate_rate = escalate_rate
        #: Faults actually fired, as ``(syscall, index, description)`` —
        #: the audit trail tests and ``repro run -v`` read.
        self.fired: list[tuple[str, int, str]] = []

    def check(self, syscall: str, index: int) -> Fault | None:
        """The fault for call ``index`` of ``syscall``, or None."""
        fault = self.schedule.get((syscall, index))
        if fault is None and self.predicate is not None:
            fault = self.predicate(syscall, index)
        if fault is None and self.seed is not None:
            menu = _SEEDED_MENU.get(syscall)
            if menu:
                rng = random.Random(f"{self.seed}:{syscall}:{index}")
                if rng.random() < self.rate:
                    fault = menu[rng.randrange(len(menu))]
                    if self.escalate_rate and \
                            rng.random() < self.escalate_rate:
                        fault = Fault(escalate=True)
        if fault is not None:
            self.fired.append((syscall, index, fault.describe()))
        return fault
