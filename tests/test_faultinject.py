"""Fault-injection harness + the hardening it drove into the pipeline.

A small campaign runs here as a regression gate (the CI fuzz-campaign job
runs the full 5k-mutant campaign); the rest of the file pins down the
specific robustness fixes: LEB128 canonical-form checks, decoder bounds
checks, and limits validation.
"""

from __future__ import annotations

import pytest

from repro.eval.faultinject import (MUTATORS, mutate, regenerate_mutant,
                                    run_campaign, run_pipeline, seed_corpus)
from repro.wasm import (DecodeError, ValidationError, WasmError,
                        decode_module, encode_module, validate_module)
from repro.wasm.builder import ModuleBuilder
from repro.wasm.leb128 import (decode_signed, decode_unsigned,
                               encode_unsigned)
from repro.wasm.types import I32, Limits


class TestCampaign:
    def test_small_campaign_has_no_escapes(self):
        result = run_campaign(mutants=300, seed=1234)
        assert result.ok, result.summary()
        assert result.mutants == 300
        # sanity: the mutator is actually producing malformed binaries
        assert result.rejected_at.get("decode", 0) > 0

    def test_campaign_is_reproducible(self):
        a = run_campaign(mutants=100, seed=77, execute=False)
        b = run_campaign(mutants=100, seed=77, execute=False)
        assert a.rejected_at == b.rejected_at
        assert a.survived == b.survived

    def test_regenerate_mutant_is_deterministic(self):
        corpus = seed_corpus()
        for name in corpus:
            first = regenerate_mutant(42, name, 7)
            second = regenerate_mutant(42, name, 7)
            assert first == second
            assert first != corpus[name] or name == "memory"

    def test_seed_corpus_is_valid(self):
        for name, binary in seed_corpus().items():
            module = decode_module(binary)
            validate_module(module)
            assert encode_module(module), name

    def test_mutators_change_bytes(self):
        import random
        seed = seed_corpus()["kitchen_sink"]
        changed = 0
        for i in range(50):
            mutant, recipe = mutate(seed, random.Random(i))
            assert recipe  # at least one mutation applied
            if mutant != seed:
                changed += 1
        assert changed > 40  # almost every mutant differs from the seed
        assert len(MUTATORS) >= 8

    def test_pipeline_accepts_pristine_binary(self):
        for binary in seed_corpus().values():
            assert run_pipeline(binary, execute=True) is None

    def test_pipeline_rejects_garbage_cleanly(self):
        assert run_pipeline(b"\x00asm\x01\x00\x00\x00" + b"\xff" * 40) is not None
        assert run_pipeline(b"not wasm at all") is not None
        assert run_pipeline(b"") is not None


class TestLeb128Hardening:
    def test_truncated_varint_is_decode_error(self):
        # continuation bit set but the stream ends: must not IndexError
        with pytest.raises(DecodeError, match="truncated"):
            decode_unsigned(b"\x80\x80", 0)
        with pytest.raises(DecodeError, match="truncated"):
            decode_signed(b"\xff", 0)
        with pytest.raises(DecodeError):
            decode_unsigned(b"", 0)

    def test_overlong_varint_rejected(self):
        # a u32 takes at most 5 bytes; a 6th continuation byte is malformed
        with pytest.raises(DecodeError):
            decode_unsigned(b"\x80\x80\x80\x80\x80\x01", 0)
        with pytest.raises(DecodeError):
            decode_signed(b"\x80\x80\x80\x80\x80\x7f", 0)

    def test_noncanonical_final_byte_u32(self):
        # 5th byte of a u32 may only use its low 4 bits
        with pytest.raises(DecodeError, match="non-canonical"):
            decode_unsigned(b"\x80\x80\x80\x80\x10", 0)
        # the same payload with legal high bits decodes fine
        value, pos = decode_unsigned(b"\x80\x80\x80\x80\x0f", 0)
        assert value == 0xF0000000 and pos == 5

    def test_noncanonical_final_byte_s32(self):
        # unused bits of the final byte must all equal the sign bit
        with pytest.raises(DecodeError, match="non-canonical"):
            decode_signed(b"\x80\x80\x80\x80\x4f", 0)
        value, pos = decode_signed(b"\x80\x80\x80\x80\x78", 0)
        assert value == -(1 << 31) and pos == 5

    def test_noncanonical_final_byte_s64(self):
        # 10th byte of an s64 has 1 payload bit; 0x02 sets an unused bit
        bad = b"\x80" * 9 + b"\x02"
        with pytest.raises(DecodeError, match="non-canonical"):
            decode_signed(bad, 0, bits=64)
        good = b"\x80" * 9 + b"\x7f"
        value, pos = decode_signed(good, 0, bits=64)
        assert value == -(1 << 63) and pos == 10

    def test_round_trip_still_works(self):
        for value in (0, 1, 127, 128, 624485, 2**32 - 1):
            data = encode_unsigned(value)
            assert decode_unsigned(data, 0) == (value, len(data))


class TestDecoderBounds:
    def _valid_binary(self) -> bytes:
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), name="id", export="id")
        fb.get_local(0)
        fb.finish()
        return encode_module(builder.build())

    def test_function_body_size_lie(self):
        binary = bytearray(self._valid_binary())
        # find the code section (id 10) and inflate the body size varint
        idx = binary.index(b"\x0a", 8)
        # layout: section id, section size, count, body size, ...
        binary[idx + 3] = 0x7F  # body claims 127 bytes; section is tiny
        with pytest.raises(DecodeError):
            decode_module(bytes(binary))

    def test_truncation_always_decode_error(self):
        binary = self._valid_binary()
        for cut in range(len(binary)):
            try:
                decode_module(binary[:cut])
            except WasmError:
                pass  # DecodeError subclass — the only acceptable failure

    def test_malformed_name_section_preserved_as_custom(self):
        binary = self._valid_binary()
        # append a custom "name" section whose payload is garbage
        payload = bytes([4]) + b"name" + b"\xff\xff\xff"
        section = bytes([0, len(payload)]) + payload
        module = decode_module(binary + section)
        assert any(c.name == "name" for c in module.custom_sections)


class TestLimitsValidation:
    def test_min_above_max_rejected_at_construction(self):
        # Limits(5, 2) cannot even be constructed; a decoder hitting such
        # bytes re-raises this as a DecodeError (covered by TestCampaign)
        with pytest.raises(ValueError):
            Limits(5, 2)

    def test_validator_rejects_oversized_memory(self):
        from repro.wasm.types import MemoryType
        builder = ModuleBuilder()
        builder.add_memory(1)
        module = builder.build()
        # Limits only checks min<=max, not the 4 GiB spec ceiling; the
        # validator owns the MAX_PAGES check
        module.memories[0] = MemoryType(Limits(100_000))
        with pytest.raises(ValidationError, match="hard cap"):
            validate_module(module)
