"""A WebAssembly interpreter with exact MVP semantics.

Stands in for the browser engine the paper runs instrumented binaries on.
"""

from .host import GlobalInstance, HostFunction, Linker
from .machine import (DEFAULT_MAX_CALL_DEPTH, Instance, Machine, WasmFunction,
                      instantiate)
from .memory import Memory
from .table import Table

__all__ = [
    "DEFAULT_MAX_CALL_DEPTH", "GlobalInstance", "HostFunction", "Instance",
    "Linker", "Machine", "Memory", "Table", "WasmFunction", "instantiate",
]
