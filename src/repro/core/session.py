"""One-call convenience for instrumenting and running a module under an analysis.

Mirrors the end-to-end flow of the paper's Figure 2: instrument the binary,
generate the low-level hooks, link everything, and execute — with selective
instrumentation derived automatically from which hooks the analysis
overrides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..interp.host import Linker
from ..interp.limits import ResourceLimits, ResourceUsage
from ..interp.machine import Instance, Machine
from ..wasm.module import Module
from .analysis import Analysis
from .hooks import HOOK_MODULE
from .instrument import (InstrumentationConfig, InstrumentationResult,
                         instrument_module)
from .runtime import WasabiRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs → interp)
    from ..obs.telemetry import Telemetry


class AnalysisSession:
    """An instrumented module instance wired to an analysis.

    ``limits`` applies :class:`~repro.interp.limits.ResourceLimits` to the
    machine the session constructs (mutually exclusive with passing a
    pre-built ``machine``); ``on_analysis_error`` selects the runtime's
    hook-fault policy (see :class:`~repro.core.runtime.WasabiRuntime`);
    ``telemetry`` attaches one :class:`~repro.obs.telemetry.Telemetry` sink
    to the whole pipeline — the session records an ``instrument`` span and
    shares the sink with the machine (engine counters, ``instantiate``/
    ``invoke`` spans) and the runtime (per-hook latency histograms,
    fault/quarantine events).

    ``replay`` shares one :class:`~repro.interp.replay.Recorder` or
    :class:`~repro.interp.replay.Replayer` between the machine (host calls,
    meter clock reads) and the runtime (hook faults, quarantines), so one
    log captures every nondeterminism source of an analysis run.
    """

    def __init__(self, module: Module, analysis: Analysis,
                 linker: Linker | None = None,
                 groups: frozenset[str] | set[str] | None = None,
                 config: InstrumentationConfig | None = None,
                 machine: Machine | None = None,
                 run_start: bool = True,
                 limits: ResourceLimits | None = None,
                 on_analysis_error: str = "raise",
                 telemetry: "Telemetry | None" = None,
                 replay=None):
        if machine is not None and limits is not None:
            raise ValueError(
                "pass either a pre-built machine or limits, not both "
                "(construct the machine with Machine(limits=...) instead)")
        if machine is not None and replay is not None:
            raise ValueError(
                "pass either a pre-built machine or replay, not both "
                "(construct the machine with Machine(replay=...) instead)")
        self.original = module
        self.analysis = analysis
        self.telemetry = telemetry
        if groups is None:
            # selective instrumentation (§2.4.2): only instrument for the
            # hooks the analysis actually overrides
            groups = analysis.used_groups()
        self.groups: frozenset[str] = frozenset(groups)
        if telemetry is None:
            self.result: InstrumentationResult = instrument_module(
                module, groups=self.groups, config=config)
        else:
            with telemetry.span("instrument", groups=len(self.groups)):
                self.result = instrument_module(
                    module, groups=self.groups, config=config)
        if machine is not None:
            # a pre-built machine brings its own recorder/replayer; the
            # runtime must share it so hook faults land in the same log
            replay = machine._replay
        self.replay = replay
        self.runtime = WasabiRuntime(self.result, analysis,
                                     on_analysis_error=on_analysis_error,
                                     telemetry=telemetry,
                                     replay=replay)

        linker = linker or Linker()
        for name, host_func in self.runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, host_func)

        self.machine = machine or Machine(limits=limits, replay=replay)
        if telemetry is not None:
            # attach before instantiation so profiled machines decode the
            # instrumented module unfused (idempotent for a shared sink)
            self.machine.attach_telemetry(telemetry)
        # Instantiate without running start: the runtime must be bound (and
        # the high-level start hook fired) before any hook executes.
        self.instance: Instance = self.machine.instantiate(
            self.result.module, linker, run_start=False)
        self.runtime.bind(self.instance)
        if run_start and self.result.module.start is not None:
            analysis.start()
            self.machine.call(self.instance, self.result.module.start, [])

    @property
    def module_info(self):
        """Static module info exposed to analyses (``Wasabi.module.info``)."""
        return self.result.info.module_info

    @property
    def hook_faults(self):
        """Contained hook faults recorded by the runtime, in order."""
        return self.runtime.hook_faults

    def resource_usage(self) -> ResourceUsage:
        """The machine's resource usage plus the runtime's fault count."""
        usage = self.machine.resource_usage()
        usage.hook_faults = len(self.runtime.hook_faults)
        return usage

    def invoke(self, export_name: str,
               args: Sequence[int | float] = ()) -> list[int | float]:
        """Call an exported function of the instrumented instance."""
        return self.instance.invoke(export_name, args)


def analyze(module: Module, analysis: Analysis,
            linker: Linker | None = None,
            entry: str | None = None,
            args: Sequence[int | float] = (),
            **session_kwargs) -> AnalysisSession:
    """Instrument ``module`` for ``analysis``, optionally invoking ``entry``.

    Returns the session so callers can inspect the analysis state or invoke
    further exports.
    """
    session = AnalysisSession(module, analysis, linker=linker, **session_kwargs)
    if entry is not None:
        session.invoke(entry, args)
    return session
