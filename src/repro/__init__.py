"""Reproduction of "Wasabi: A Framework for Dynamically Analyzing
WebAssembly" (Lehmann & Pradel, ASPLOS 2019).

Public API overview:

* :mod:`repro.wasm` — WebAssembly toolkit (modules, binary format, validation)
* :mod:`repro.interp` — WebAssembly interpreter (the execution substrate)
* :mod:`repro.core` — Wasabi: analysis API, instrumenter, runtime
* :mod:`repro.analyses` — the paper's eight example analyses
* :mod:`repro.minic` — a small C-like language compiling to Wasm
* :mod:`repro.workloads` — PolyBench kernels and synthetic binaries
* :mod:`repro.eval` — the evaluation harness behind the benchmarks
"""

from .core import (Analysis, AnalysisSession, BranchTarget, Location, MemArg,
                   analyze, instrument_module, used_groups)

__version__ = "1.0.0"

__all__ = [
    "Analysis", "AnalysisSession", "BranchTarget", "Location", "MemArg",
    "analyze", "instrument_module", "used_groups", "__version__",
]
