"""PolyBench linear-algebra kernels: 2mm, 3mm, atax, bicg, doitgen, mvt."""

from __future__ import annotations

from .common import register


@register("2mm", "linear-algebra/kernels", 8)
def two_mm(n: int) -> str:
    a, b, c, d, tmp = 0, n * n, 2 * n * n, 3 * n * n, 4 * n * n
    return f"""
memory 8;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    var alpha: f64 = 1.5;
    var beta: f64 = 1.2;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i*j+1) % {n}) / {float(n)};
            mem_f64[{b} + i*{n} + j] = f64(i*(j+1) % {n}) / {float(n)};
            mem_f64[{c} + i*{n} + j] = f64((i*(j+3)+1) % {n}) / {float(n)};
            mem_f64[{d} + i*{n} + j] = f64(i*(j+2) % {n}) / {float(n)};
        }}
    }}
    // tmp = alpha * A * B
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{tmp} + i*{n} + j] = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                mem_f64[{tmp} + i*{n} + j] = mem_f64[{tmp} + i*{n} + j]
                    + alpha * mem_f64[{a} + i*{n} + k] * mem_f64[{b} + k*{n} + j];
            }}
        }}
    }}
    print_f64(checksum_f64({tmp}, {n * n}));
    // D = tmp * C + beta * D
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{d} + i*{n} + j] = mem_f64[{d} + i*{n} + j] * beta;
            for (k = 0; k < {n}; k = k + 1) {{
                mem_f64[{d} + i*{n} + j] = mem_f64[{d} + i*{n} + j]
                    + mem_f64[{tmp} + i*{n} + k] * mem_f64[{c} + k*{n} + j];
            }}
        }}
    }}
    var result: f64 = checksum_f64({d}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("3mm", "linear-algebra/kernels", 8)
def three_mm(n: int) -> str:
    a, b, c, d = 0, n * n, 2 * n * n, 3 * n * n
    e, f, g = 4 * n * n, 5 * n * n, 6 * n * n
    return f"""
memory 8;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i*j+1) % {n}) / (5.0 * {float(n)});
            mem_f64[{b} + i*{n} + j] = f64((i*(j+1)+2) % {n}) / (5.0 * {float(n)});
            mem_f64[{c} + i*{n} + j] = f64(i*(j+3) % {n}) / (5.0 * {float(n)});
            mem_f64[{d} + i*{n} + j] = f64((i*(j+2)+2) % {n}) / (5.0 * {float(n)});
        }}
    }}
    // E = A * B
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var acc: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + mem_f64[{a} + i*{n} + k] * mem_f64[{b} + k*{n} + j];
            }}
            mem_f64[{e} + i*{n} + j] = acc;
        }}
    }}
    // F = C * D
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var acc: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + mem_f64[{c} + i*{n} + k] * mem_f64[{d} + k*{n} + j];
            }}
            mem_f64[{f} + i*{n} + j] = acc;
        }}
    }}
    print_f64(checksum_f64({e}, {n * n}) + checksum_f64({f}, {n * n}));
    // G = E * F
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var acc: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + mem_f64[{e} + i*{n} + k] * mem_f64[{f} + k*{n} + j];
            }}
            mem_f64[{g} + i*{n} + j] = acc;
        }}
    }}
    var result: f64 = checksum_f64({g}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("atax", "linear-algebra/kernels", 12)
def atax(n: int) -> str:
    a, x, y, tmp = 0, n * n, n * n + n, n * n + 2 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x} + i] = 1.0 + f64(i) / fn;
        mem_f64[{y} + i] = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64((i+j) % {n}) / (5.0 * fn);
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{tmp} + i] = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{tmp} + i] = mem_f64[{tmp} + i] + mem_f64[{a} + i*{n} + j] * mem_f64[{x} + j];
        }}
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{y} + j] = mem_f64[{y} + j] + mem_f64[{a} + i*{n} + j] * mem_f64[{tmp} + i];
        }}
    }}
    var result: f64 = checksum_f64({y}, {n});
    print_f64(result);
    return result;
}}
"""


@register("bicg", "linear-algebra/kernels", 12)
def bicg(n: int) -> str:
    a = 0
    s, q, p, r = n * n, n * n + n, n * n + 2 * n, n * n + 3 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{p} + i] = f64(i % {n}) / fn;
        mem_f64[{r} + i] = f64(i % {n}) / fn;
        mem_f64[{s} + i] = 0.0;
        mem_f64[{q} + i] = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(i*(j+1) % {n}) / fn;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{s} + j] = mem_f64[{s} + j] + mem_f64[{r} + i] * mem_f64[{a} + i*{n} + j];
            mem_f64[{q} + i] = mem_f64[{q} + i] + mem_f64[{a} + i*{n} + j] * mem_f64[{p} + j];
        }}
    }}
    var result: f64 = checksum_f64({s}, {n}) + checksum_f64({q}, {n});
    print_f64(result);
    return result;
}}
"""


@register("doitgen", "linear-algebra/kernels", 6)
def doitgen(n: int) -> str:
    # A[r][q][s], C4[s][p], sum[p]
    a, c4, summed = 0, n * n * n, n * n * n + n * n
    return f"""
memory 8;

export func main() -> f64 {{
    var r: i32; var q: i32; var p: i32; var s: i32;
    var fn: f64 = {float(n)};
    for (r = 0; r < {n}; r = r + 1) {{
        for (q = 0; q < {n}; q = q + 1) {{
            for (p = 0; p < {n}; p = p + 1) {{
                mem_f64[{a} + (r*{n} + q)*{n} + p] = f64((r*q + p) % {n}) / fn;
            }}
        }}
    }}
    for (s = 0; s < {n}; s = s + 1) {{
        for (p = 0; p < {n}; p = p + 1) {{
            mem_f64[{c4} + s*{n} + p] = f64(s*p % {n}) / fn;
        }}
    }}
    for (r = 0; r < {n}; r = r + 1) {{
        for (q = 0; q < {n}; q = q + 1) {{
            for (p = 0; p < {n}; p = p + 1) {{
                mem_f64[{summed} + p] = 0.0;
                for (s = 0; s < {n}; s = s + 1) {{
                    mem_f64[{summed} + p] = mem_f64[{summed} + p]
                        + mem_f64[{a} + (r*{n} + q)*{n} + s] * mem_f64[{c4} + s*{n} + p];
                }}
            }}
            for (p = 0; p < {n}; p = p + 1) {{
                mem_f64[{a} + (r*{n} + q)*{n} + p] = mem_f64[{summed} + p];
            }}
        }}
    }}
    var result: f64 = checksum_f64({a}, {n * n * n});
    print_f64(result);
    return result;
}}
"""


@register("mvt", "linear-algebra/kernels", 12)
def mvt(n: int) -> str:
    a = 0
    x1, x2, y1, y2 = n * n, n * n + n, n * n + 2 * n, n * n + 3 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x1} + i] = f64(i % {n}) / fn;
        mem_f64[{x2} + i] = f64((i + 1) % {n}) / fn;
        mem_f64[{y1} + i] = f64((i + 3) % {n}) / fn;
        mem_f64[{y2} + i] = f64((i + 4) % {n}) / fn;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(i*j % {n}) / fn;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{x1} + i] = mem_f64[{x1} + i] + mem_f64[{a} + i*{n} + j] * mem_f64[{y1} + j];
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{x2} + i] = mem_f64[{x2} + i] + mem_f64[{a} + j*{n} + i] * mem_f64[{y2} + j];
        }}
    }}
    var result: f64 = checksum_f64({x1}, {n}) + checksum_f64({x2}, {n});
    print_f64(result);
    return result;
}}
"""
