"""MiniC type checker.

Annotates every expression with its :class:`ValType` (``None`` = void),
resolves names to local slots / globals / functions, applies contextual
typing of numeric literals, and verifies the usual C-like rules (explicit
casts only, i32 conditions, matching call signatures).

Locals are assigned dense per-function slots (parameters first) that the
code generator maps directly onto WebAssembly locals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..wasm.types import F32, F64, I32, I64, ValType
from . import ast
from .errors import TypeError_

_INT_TYPES = (I32, I64)
_FLOAT_TYPES = (F32, F64)

_FLOAT_ONLY_BUILTINS = {"sqrt", "floor", "ceil", "nearest", "trunc", "abs", "neg"}
_FLOAT_BINARY_BUILTINS = {"min", "max", "copysign"}
_INT_UNARY_BUILTINS = {"clz", "ctz", "popcnt"}
_INT_BINARY_BUILTINS = {"rotl", "rotr", "div_u", "rem_u", "shr_u"}
_INT_COMPARE_BUILTINS = {"lt_u", "le_u", "gt_u", "ge_u"}

_INT_ONLY_OPS = {"%", "&", "|", "^", "<<", ">>"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass
class FuncSig:
    decl: ast.FuncDecl
    params: tuple[ValType, ...]
    result: ValType | None


@dataclass
class CheckedProgram:
    """The type-checked program plus the symbol tables codegen needs."""

    program: ast.Program
    functions: dict[str, FuncSig] = field(default_factory=dict)
    globals: dict[str, tuple[int, ast.GlobalDecl]] = field(default_factory=dict)
    types: dict[str, ast.TypeDecl] = field(default_factory=dict)
    #: per function name: local slot types (params first)
    local_slots: dict[str, list[ValType]] = field(default_factory=dict)


class TypeChecker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.checked = CheckedProgram(program)
        self._scopes: list[dict[str, tuple[int, ValType]]] = []
        self._slots: list[ValType] = []
        self._current: ast.FuncDecl | None = None

    # -- entry point --------------------------------------------------------------

    def check(self) -> CheckedProgram:
        for typedecl in self.program.types:
            if typedecl.name in self.checked.types:
                raise TypeError_(f"duplicate type {typedecl.name!r}", typedecl.line)
            self.checked.types[typedecl.name] = typedecl
        for func in self.program.functions:
            if func.name in self.checked.functions:
                raise TypeError_(f"duplicate function {func.name!r}", func.line)
            self.checked.functions[func.name] = FuncSig(
                func, tuple(p.valtype for p in func.params), func.result)
        for index, decl in enumerate(self.program.globals):
            if decl.name in self.checked.globals:
                raise TypeError_(f"duplicate global {decl.name!r}", decl.line)
            if not isinstance(decl.init, (ast.IntLiteral, ast.FloatLiteral)):
                raise TypeError_("global initializer must be a literal", decl.line)
            self._coerce(decl.init, decl.valtype)
            self.checked.globals[decl.name] = (index, decl)
        if self.program.table is not None:
            for name in self.program.table.entries:
                if name not in self.checked.functions:
                    raise TypeError_(f"table entry {name!r} is not a function",
                                     self.program.table.line)
        if self.program.start is not None:
            sig = self.checked.functions.get(self.program.start)
            if sig is None:
                raise TypeError_(f"start function {self.program.start!r} not found")
            if sig.params or sig.result is not None:
                raise TypeError_("start function must take and return nothing")
        for func in self.program.functions:
            if not func.imported:
                self._check_function(func)
        return self.checked

    # -- functions -------------------------------------------------------------------

    def _check_function(self, func: ast.FuncDecl) -> None:
        self._current = func
        self._slots = [p.valtype for p in func.params]
        self._scopes = [{p.name: (i, p.valtype) for i, p in enumerate(func.params)}]
        if len(self._scopes[0]) != len(func.params):
            raise TypeError_(f"duplicate parameter name in {func.name}", func.line)
        self._check_block(func.body)
        if func.result is not None and not _terminates(func.body):
            raise TypeError_(
                f"function {func.name!r} returns {func.result} but control can "
                f"fall off the end of its body", func.line)
        self.checked.local_slots[func.name] = self._slots

    def _check_block(self, body: list[ast.Stmt]) -> None:
        self._scopes.append({})
        for stmt in body:
            self._check_stmt(stmt)
        self._scopes.pop()

    # -- statements --------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self._scopes[-1]:
                raise TypeError_(f"redeclaration of {stmt.name!r}", stmt.line)
            if stmt.init is not None:
                self._check_expr(stmt.init)
                self._coerce(stmt.init, stmt.valtype)
            slot = len(self._slots)
            self._slots.append(stmt.valtype)
            self._scopes[-1][stmt.name] = (slot, stmt.valtype)
            stmt.slot = slot  # annotation for codegen
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                self._resolve_name(target)
                self._coerce(stmt.value, target.type)
            else:  # MemAccess
                self._check_mem_target(target)
                self._coerce(stmt.value, target.type)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.condition)
            self._check_block(stmt.then_body)
            self._check_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.condition)
            self._check_block(stmt.body)
        elif isinstance(stmt, ast.For):
            self._scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.condition is not None:
                self._check_condition(stmt.condition)
            self._check_block(stmt.body)
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self._scopes.pop()
        elif isinstance(stmt, ast.Return):
            expected = self._current.result
            if expected is None:
                if stmt.value is not None:
                    raise TypeError_("void function returns a value", stmt.line)
            else:
                if stmt.value is None:
                    raise TypeError_(f"missing return value ({expected})", stmt.line)
                self._check_expr(stmt.value)
                self._coerce(stmt.value, expected)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass  # loop nesting is validated during codegen
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt.body)
        else:  # pragma: no cover
            raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_condition(self, expr: ast.Expr) -> None:
        self._check_expr(expr)
        self._coerce(expr, I32)

    def _check_mem_target(self, target: ast.MemAccess) -> None:
        self._check_expr(target.index)
        self._coerce(target.index, I32)
        target.type = _mem_view_type(target.view)

    # -- expressions --------------------------------------------------------------------

    def _resolve_name(self, name: ast.Name) -> None:
        for scope in reversed(self._scopes):
            if name.ident in scope:
                slot, valtype = scope[name.ident]
                name.kind = "local"
                name.slot = slot
                name.type = valtype
                return
        if name.ident in self.checked.globals:
            index, decl = self.checked.globals[name.ident]
            name.kind = "global"
            name.slot = index
            name.type = decl.valtype
            return
        raise TypeError_(f"undefined name {name.ident!r}", name.line)

    def _check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            expr.type = I64 if expr.suffix == "L" else I32
        elif isinstance(expr, ast.FloatLiteral):
            expr.type = F32 if expr.suffix == "f" else F64
        elif isinstance(expr, ast.Name):
            self._resolve_name(expr)
        elif isinstance(expr, ast.Unary):
            self._check_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._check_binary(expr)
        elif isinstance(expr, ast.Call):
            self._check_call(expr)
        elif isinstance(expr, ast.IndirectCall):
            self._check_indirect(expr)
        elif isinstance(expr, ast.MemAccess):
            self._check_mem_target(expr)
        elif isinstance(expr, ast.Cast):
            self._check_expr(expr.operand)
            if expr.operand.type is None:
                raise TypeError_("cannot cast a void expression", expr.line)
            expr.type = expr.target
        elif isinstance(expr, ast.Select):
            self._check_condition(expr.condition)
            self._check_expr(expr.if_true)
            self._check_expr(expr.if_false)
            self._unify(expr.if_true, expr.if_false, expr.line)
            expr.type = expr.if_true.type
        elif isinstance(expr, ast.Builtin):
            self._check_builtin(expr)
        else:  # pragma: no cover
            raise TypeError_(f"unknown expression {type(expr).__name__}", expr.line)

    def _check_unary(self, expr: ast.Unary) -> None:
        self._check_expr(expr.operand)
        operand_type = expr.operand.type
        if operand_type is None:
            raise TypeError_("unary operator on void expression", expr.line)
        if expr.op == "-":
            expr.type = operand_type
        elif expr.op == "!":
            if operand_type not in _INT_TYPES:
                raise TypeError_("! requires an integer operand", expr.line)
            expr.type = I32
        elif expr.op == "~":
            if operand_type not in _INT_TYPES:
                raise TypeError_("~ requires an integer operand", expr.line)
            expr.type = operand_type
        else:  # pragma: no cover
            raise TypeError_(f"unknown unary operator {expr.op}", expr.line)

    def _check_binary(self, expr: ast.Binary) -> None:
        self._check_expr(expr.left)
        self._check_expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            self._coerce(expr.left, I32)
            self._coerce(expr.right, I32)
            expr.type = I32
            return
        self._unify(expr.left, expr.right, expr.line)
        operand_type = expr.left.type
        if op in _INT_ONLY_OPS and operand_type not in _INT_TYPES:
            raise TypeError_(f"{op} requires integer operands, got {operand_type}",
                             expr.line)
        expr.type = I32 if op in _COMPARISONS else operand_type

    def _check_call(self, expr: ast.Call) -> None:
        sig = self.checked.functions.get(expr.func)
        if sig is None:
            raise TypeError_(f"undefined function {expr.func!r}", expr.line)
        if len(expr.args) != len(sig.params):
            raise TypeError_(
                f"{expr.func} expects {len(sig.params)} arguments, got "
                f"{len(expr.args)}", expr.line)
        for arg, param_type in zip(expr.args, sig.params):
            self._check_expr(arg)
            self._coerce(arg, param_type)
        expr.type = sig.result
        expr.sig = sig

    def _check_indirect(self, expr: ast.IndirectCall) -> None:
        typedecl = self.checked.types.get(expr.typename)
        if typedecl is None:
            raise TypeError_(f"undefined function type {expr.typename!r}", expr.line)
        self._check_expr(expr.index)
        self._coerce(expr.index, I32)
        if len(expr.args) != len(typedecl.params):
            raise TypeError_(
                f"type {expr.typename} expects {len(typedecl.params)} arguments, "
                f"got {len(expr.args)}", expr.line)
        for arg, param_type in zip(expr.args, typedecl.params):
            self._check_expr(arg)
            self._coerce(arg, param_type)
        expr.type = typedecl.result
        expr.typedecl = typedecl

    def _check_builtin(self, expr: ast.Builtin) -> None:
        name = expr.name
        for arg in expr.args:
            self._check_expr(arg)

        def need(count: int) -> None:
            if len(expr.args) != count:
                raise TypeError_(f"{name} expects {count} argument(s), got "
                                 f"{len(expr.args)}", expr.line)

        if name in _FLOAT_ONLY_BUILTINS:
            need(1)
            if expr.args[0].type not in _FLOAT_TYPES:
                self._coerce(expr.args[0], F64)
            expr.type = expr.args[0].type
        elif name in _FLOAT_BINARY_BUILTINS:
            need(2)
            self._unify(expr.args[0], expr.args[1], expr.line, prefer=F64)
            if expr.args[0].type not in _FLOAT_TYPES:
                raise TypeError_(f"{name} requires float operands", expr.line)
            expr.type = expr.args[0].type
        elif name in _INT_UNARY_BUILTINS:
            need(1)
            if expr.args[0].type not in _INT_TYPES:
                raise TypeError_(f"{name} requires an integer operand", expr.line)
            expr.type = expr.args[0].type
        elif name in _INT_BINARY_BUILTINS or name in _INT_COMPARE_BUILTINS:
            need(2)
            self._unify(expr.args[0], expr.args[1], expr.line)
            if expr.args[0].type not in _INT_TYPES:
                raise TypeError_(f"{name} requires integer operands", expr.line)
            expr.type = I32 if name in _INT_COMPARE_BUILTINS else expr.args[0].type
        elif name == "eqz":
            need(1)
            if expr.args[0].type not in _INT_TYPES:
                raise TypeError_("eqz requires an integer operand", expr.line)
            expr.type = I32
        elif name == "memory_size":
            need(0)
            expr.type = I32
        elif name == "memory_grow":
            need(1)
            self._coerce(expr.args[0], I32)
            expr.type = I32
        elif name in ("nop", "unreachable"):
            need(0)
            expr.type = None
        else:  # pragma: no cover - parser only admits known builtins
            raise TypeError_(f"unknown builtin {name!r}", expr.line)

    # -- literal coercion and unification --------------------------------------------------

    def _coerce(self, expr: ast.Expr, expected: ValType) -> None:
        """Coerce a numeric literal to ``expected``; otherwise require equality."""
        if expr.type == expected:
            return
        if isinstance(expr, ast.IntLiteral) and expr.suffix is None:
            if expected in _INT_TYPES:
                expr.type = expected
                return
            if expected in _FLOAT_TYPES:
                # promote the literal to a float literal of the right width
                expr.type = expected
                expr.coerced_float = float(expr.value)
                return
        if isinstance(expr, ast.FloatLiteral) and expr.suffix is None \
                and expected in _FLOAT_TYPES:
            expr.type = expected
            return
        if isinstance(expr, ast.Unary) and isinstance(expr.operand,
                                                      (ast.IntLiteral,
                                                       ast.FloatLiteral)):
            # allow e.g. -1 where an i64/f64 is expected
            self._coerce(expr.operand, expected)
            if expr.operand.type == expected:
                expr.type = expected
                return
        raise TypeError_(f"type mismatch: expected {expected}, got {expr.type}",
                         expr.line)

    def _unify(self, left: ast.Expr, right: ast.Expr, line: int,
               prefer: ValType | None = None) -> None:
        if left.type == right.type:
            return
        for a, b in ((left, right), (right, left)):
            if isinstance(a, (ast.IntLiteral, ast.FloatLiteral)) \
                    or (isinstance(a, ast.Unary)
                        and isinstance(a.operand, (ast.IntLiteral, ast.FloatLiteral))):
                try:
                    self._coerce(a, b.type)
                    return
                except TypeError_:
                    pass
        raise TypeError_(f"operand types differ: {left.type} vs {right.type}", line)


def _terminates(body: list[ast.Stmt]) -> bool:
    """Conservative check that control cannot fall off the end of ``body``."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, ast.Return):
        return True
    if isinstance(last, ast.If):
        return (bool(last.else_body) and _terminates(last.then_body)
                and _terminates(last.else_body))
    if isinstance(last, ast.Block):
        return _terminates(last.body)
    if isinstance(last, ast.ExprStmt) and isinstance(last.expr, ast.Builtin) \
            and last.expr.name == "unreachable":
        return True
    return False


def _mem_view_type(view: str) -> ValType:
    return {"i32": I32, "i64": I64, "f32": F32, "f64": F64,
            "u8": I32, "u16": I32}[view]


def check(program: ast.Program) -> CheckedProgram:
    """Type check a parsed program."""
    return TypeChecker(program).check()
