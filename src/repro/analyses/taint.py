"""Dynamic taint analysis (paper Table 4, row 6).

Associates a set of taint labels with every value and tracks propagation
through instructions, locals, globals, function calls, and linear memory,
detecting illegal flows from *sources* to *sinks*.

This is the paper's flagship "heavyweight" example: it implements memory
shadowing (§2.3) purely in the analysis language — a shadow value stack per
frame, shadow locals, shadow globals, and a per-byte shadow memory that
never touches the program's own linear memory (preserving the program's
memory behaviour, §1).

Shadow-stack reconstruction exploits the begin/end hooks: ``begin`` records
the stack height at block entry, and every ``end`` re-synchronizes the
shadow stack to that height (plus at most one block result), so the shadow
stack cannot drift across branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analysis import Analysis, Location
from ..core.metadata import ModuleInfo

Taint = frozenset
CLEAN: Taint = frozenset()


@dataclass
class TaintFlow:
    """A detected source→sink flow."""

    labels: Taint
    sink: int                 # sink function index
    location: Location        # call site
    arg_index: int


@dataclass
class _PendingCall:
    args: list[Taint]
    callee: int
    entered: bool = False
    result_taint: Taint = CLEAN


class _Frame:
    __slots__ = ("stack", "locals", "block_heights", "return_taint", "pending")

    def __init__(self, arg_taints: list[Taint] | None = None,
                 pending: _PendingCall | None = None):
        self.stack: list[Taint] = []
        self.locals: dict[int, Taint] = dict(enumerate(arg_taints or []))
        self.block_heights: dict[Location, int] = {}
        self.return_taint: Taint = CLEAN
        self.pending = pending


def _access_width(op: str) -> int:
    """Byte width of a load/store mnemonic."""
    if op.endswith(("8_s", "8_u", "store8")):
        return 1
    if op.endswith(("16_s", "16_u", "store16")):
        return 2
    if op.endswith(("32_s", "32_u", "store32")):
        return 4
    return 4 if op.startswith(("i32", "f32")) else 8


class TaintAnalysis(Analysis):
    """Forward taint tracking with configurable sources and sinks.

    Sources: results of designated functions, or explicitly tainted memory
    ranges. Sinks: arguments of designated functions. Pointer taint does
    not propagate into loaded values by default (``propagate_addresses``).
    """

    def __init__(self, propagate_addresses: bool = False):
        self.propagate_addresses = propagate_addresses
        self.frames: list[_Frame] = [_Frame()]
        self.calls: list[_PendingCall] = []
        self.shadow_memory: dict[int, Taint] = {}
        self.shadow_globals: dict[int, Taint] = {}
        self.source_funcs: dict[int, str] = {}
        self.sink_funcs: set[int] = set()
        self._source_names: dict[str, str] = {}
        self._sink_names: set[str] = set()
        self.flows: list[TaintFlow] = []
        self.underflows = 0

    # -- policy configuration ---------------------------------------------------

    def add_source_function(self, func: int | str, label: str) -> None:
        """Results of calls to ``func`` become tainted with ``label``."""
        if isinstance(func, int):
            self.source_funcs[func] = label
        else:
            self._source_names[func] = label

    def add_sink_function(self, func: int | str) -> None:
        """Tainted arguments reaching ``func`` are reported as flows."""
        if isinstance(func, int):
            self.sink_funcs.add(func)
        else:
            self._sink_names.add(func)

    def bind_module_info(self, module_info: ModuleInfo) -> None:
        """Resolve source/sink names registered before the module was known."""
        for info in module_info.functions:
            names = {info.name, *info.export_names}
            for name in names:
                if name in self._source_names:
                    self.source_funcs[info.idx] = self._source_names[name]
                if name in self._sink_names:
                    self.sink_funcs.add(info.idx)

    def taint_memory(self, addr: int, size: int, label: str) -> None:
        """Explicitly taint a memory range (an input-buffer source)."""
        taint = frozenset({label})
        for offset in range(size):
            self.shadow_memory[addr + offset] = \
                self.shadow_memory.get(addr + offset, CLEAN) | taint

    def memory_taint(self, addr: int, size: int = 1) -> Taint:
        out = CLEAN
        for offset in range(size):
            out |= self.shadow_memory.get(addr + offset, CLEAN)
        return out

    # -- shadow stack primitives -----------------------------------------------

    @property
    def _frame(self) -> _Frame:
        return self.frames[-1]

    def _push(self, taint: Taint) -> None:
        self._frame.stack.append(taint)

    def _pop(self) -> Taint:
        stack = self._frame.stack
        if not stack:
            self.underflows += 1
            return CLEAN
        return stack.pop()

    # -- value-producing / consuming hooks ------------------------------------------

    def const_(self, location, value):
        self._push(CLEAN)

    def drop(self, location, value):
        self._pop()

    def select(self, location, condition, first, second):
        cond_taint = self._pop()
        second_taint = self._pop()
        first_taint = self._pop()
        chosen = first_taint if condition else second_taint
        self._push(chosen | cond_taint)

    def unary(self, location, op, input, result):
        self._push(self._pop())

    def binary(self, location, op, first, second, result):
        second_taint = self._pop()
        first_taint = self._pop()
        self._push(first_taint | second_taint)

    def local(self, location, op, index, value):
        frame = self._frame
        if op == "get_local":
            self._push(frame.locals.get(index, CLEAN))
        elif op == "set_local":
            frame.locals[index] = self._pop()
        else:  # tee_local
            frame.locals[index] = frame.stack[-1] if frame.stack else CLEAN

    def global_(self, location, op, index, value):
        if op == "get_global":
            self._push(self.shadow_globals.get(index, CLEAN))
        else:
            self.shadow_globals[index] = self._pop()

    def load(self, location, op, memarg, value):
        addr_taint = self._pop()
        effective = memarg.addr + memarg.offset
        taint = self.memory_taint(effective, _access_width(op))
        if self.propagate_addresses:
            taint |= addr_taint
        self._push(taint)

    def store(self, location, op, memarg, value):
        value_taint = self._pop()
        self._pop()  # address operand
        effective = memarg.addr + memarg.offset
        for offset in range(_access_width(op)):
            if value_taint:
                self.shadow_memory[effective + offset] = value_taint
            else:
                self.shadow_memory.pop(effective + offset, None)

    def memory_size(self, location, size):
        self._push(CLEAN)

    def memory_grow(self, location, delta, previous):
        self._push(self._pop())

    # -- calls and frames -----------------------------------------------------------

    def call_pre(self, location, func, args, table_index):
        if table_index is not None:
            self._pop()  # the dynamic table index operand
        arg_taints = [self._pop() for _ in args][::-1]
        if func in self.sink_funcs:
            for arg_index, taint in enumerate(arg_taints):
                if taint:
                    self.flows.append(TaintFlow(taint, func, location, arg_index))
        self.calls.append(_PendingCall(arg_taints, func))

    def call_post(self, location, results):
        result_taint = CLEAN
        if self.calls:
            pending = self.calls.pop()
            result_taint = pending.result_taint
            label = self.source_funcs.get(pending.callee)
            if label is not None:
                result_taint |= frozenset({label})
        for _ in results:
            self._push(result_taint)

    def return_(self, location, results):
        if results and self._frame.stack:
            self._frame.return_taint |= self._frame.stack[-1]

    # -- blocks: shadow stack resynchronization -----------------------------------------

    def begin(self, location, block_type):
        if block_type == "function":
            pending = None
            if self.calls and not self.calls[-1].entered:
                pending = self.calls[-1]
                pending.entered = True
            self.frames.append(_Frame(pending.args if pending else None, pending))
            return
        self._frame.block_heights[location] = len(self._frame.stack)

    def end(self, location, block_type, begin_location):
        frame = self._frame
        if block_type == "function":
            if len(self.frames) > 1:
                finished = self.frames.pop()
                if finished.pending is not None:
                    finished.pending.result_taint = finished.return_taint
            return
        target = frame.block_heights.get(begin_location)
        if target is None:
            return
        if len(frame.stack) > target:
            # keep at most one value: the block result
            frame.stack[target:] = [frame.stack[-1]]

    # -- condition-consuming control flow ---------------------------------------------

    def if_(self, location, condition):
        self._pop()

    def br_if(self, location, target, condition):
        self._pop()

    def br_table(self, location, table, default_target, table_index):
        self._pop()

    # br and nop have no stack effect; unreachable traps.

    # -- reporting ------------------------------------------------------------------------

    def tainted_memory_bytes(self) -> int:
        return len(self.shadow_memory)

    def has_flow(self, label: str | None = None) -> bool:
        if label is None:
            return bool(self.flows)
        return any(label in flow.labels for flow in self.flows)
