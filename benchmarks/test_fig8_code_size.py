"""Figure 8: binary size increase per instrumented hook group (RQ4).

For every hook group (and 'all'), instruments each program selectively and
reports the encoded-size increase as a percentage — PolyBench as the mean
over all 30 kernels, plus the two real-world stand-ins, matching the
paper's three series.
"""

from __future__ import annotations

import statistics

from repro.core import instrument_module
from repro.eval import FIGURE_GROUPS, render_fig8, size_sweep
from repro.workloads import engine_demo, pdf_toolkit
from repro.workloads.polybench import compile_kernel, kernel_names


def test_fig8(benchmark, write_report):
    configs = FIGURE_GROUPS + ["all"]
    polybench_reports = []
    for name in kernel_names():
        polybench_reports.extend(size_sweep(name, compile_kernel(name)))
    series = {
        "PolyBench (mean)": polybench_reports,
        "PSPDFKit~": size_sweep("pdf_toolkit", pdf_toolkit()),
        "UnrealEngine~": size_sweep("engine_demo", engine_demo()),
    }
    write_report("fig8_code_size", render_fig8(series, configs))

    def mean_increase(reports, config):
        values = [r.increase_percent for r in reports if r.config == config]
        return statistics.mean(values)

    poly = polybench_reports
    # paper-shape assertions:
    # (1) rare-instruction hooks cost (almost) nothing
    for cheap in ["nop", "unreachable", "memory_size", "memory_grow"]:
        assert mean_increase(poly, cheap) < 2.0
    # (2) frequent-instruction hooks dominate
    assert mean_increase(poly, "binary") > mean_increase(poly, "drop")
    assert mean_increase(poly, "local") > 30
    assert mean_increase(poly, "const") > 30
    assert mean_increase(poly, "load") > 10
    # (3) 'all' is several hundred percent (paper: 495-743%)
    assert 300 < mean_increase(poly, "all") < 1200
    # (4) PolyBench (numeric) pays more for `binary` than the diverse
    #     real-world code (paper's explanation of the binary-hook gap)
    assert mean_increase(poly, "binary") > \
        mean_increase(series["UnrealEngine~"], "binary")

    # benchmark: one full instrumentation of the engine binary
    module = engine_demo()
    result = benchmark.pedantic(lambda: instrument_module(module), rounds=3,
                                iterations=1)
    assert result.hook_count > 0
