"""MiniC parser: recursive descent with precedence climbing for expressions.

Grammar sketch::

    program    := (funcdecl | globaldecl | typedecl | tabledecl | memorydecl | startdecl)*
    funcdecl   := 'import'? 'export'? 'func' IDENT '(' params ')' ('->' type)?
                  (block | ';')          // ';' only for imports
    globaldecl := 'export'? 'global' IDENT ':' type '=' expr ';'
    typedecl   := 'type' IDENT '=' 'func' '(' types ')' ('->' type)? ';'
    tabledecl  := 'table' '[' IDENT,* ']' ';'
    memorydecl := 'memory' INT ';'
    startdecl  := 'start' IDENT ';'
    stmt       := vardecl | assign | if | while | for | return | break
                | continue | block | exprstmt
    expr       := precedence-climbed binary expression over unary/postfix
"""

from __future__ import annotations

from ..wasm.types import F32, F64, I32, I64, ValType
from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

_TYPES = {"i32": I32, "i64": I64, "f32": F32, "f64": F64}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_MEM_VIEWS = {"mem_i32": "i32", "mem_i64": "i64", "mem_f32": "f32",
              "mem_f64": "f64", "mem_u8": "u8", "mem_u16": "u16"}

_BUILTINS = {
    "sqrt", "abs", "min", "max", "floor", "ceil", "nearest", "trunc",
    "copysign", "clz", "ctz", "popcnt", "rotl", "rotr", "memory_size",
    "memory_grow", "nop", "unreachable", "div_u", "rem_u", "shr_u",
    "lt_u", "le_u", "gt_u", "ge_u", "eqz", "neg",
}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {self.current.text!r}",
                             self.current.line)
        return self.advance()

    def parse_type(self) -> ValType:
        token = self.expect("ident")
        try:
            return _TYPES[token.text]
        except KeyError:
            raise ParseError(f"unknown type {token.text!r}", token.line) from None

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            line = self.current.line
            if self.check("keyword", "type"):
                program.types.append(self.parse_typedecl())
            elif self.check("keyword", "table"):
                if program.table is not None:
                    raise ParseError("duplicate table declaration", line)
                program.table = self.parse_tabledecl()
            elif self.check("keyword", "memory"):
                if program.memory is not None:
                    raise ParseError("duplicate memory declaration", line)
                self.advance()
                pages = self.expect("int")
                self.expect("op", ";")
                program.memory = ast.MemoryDecl(line=line, pages=int(pages.value))
            elif self.check("keyword", "start"):
                self.advance()
                program.start = self.expect("ident").text
                self.expect("op", ";")
            else:
                exported = imported = False
                import_module = "env"
                while True:
                    if self.accept("keyword", "export"):
                        exported = True
                    elif self.accept("keyword", "import"):
                        imported = True
                        if self.accept("keyword", "from"):
                            import_module = self.expect("string").text
                    else:
                        break
                if self.check("keyword", "global"):
                    decl = self.parse_globaldecl()
                    decl.exported = exported
                    program.globals.append(decl)
                elif self.check("keyword", "func"):
                    decl = self.parse_funcdecl(imported, import_module)
                    decl.exported = exported
                    program.functions.append(decl)
                else:
                    raise ParseError(
                        f"expected declaration, found {self.current.text!r}", line)
        return program

    def parse_typedecl(self) -> ast.TypeDecl:
        line = self.expect("keyword", "type").line
        name = self.expect("ident").text
        self.expect("op", "=")
        self.expect("keyword", "func")
        self.expect("op", "(")
        params: list[ValType] = []
        while not self.check("op", ")"):
            params.append(self.parse_type())
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        result = self.parse_type() if self.accept("op", "->") else None
        self.expect("op", ";")
        return ast.TypeDecl(line=line, name=name, params=params, result=result)

    def parse_tabledecl(self) -> ast.TableDecl:
        line = self.expect("keyword", "table").line
        self.expect("op", "[")
        entries: list[str] = []
        while not self.check("op", "]"):
            entries.append(self.expect("ident").text)
            if not self.accept("op", ","):
                break
        self.expect("op", "]")
        self.expect("op", ";")
        return ast.TableDecl(line=line, entries=entries)

    def parse_globaldecl(self) -> ast.GlobalDecl:
        line = self.expect("keyword", "global").line
        name = self.expect("ident").text
        self.expect("op", ":")
        valtype = self.parse_type()
        self.expect("op", "=")
        init = self.parse_expr()
        self.expect("op", ";")
        return ast.GlobalDecl(line=line, name=name, valtype=valtype, init=init)

    def parse_funcdecl(self, imported: bool, import_module: str) -> ast.FuncDecl:
        line = self.expect("keyword", "func").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[ast.Param] = []
        while not self.check("op", ")"):
            pname = self.expect("ident").text
            self.expect("op", ":")
            params.append(ast.Param(line=self.current.line, name=pname,
                                    valtype=self.parse_type()))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        result = self.parse_type() if self.accept("op", "->") else None
        decl = ast.FuncDecl(line=line, name=name, params=params, result=result,
                            imported=imported, import_module=import_module)
        if imported:
            self.expect("op", ";")
        else:
            decl.body = self.parse_block()
        return decl

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        body: list[ast.Stmt] = []
        while not self.check("op", "}"):
            body.append(self.parse_stmt())
        self.expect("op", "}")
        return body

    def parse_stmt(self) -> ast.Stmt:
        token = self.current
        line = token.line
        if self.check("op", "{"):
            return ast.Block(line=line, body=self.parse_block())
        if self.accept("keyword", "var"):
            name = self.expect("ident").text
            self.expect("op", ":")
            valtype = self.parse_type()
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            self.expect("op", ";")
            return ast.VarDecl(line=line, name=name, valtype=valtype, init=init)
        if self.accept("keyword", "if"):
            return self._parse_if(line)
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            condition = self.parse_expr()
            self.expect("op", ")")
            return ast.While(line=line, condition=condition,
                             body=self.parse_block())
        if self.accept("keyword", "for"):
            self.expect("op", "(")
            init = None if self.check("op", ";") else self.parse_simple_stmt()
            self.expect("op", ";")
            condition = None if self.check("op", ";") else self.parse_expr()
            self.expect("op", ";")
            step = None if self.check("op", ")") else self.parse_simple_stmt()
            self.expect("op", ")")
            return ast.For(line=line, init=init, condition=condition,
                           step=step, body=self.parse_block())
        if self.accept("keyword", "return"):
            value = None if self.check("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return ast.Return(line=line, value=value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break(line=line)
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=line)
        stmt = self.parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def _parse_if(self, line: int) -> ast.If:
        self.expect("op", "(")
        condition = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[ast.Stmt] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                self.advance()
                else_body = [self._parse_if(self.current.line)]
            else:
                else_body = self.parse_block()
        return ast.If(line=line, condition=condition, then_body=then_body,
                      else_body=else_body)

    def parse_simple_stmt(self) -> ast.Stmt:
        """A statement without trailing ';': assignment, var decl, or expression."""
        line = self.current.line
        if self.accept("keyword", "var"):
            name = self.expect("ident").text
            self.expect("op", ":")
            valtype = self.parse_type()
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            return ast.VarDecl(line=line, name=name, valtype=valtype, init=init)
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Name, ast.MemAccess)):
                raise ParseError("invalid assignment target", line)
            return ast.Assign(line=line, target=expr, value=self.parse_expr())
        return ast.ExprStmt(line=line, expr=expr)

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_expr(prec + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left,
                              right=right)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.current
        line = token.line
        if token.kind == "int":
            self.advance()
            suffix = "L" if token.text.endswith(("L", "l")) else None
            return ast.IntLiteral(line=line, value=int(token.value), suffix=suffix)
        if token.kind == "float":
            self.advance()
            suffix = "f" if token.text.endswith(("f", "F")) else None
            return ast.FloatLiteral(line=line, value=float(token.value),
                                    suffix=suffix)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            name = token.text
            if name in _MEM_VIEWS:
                self.advance()
                self.expect("op", "[")
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.MemAccess(line=line, view=_MEM_VIEWS[name], index=index)
            if name == "call_indirect":
                self.advance()
                self.expect("op", "[")
                typename = self.expect("ident").text
                self.expect("op", "]")
                self.expect("op", "(")
                index = self.parse_expr()
                args: list[ast.Expr] = []
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.IndirectCall(line=line, typename=typename,
                                        index=index, args=args)
            if name == "select":
                self.advance()
                self.expect("op", "(")
                condition = self.parse_expr()
                self.expect("op", ",")
                if_true = self.parse_expr()
                self.expect("op", ",")
                if_false = self.parse_expr()
                self.expect("op", ")")
                return ast.Select(line=line, condition=condition,
                                  if_true=if_true, if_false=if_false)
            if name in _TYPES and self.tokens[self.pos + 1].text == "(":
                self.advance()
                self.expect("op", "(")
                operand = self.parse_expr()
                self.expect("op", ")")
                return ast.Cast(line=line, target=_TYPES[name], operand=operand)
            if name in _BUILTINS and self.tokens[self.pos + 1].text == "(":
                self.advance()
                self.expect("op", "(")
                args = []
                while not self.check("op", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
                return ast.Builtin(line=line, name=name, args=args)
            self.advance()
            if self.accept("op", "("):
                args = []
                while not self.check("op", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
                return ast.Call(line=line, func=name, args=args)
            return ast.Name(line=line, ident=name)
        raise ParseError(f"unexpected token {token.text!r}", line)


def parse(source: str) -> ast.Program:
    """Parse MiniC source into an AST."""
    return Parser(source).parse_program()
