"""RQ2 (paper §4.3): instrumented programs behave exactly like the originals.

Covers (a) all 30 PolyBench kernels with their printed intermediate results,
(b) the synthetic real-world stand-ins, (c) the spec-test corpus including
trap equivalence, and (d) validation of every instrumented binary.
"""

import pytest

from repro.core import Analysis, AnalysisSession, instrument_module
from repro.eval import check_workload, polybench_workloads, realworld_workloads
from repro.interp import Machine
from repro.wasm import Trap, validate_module
from repro.workloads.polybench import kernel_names
from repro.workloads.spec_corpus import corpus


class TestPolybenchFaithfulness:
    @pytest.mark.parametrize("workload", polybench_workloads(),
                             ids=lambda w: w.name)
    def test_kernel(self, workload):
        result = check_workload(workload)
        assert result.validates, f"{workload.name}: instrumented module invalid"
        assert result.outputs_match, (
            f"{workload.name}: {result.original_result} != "
            f"{result.instrumented_result}")


class TestRealWorldFaithfulness:
    @pytest.mark.parametrize("workload", realworld_workloads(),
                             ids=lambda w: w.name)
    def test_workload(self, workload):
        result = check_workload(workload)
        assert result.ok


class TestSpecCorpus:
    """The analogue of running the spec suite before/after instrumentation."""

    @pytest.mark.parametrize("program", corpus(), ids=lambda p: p.name)
    def test_program(self, program):
        machine = Machine()
        original = machine.instantiate(program.module)
        result = instrument_module(program.module)
        validate_module(result.module)

        from repro.core.runtime import WasabiRuntime
        from repro.core.hooks import HOOK_MODULE
        from repro.interp import Linker

        runtime = WasabiRuntime(result, Analysis())
        linker = Linker()
        for name, hf in runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, hf)
        instrumented = machine.instantiate(result.module, linker)
        runtime.bind(instrumented)

        if program.expect_trap:
            with pytest.raises(Trap) as original_trap:
                original.invoke(program.entry, program.args)
            with pytest.raises(Trap) as instrumented_trap:
                instrumented.invoke(program.entry, program.args)
            assert type(original_trap.value) is type(instrumented_trap.value)
        else:
            expected = original.invoke(program.entry, program.args)
            assert instrumented.invoke(program.entry, program.args) == expected


class TestMemoryBehaviorPreserved:
    """§1: the inserted code never touches the program's linear memory."""

    def test_final_memory_identical(self):
        from repro.minic import compile_source

        module = compile_source("""
            memory 1;
            export func f(n: i32) {
                var i: i32;
                for (i = 0; i < n; i = i + 1) {
                    mem_i32[i] = i * 17;
                    mem_u8[1000 + i] = i;
                }
            }
        """)
        machine = Machine()
        original = machine.instantiate(module)
        original.invoke("f", [50])

        session = AnalysisSession(module, _full())
        session.invoke("f", [50])
        assert session.instance.memory.data == original.memory.data

    def test_globals_identical(self):
        from repro.minic import compile_source

        module = compile_source("""
            global a: i64 = 1;
            global b: f64 = 0.5;
            export func f(n: i32) {
                var i: i32;
                for (i = 0; i < n; i = i + 1) {
                    a = a * 3L + 1L;
                    b = b + 0.25;
                }
            }
        """)
        machine = Machine()
        original = machine.instantiate(module)
        original.invoke("f", [20])

        session = AnalysisSession(module, _full())
        session.invoke("f", [20])
        assert [g.value for g in session.instance.globals] == \
            [g.value for g in original.globals]


def _full():
    from repro.eval import make_full_analysis
    return make_full_analysis()


@pytest.mark.parametrize("name", kernel_names())
def test_instrumented_kernels_validate(name):
    """The paper's wasm-validate check, over the whole suite."""
    from repro.workloads.polybench import compile_kernel

    result = instrument_module(compile_kernel(name))
    validate_module(result.module)
