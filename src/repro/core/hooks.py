"""Low-level hooks and on-demand monomorphization (paper §2.4.3).

WebAssembly functions must declare a fixed, monomorphic type, while many
instructions are polymorphic. Wasabi therefore generates a *monomorphic
low-level hook* per (instruction kind, concrete type) combination — but only
on demand, for combinations that actually occur in the instrumented binary.
The registry below is exactly the paper's "map of already generated
low-level hooks" (guarded by a lock in the parallel Rust implementation;
our instrumenter is sequential so a plain dict suffices).

Because i64 values cannot cross the host boundary (§2.4.6), every i64
parameter of a hook is *split* into two i32 parameters (low, high); the
runtime re-joins them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.predecode import HOOK_IMPORT_MODULE
from ..wasm.types import FuncType, I32, I64, ValType

#: Import namespace used for generated hooks in the instrumented module.
#: Aliased from the engine's constant: the pre-decoded interpreter
#: recognizes calls into this namespace and fuses them into pre-bound
#: ``OP_HOOK`` dispatchers, so the two names must agree.
HOOK_MODULE = HOOK_IMPORT_MODULE

#: Hook kinds as they appear in low-level hook keys/names.
HookKey = tuple


@dataclass(frozen=True)
class HookSpec:
    """One generated low-level hook.

    ``kind`` names the instruction class (``const``, ``drop``, ``call_pre``,
    ``begin`` …); ``payload`` the monomorphization key (value types,
    mnemonic, or block kind); ``wasm_params`` the *declared* WebAssembly
    parameter types after i64 splitting, including the two trailing i32
    location parameters; ``value_types`` the pre-split logical parameter
    types the runtime re-assembles.
    """

    index: int
    kind: str
    payload: tuple
    wasm_params: tuple[ValType, ...]
    value_types: tuple[ValType, ...]

    @property
    def name(self) -> str:
        """Stable import name, e.g. ``call_pre_i32_f64`` or ``unary_f32.abs``."""
        parts = [self.kind]
        for item in self.payload:
            if isinstance(item, ValType):
                parts.append(item.value)
            else:
                parts.append(str(item))
        return "_".join(parts).replace("/", "_").replace(".", "_") or self.kind

    @property
    def functype(self) -> FuncType:
        return FuncType(self.wasm_params, ())


def split_i64(types: tuple[ValType, ...]) -> tuple[ValType, ...]:
    """Replace every i64 by an (i32, i32) pair — the host-boundary split."""
    out: list[ValType] = []
    for valtype in types:
        if valtype is I64:
            out.extend((I32, I32))
        else:
            out.append(valtype)
    return tuple(out)


class HookRegistry:
    """On-demand monomorphization: hooks are created the first time the
    instrumenter needs them, and reused afterwards."""

    def __init__(self, with_locations: bool = True):
        self._by_key: dict[HookKey, HookSpec] = {}
        self._hooks: list[HookSpec] = []
        self.with_locations = with_locations

    def __len__(self) -> int:
        return len(self._hooks)

    @property
    def hooks(self) -> list[HookSpec]:
        return list(self._hooks)

    def get_or_create(self, kind: str, payload: tuple,
                      value_types: tuple[ValType, ...]) -> HookSpec:
        """Return the hook for ``(kind, payload)``, creating it if new.

        ``value_types`` are the logical (pre-split) hook arguments,
        excluding the two location parameters that every hook receives.
        """
        key = (kind, payload)
        spec = self._by_key.get(key)
        if spec is None:
            wasm_params = split_i64(value_types)
            if self.with_locations:
                wasm_params += (I32, I32)  # (func, instr) location
            spec = HookSpec(index=len(self._hooks), kind=kind, payload=payload,
                            wasm_params=wasm_params, value_types=value_types)
            self._by_key[key] = spec
            self._hooks.append(spec)
        return spec


def eager_hook_count(max_call_params: int) -> int:
    """How many call-related hooks *eager* monomorphization would need.

    The paper (§2.4.3, §4.5) observes that eagerly generating hooks for all
    calls with up to N parameters requires ``4**N`` variants per call hook
    kind — e.g. 4**10 ≈ 1M, and 4**22 ≈ 1.7e13 for the Unreal Engine's
    widest call. This helper reproduces that arithmetic for the ablation
    benchmark.
    """
    return sum(4 ** n for n in range(max_call_params + 1))
