"""Evaluation harness: workloads, per-hook sweeps, and report rendering.

The pytest benchmarks under ``benchmarks/`` are thin drivers around this
package; everything here is importable for ad-hoc experimentation too.
"""

from .faithfulness import (FaithfulnessResult, check_workload, run_instrumented,
                           run_original)
from .coverage import (DEFAULT_COVERAGE_MODULES, CoverageCollector,
                       CoverageMap, collect_edges)
from .faultinject import (CampaignResult, Classification, Failure, classify,
                          mutant_rng, mutate, regenerate_mutant,
                          replay_failure_bundle, run_campaign, run_pipeline,
                          save_failure_bundle, seed_corpus)
from .fuzz import (CORPUS_SCHEMA, MUTATOR_VERSION, CorpusState, FuzzConfig,
                   FuzzResult, bench_payload, fold_into_telemetry,
                   load_corpus_entries, run_fuzz_campaign,
                   save_signature_bundle, signature_key)
from .reduce import (Reduction, reduce_bundle, reduce_bytes, reduce_failure,
                     reduce_invocations)
from .hooks_matrix import (FIGURE_GROUPS, make_full_analysis,
                           make_group_analysis)
from .overhead import (OverheadReport, baseline_runtime,
                       hook_dispatch_payload, instrumented_runtime,
                       overhead_sweep)
from .report import render_fig8, render_fig9, render_table, render_table5
from .sizes import SizeReport, measure_size, size_sweep
from .timing import (InterpBenchReport, TimingReport, bench_interpreter,
                     geomean_speedup, instrument_binary, interp_bench_payload,
                     time_instrumentation, time_workload)
from .workloads import (POLYBENCH_FAST_SUBSET, Workload, default_workloads,
                        polybench_workloads, realworld_workloads)

__all__ = [
    "CORPUS_SCHEMA", "CampaignResult", "Classification",
    "CorpusState", "CoverageCollector", "CoverageMap",
    "DEFAULT_COVERAGE_MODULES", "FIGURE_GROUPS", "Failure",
    "FaithfulnessResult", "FuzzConfig", "FuzzResult", "InterpBenchReport",
    "MUTATOR_VERSION",
    "OverheadReport", "POLYBENCH_FAST_SUBSET", "Reduction", "SizeReport",
    "TimingReport",
    "Workload", "baseline_runtime", "bench_interpreter", "bench_payload",
    "check_workload",
    "classify", "collect_edges", "default_workloads", "fold_into_telemetry",
    "geomean_speedup",
    "hook_dispatch_payload", "instrument_binary",
    "instrumented_runtime", "interp_bench_payload", "load_corpus_entries",
    "make_full_analysis",
    "make_group_analysis", "measure_size", "mutant_rng", "mutate",
    "overhead_sweep",
    "polybench_workloads", "realworld_workloads", "reduce_bundle",
    "reduce_bytes", "reduce_failure", "reduce_invocations",
    "regenerate_mutant", "render_fig8",
    "render_fig9", "render_table", "render_table5", "replay_failure_bundle",
    "run_campaign", "run_fuzz_campaign", "run_instrumented",
    "run_original", "run_pipeline", "save_failure_bundle",
    "save_signature_bundle", "seed_corpus", "signature_key",
    "size_sweep", "time_instrumentation", "time_workload",
]
