"""Evaluation harness: workloads, per-hook sweeps, and report rendering.

The pytest benchmarks under ``benchmarks/`` are thin drivers around this
package; everything here is importable for ad-hoc experimentation too.
"""

from .faithfulness import (FaithfulnessResult, check_workload, run_instrumented,
                           run_original)
from .faultinject import (CampaignResult, Failure, mutate, regenerate_mutant,
                          run_campaign, run_pipeline, seed_corpus)
from .hooks_matrix import (FIGURE_GROUPS, make_full_analysis,
                           make_group_analysis)
from .overhead import (OverheadReport, baseline_runtime,
                       hook_dispatch_payload, instrumented_runtime,
                       overhead_sweep)
from .report import render_fig8, render_fig9, render_table, render_table5
from .sizes import SizeReport, measure_size, size_sweep
from .timing import (InterpBenchReport, TimingReport, bench_interpreter,
                     geomean_speedup, instrument_binary, interp_bench_payload,
                     time_instrumentation, time_workload)
from .workloads import (POLYBENCH_FAST_SUBSET, Workload, default_workloads,
                        polybench_workloads, realworld_workloads)

__all__ = [
    "CampaignResult", "FIGURE_GROUPS", "Failure", "FaithfulnessResult",
    "InterpBenchReport",
    "OverheadReport", "POLYBENCH_FAST_SUBSET", "SizeReport", "TimingReport",
    "Workload", "baseline_runtime", "bench_interpreter", "check_workload",
    "default_workloads", "geomean_speedup", "hook_dispatch_payload",
    "instrument_binary",
    "instrumented_runtime", "interp_bench_payload", "make_full_analysis",
    "make_group_analysis", "measure_size", "mutate", "overhead_sweep",
    "polybench_workloads", "realworld_workloads", "regenerate_mutant",
    "render_fig8",
    "render_fig9", "render_table", "render_table5", "run_campaign",
    "run_instrumented",
    "run_original", "run_pipeline", "seed_corpus", "size_sweep",
    "time_instrumentation", "time_workload",
]
