"""LEB128 variable-length integer encoding, as used throughout the Wasm binary format.

Both the canonical (minimal-length) encoding and decoding of redundant
(non-minimal, but in-range) encodings are supported, since the spec allows
redundant encodings up to the ceiling of bits/7 bytes. The paper notes
(§4.5, footnote 13) that Wasabi re-encodes indices compactly, occasionally
*shrinking* binaries; our encoder is canonical for the same reason.
"""

from __future__ import annotations

from .errors import DecodeError


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128 (canonical form)."""
    if value < 0:
        raise ValueError(f"cannot encode negative value {value} as unsigned LEB128")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_signed(value: int) -> bytes:
    """Encode a signed integer as signed LEB128 (canonical form)."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7  # arithmetic shift: Python ints keep the sign
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_unsigned(data: bytes | memoryview, pos: int, bits: int = 32) -> tuple[int, int]:
    """Decode an unsigned LEB128 integer of at most ``bits`` bits.

    Returns ``(value, new_pos)``. Raises :class:`DecodeError` on overlong
    encodings, out-of-range values, or truncated input.
    """
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos + i >= len(data):
            raise DecodeError("truncated LEB128 integer", offset=pos)
        byte = data[pos + i]
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if i == max_bytes - 1:
                # the final possible byte has 7*max_bytes - bits unusable
                # high bits; any of them set would overflow the type
                used = bits - 7 * i
                if byte & (0x7F >> used << used):
                    raise DecodeError(
                        f"non-canonical high bits in final byte of u{bits} "
                        f"LEB128 ({byte:#04x})", offset=pos + i)
            if result >= (1 << bits):
                raise DecodeError(f"LEB128 value {result} exceeds u{bits}", offset=pos)
            return result, pos + i + 1
    raise DecodeError(f"unsigned LEB128 longer than {max_bytes} bytes for u{bits}", offset=pos)


def decode_signed(data: bytes | memoryview, pos: int, bits: int = 32) -> tuple[int, int]:
    """Decode a signed LEB128 integer of at most ``bits`` bits.

    Returns ``(value, new_pos)`` with ``value`` in two's-complement range.
    """
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos + i >= len(data):
            raise DecodeError("truncated LEB128 integer", offset=pos)
        byte = data[pos + i]
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if i == max_bytes - 1:
                # the unusable high bits of the final byte must be a proper
                # sign extension of the topmost value bit
                used = bits - 7 * i
                unused_mask = 0x7F >> used << used
                required = unused_mask if byte & (1 << (used - 1)) else 0
                if byte & unused_mask != required:
                    raise DecodeError(
                        f"non-canonical sign bits in final byte of s{bits} "
                        f"LEB128 ({byte:#04x})", offset=pos + i)
            if byte & 0x40:
                result |= -1 << shift
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if not lo <= result <= hi:
                raise DecodeError(f"LEB128 value {result} exceeds s{bits}", offset=pos)
            return result, pos + i + 1
    raise DecodeError(f"signed LEB128 longer than {max_bytes} bytes for s{bits}", offset=pos)
