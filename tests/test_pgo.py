"""The profile→dispatch loop: PGO artifacts, quickening, compiled segments.

Differential coverage for the quickened engine (superinstruction segments,
pre-resolved memory-op slots, call_indirect inline caches) against the
unquickened predecoded engine and the legacy string-dispatch loop — the two
oracles every quickened stream must match bit-for-bit — plus unit coverage
for the ``repro.profile/1`` / ``repro.fusion/1`` artifacts and the CLI
verbs that close the loop.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import polybench_workloads
from repro.interp import Machine
from repro.interp.pgo import (FUSION_SCHEMA,
                              PROFILE_SCHEMA, fusion_table_payload,
                              load_profile, merge_profiles,
                              record_workload_profile, resolve_fusion_pairs,
                              select_pairs, write_profile)
from repro.interp.predecode import (DEFAULT_FUSION_PAIRS, OP_SEGMENT,
                                    _SEGMENT_MIN, _compile_segments,
                                    decode_function)
from repro.interp.snapshot import (Snapshot, diff_instance, restore_instance,
                                   snapshot_instance)
from repro.minic import compile_source
from repro.wasm import Trap, encode_module
from repro.wasm.builder import ModuleBuilder
from repro.wasm.types import FuncType, I32


ENGINES = [
    {"predecode": False},                       # legacy string dispatch
    {"predecode": True, "quicken": False},      # unquickened ablation
    {"predecode": True, "quicken": True},       # full quickened engine
]


def _all_engines(module, name, args, repeats=2, mutate=None):
    """Invoke ``name`` ``repeats`` times on every engine configuration.

    Two invocations per instance so quickened streams are exercised both
    before and after their first-execution slot rewrites. ``mutate`` (called
    with the instance between invocations) injects state changes like table
    mutation. Returns one list of results per engine.
    """
    out = []
    for kwargs in ENGINES:
        instance = Machine(**kwargs).instantiate(module)
        results = []
        for i in range(repeats):
            if mutate is not None and i:
                mutate(instance)
            results.append(instance.invoke(name, args))
        out.append(results)
    return out


def _bits_of(results):
    return [[struct.pack("<d", v) if isinstance(v, float)
             else (v % 2 ** 64).to_bytes(8, "little") for v in values]
            for values in results]


def _assert_identical(runs):
    baseline = _bits_of(runs[0])
    for other in runs[1:]:
        assert _bits_of(other) == baseline


def _trap_on(module, name, args, **kwargs):
    instance = Machine(**kwargs).instantiate(module)
    with pytest.raises(Trap) as exc:
        instance.invoke(name, args)
    return str(exc.value)


# -- hypothesis differential corpus --------------------------------------------


class TestQuickenedBitIdentical:
    """Legacy, unquickened-predecoded, and quickened engines must agree
    bit-for-bit on a hypothesis corpus mixing the quickened surfaces:
    straight-line arithmetic runs (compiled segments), f64/i32 loads and
    stores (quickened memory slots), and integer wraparound."""

    MIXED = """
        memory 1;
        export func crunch(a: i32, b: i32, x: f64) -> f64 {
            var i: i32;
            var acc: f64 = 0.0;
            mem_f64[0] = x;
            for (i = 0; i < 24; i = i + 1) {
                mem_i32[64 + i] = a * i + b;
                mem_f64[1 + i] = acc + mem_f64[0] * f64(i);
                acc = acc + mem_f64[1 + i] - f64(mem_i32[64 + i]);
            }
            return acc + f64(f32(x));
        }
        export func bits(a: i32, b: i32) -> i64 {
            var wide: i64 = i64(a) * i64(b);
            mem_i64[0] = (wide << 7) ^ (wide >> 3);
            return mem_i64[0] ^ i64(a % (b | 1));
        }
    """

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.floats(allow_nan=False, width=64))
    def test_mixed_program(self, a, b, x):
        module = compile_source(self.MIXED)
        _assert_identical(_all_engines(module, "crunch", [a, b, x]))

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
           st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_integer_wraparound(self, a, b):
        module = compile_source(self.MIXED)
        _assert_identical(_all_engines(module, "bits", [a, b]))


# -- compiled segments ----------------------------------------------------------


class TestCompiledSegments:
    SRC = """
        memory 1;
        export func kernel(i: i32, x: f64) -> f64 {
            mem_f64[i] = x * 2.0 + 1.0;
            return mem_f64[i] * mem_f64[i] - x;
        }
    """

    def _decoded(self, quicken):
        module = compile_source(self.SRC)
        func = next(f for f in module.functions if f.body is not None)
        return decode_function(func, module, quicken=quicken)

    def test_quickened_stream_contains_segments(self):
        code = self._decoded(quicken=True).code
        segments = [ins for ins in code if ins[0] == OP_SEGMENT]
        assert segments, "straight-line kernel produced no compiled segment"
        for _, fn, span in segments:
            assert callable(fn)
            assert span >= _SEGMENT_MIN

    def test_unquickened_stream_has_no_segments(self):
        code = self._decoded(quicken=False).code
        assert not any(ins[0] == OP_SEGMENT for ins in code)

    def test_covered_slots_keep_fallback_decoding(self):
        # branch targets inside a segment must still find executable slots
        plain = self._decoded(quicken=False).code
        quick = self._decoded(quicken=True).code
        for pc, ins in enumerate(quick):
            if ins[0] == OP_SEGMENT:
                for covered in range(pc + 1, pc + ins[2]):
                    assert quick[covered][0] != OP_SEGMENT
                    assert quick[covered][0] == plain[covered][0] or \
                        quick[covered][0] >= 35  # fused/quickened fallback

    def test_short_runs_stay_uncompiled(self):
        module = compile_source("""
            export func tiny(a: i32) -> i32 { return a + 1; }
        """)
        func = next(f for f in module.functions if f.body is not None)
        code = decode_function(func, module, quicken=True).code
        assert not any(ins[0] == OP_SEGMENT for ins in code)

    def test_blocked_pcs_never_join_segments(self):
        module = compile_source(self.SRC)
        func = next(f for f in module.functions if f.body is not None)
        decoded = decode_function(func, module, quicken=False)
        code = list(decoded.code)
        # block a pc in the middle of what would otherwise be a run
        starts = [pc for pc, ins in enumerate(code)]
        target = starts[4]
        _compile_segments(code, blocked={target})
        for pc, ins in enumerate(code):
            if ins[0] == OP_SEGMENT:
                assert not (pc <= target < pc + ins[2])

    def test_segment_results_match_legacy(self):
        module = compile_source(self.SRC)
        _assert_identical(_all_engines(module, "kernel", [7, 2.5]))


# -- call_indirect inline caches ------------------------------------------------


def _dispatch_module():
    """A table with two i32→i32 functions and an exported dispatcher."""
    builder = ModuleBuilder()
    sig = FuncType((I32,), (I32,))

    fb = builder.function((I32,), (I32,), name="inc")
    fb.get_local(0).i32_const(1).emit("i32.add")
    fb.finish()
    inc = fb.func_idx

    fb = builder.function((I32,), (I32,), name="dbl")
    fb.get_local(0).i32_const(2).emit("i32.mul")
    fb.finish()
    dbl = fb.func_idx

    builder.add_table(4, 4)
    builder.add_element(0, [inc, dbl])

    fb = builder.function((I32, I32), (I32,), export="dispatch")
    fb.get_local(1)          # argument
    fb.get_local(0)          # table index
    fb.call_indirect(builder.module.add_type(sig))
    fb.finish()
    return builder.build(), inc, dbl


class TestCallIndirectIC:
    def test_monomorphic_and_megamorphic_paths(self):
        module, _, _ = _dispatch_module()
        for kwargs in ENGINES:
            instance = Machine(**kwargs).instantiate(module)
            # repeated same-target calls (IC hit path after the first)
            assert [instance.invoke("dispatch", [0, 10]) for _ in range(3)] \
                == [[11]] * 3
            # switch targets (IC miss → rebind), then back
            assert instance.invoke("dispatch", [1, 10]) == [20]
            assert instance.invoke("dispatch", [0, 10]) == [11]

    def test_table_mutation_invalidates_cache(self):
        module, inc, dbl = _dispatch_module()
        results = []
        for kwargs in ENGINES:
            instance = Machine(**kwargs).instantiate(module)
            out = [instance.invoke("dispatch", [0, 10])]   # cache 'inc'
            instance.table.set(0, dbl)                     # mutate under the IC
            out.append(instance.invoke("dispatch", [0, 10]))
            instance.table.set(0, None)                    # uninitialize
            try:
                instance.invoke("dispatch", [0, 10])
                out.append("no trap")
            except Trap as exc:
                out.append(str(exc))
            results.append(out)
        assert results[0] == results[1] == results[2]
        assert results[0][:2] == [[11], [20]]
        assert "uninitialized" in results[0][2]

    def test_trap_messages_match_legacy(self):
        module, _, _ = _dispatch_module()
        for index in (2, 99):  # uninitialized entry / out of bounds
            messages = {_trap_on(module, "dispatch", [index, 1], **kwargs)
                        for kwargs in ENGINES}
            assert len(messages) == 1, messages


# -- memory quickening at the page boundary ------------------------------------


class TestMemoryBoundary:
    SRC = """
        memory 1;
        export func load_f64(i: i32) -> f64 { return mem_f64[i]; }
        export func store_f64(i: i32, x: f64) -> f64 {
            mem_f64[i] = x;
            return mem_f64[i] + 1.0;
        }
        export func grow_then_store(i: i32, x: f64) -> f64 {
            var prev: i32 = memory_grow(1);
            mem_f64[i] = x * f64(prev);
            return mem_f64[i];
        }
    """

    def test_last_valid_slot_agrees(self):
        # f64 index 8191 covers bytes 65528..65535, the last in-bounds access
        module = compile_source(self.SRC)
        _assert_identical(_all_engines(module, "store_f64", [8191, 3.25]))

    @pytest.mark.parametrize("index", [8192, 2 ** 28])
    def test_oob_trap_messages_match(self, index):
        module = compile_source(self.SRC)
        for entry in ("load_f64", "store_f64"):
            args = [index] if entry == "load_f64" else [index, 1.0]
            messages = {_trap_on(module, entry, args, **kwargs)
                        for kwargs in ENGINES}
            assert len(messages) == 1, messages
            assert "out of bounds memory access" in next(iter(messages))

    def test_access_valid_only_after_grow(self):
        # index 8192 is the first slot of page 2: traps at 1 page, succeeds
        # after memory.grow — quickened slots must see the grown memory
        module = compile_source(self.SRC)
        runs = []
        for kwargs in ENGINES:
            instance = Machine(**kwargs).instantiate(module)
            with pytest.raises(Trap):
                instance.invoke("store_f64", [8192, 2.0])
            runs.append([instance.invoke("grow_then_store", [8192, 2.0]),
                         instance.invoke("store_f64", [8192, 2.0])])
        _assert_identical(runs)


# -- snapshot/restore on the quickened engine ----------------------------------


class TestSnapshotQuickened:
    def test_quickened_state_rebuilt_on_restore(self):
        """Snapshot mid-run on the quickened engine, restore into a fresh
        quickened instance: diff is empty, and the resumed run is
        bit-identical — quickened slots and IC cells are rebuilt, never
        serialized."""
        workload = polybench_workloads(["trisolv"], n=12)[0]
        module = workload.module()

        printed_a: list = []
        inst_a = Machine(predecode=True, quicken=True).instantiate(
            module, workload.linker(printed_a))
        inst_a.invoke("main", [])  # quickens slots, then snapshot mid-state
        snap = Snapshot.from_json(snapshot_instance(inst_a).to_json())

        printed_b: list = []
        inst_b = Machine(predecode=True, quicken=True).instantiate(
            module, workload.linker(printed_b))
        restore_instance(inst_b, snap)
        assert diff_instance(inst_b, snap) == []

        printed_a.clear()
        inst_a.invoke("main", [])
        inst_b.invoke("main", [])
        assert printed_a == printed_b

    def test_ic_cells_reset_not_stale_after_restore(self):
        module, inc, dbl = _dispatch_module()
        machine = Machine(predecode=True, quicken=True)
        instance = machine.instantiate(module)
        assert instance.invoke("dispatch", [0, 10]) == [11]  # IC caches 'inc'

        snap = snapshot_instance(instance)
        fresh = Machine(predecode=True, quicken=True).instantiate(module)
        restore_instance(fresh, snap)
        # mutate the restored table: a stale (serialized) cache would still
        # dispatch to 'inc'
        fresh.table.set(0, dbl)
        assert fresh.invoke("dispatch", [0, 10]) == [20]


# -- artifacts and pair selection ----------------------------------------------


@pytest.fixture(scope="module")
def tiny_profile():
    return record_workload_profile(polybench_workloads(["trisolv"], n=8)[0])


class TestArtifacts:
    def test_profile_round_trip(self, tiny_profile, tmp_path):
        path = write_profile(tiny_profile, tmp_path / "p.json")
        loaded = load_profile(path)
        assert loaded == tiny_profile
        assert loaded["schema"] == PROFILE_SCHEMA
        assert loaded["total_instructions"] > 0

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "repro.metrics/1"}))
        from repro.wasm import WasmError
        with pytest.raises(WasmError, match="schema"):
            load_profile(path)

    def test_merge_sums_counts(self, tiny_profile):
        merged = merge_profiles([tiny_profile, tiny_profile])
        assert merged["total_instructions"] == \
            2 * tiny_profile["total_instructions"]
        assert len(merged["corpus"]) == 2

    def test_select_pairs_min_share_and_cap(self, tiny_profile):
        everything = select_pairs(tiny_profile, min_share=0.0)
        assert select_pairs(tiny_profile, min_share=2.0) == []
        capped = select_pairs(tiny_profile, min_share=0.0, max_pairs=3)
        assert capped == everything[:3]

    def test_fusion_table_resolves_to_rule_backed_ids(self, tiny_profile):
        table = fusion_table_payload(tiny_profile)
        assert table["schema"] == FUSION_SCHEMA
        resolved = resolve_fusion_pairs(table)
        assert resolved  # a PolyBench kernel always has fusable hot pairs
        # a profile resolves the same way as the table derived from it
        assert resolve_fusion_pairs(tiny_profile) == resolved

    def test_unknown_pair_names_ignored(self):
        table = {"schema": FUSION_SCHEMA,
                 "pairs": [["warp.fold", "warp.unfold", 0.5]]}
        assert resolve_fusion_pairs(table) == frozenset()

    def test_default_pairs_used_without_profile(self):
        machine = Machine(predecode=True, quicken=True)
        assert machine.fusion_pairs is None  # decode falls back to the
        # classic built-in set
        assert DEFAULT_FUSION_PAIRS


# -- CLI: the closed loop -------------------------------------------------------


class TestCLI:
    def test_pgo_verb_writes_both_artifacts(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "profile.json"
        fusion = tmp_path / "fusion.json"
        assert main(["pgo", "-o", str(out), "--fusion-out", str(fusion),
                     "--workloads", "trisolv", "--n", "8",
                     "--no-realworld"]) == 0
        profile = load_profile(out)
        table = load_profile(fusion)
        assert profile["schema"] == PROFILE_SCHEMA
        assert table["schema"] == FUSION_SCHEMA
        captured = capsys.readouterr().out
        assert "derived fusion table" in captured

    def test_run_with_pgo_profile(self, tmp_path, capsys):
        from repro.cli import main
        module = compile_source("""
            export func main(n: i32) -> f64 {
                var s: f64 = 0.0;
                var i: i32;
                for (i = 0; i < n; i = i + 1) { s = s + f64(i) * 0.5; }
                return s;
            }
        """)
        wasm = tmp_path / "prog.wasm"
        wasm.write_bytes(encode_module(module))
        fusion = tmp_path / "fusion.json"
        assert main(["pgo", "-o", str(tmp_path / "p.json"),
                     "--fusion-out", str(fusion), "--workloads", "trisolv",
                     "--n", "8", "--no-realworld"]) == 0
        capsys.readouterr()
        assert main(["run", str(wasm), "main", "8",
                     "--pgo-profile", str(fusion)]) == 0
        assert "14" in capsys.readouterr().out

    def test_run_with_bad_profile_path_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        module = compile_source("export func main() -> i32 { return 1; }")
        wasm = tmp_path / "prog.wasm"
        wasm.write_bytes(encode_module(module))
        assert main(["run", str(wasm), "main",
                     "--pgo-profile", str(tmp_path / "missing.json")]) != 0
        assert "cannot load PGO profile" in capsys.readouterr().err
