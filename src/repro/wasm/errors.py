"""Error hierarchy for the WebAssembly toolkit.

Mirrors the error classes a conforming implementation distinguishes:
malformed binaries (decode errors), invalid modules (validation errors),
and runtime traps (raised by the interpreter in :mod:`repro.interp`).
"""

from __future__ import annotations


class WasmError(Exception):
    """Base class for all errors raised by the WebAssembly toolkit."""


class DecodeError(WasmError):
    """The binary is malformed and cannot be decoded."""

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte offset {offset:#x})"
        super().__init__(message)


class EncodeError(WasmError):
    """The module cannot be represented in the binary format."""


class ValidationError(WasmError):
    """The module is well-formed but does not type check."""

    def __init__(self, message: str, func_idx: int | None = None, instr_idx: int | None = None):
        self.func_idx = func_idx
        self.instr_idx = instr_idx
        where = ""
        if func_idx is not None:
            where = f" (in function {func_idx}"
            where += f", instruction {instr_idx})" if instr_idx is not None else ")"
        super().__init__(message + where)


class Trap(WasmError):
    """A WebAssembly trap: execution aborted with a runtime error."""


class ExhaustionError(Trap):
    """Call stack exhaustion (the spec treats this as a trap-like abort)."""


class ResourceExhausted(Trap):
    """A configured :class:`repro.interp.limits.ResourceLimits` bound was hit.

    Raised as a trap so resource exhaustion aborts the current invocation
    exactly like any other trap: the machine unwinds cleanly and a fresh
    ``invoke`` on the same machine/session works afterwards.
    """


class FuelExhausted(ResourceExhausted):
    """The fuel budget (metered back-edges and calls) ran out."""


class WasiExhausted(ResourceExhausted):
    """A WASI resource bound hit its *hard* escalation tier.

    Graceful degradation surfaces governance limits to the guest as WASI
    errnos (``ENOSPC``/``EMFILE``); this class is the escalation tier —
    the syscall-count budget ran out, or an injected fault was configured
    with ``escalate=True``. Raised as a trap (via
    :class:`ResourceExhausted`) so the invocation aborts cleanly and a
    crash bundle can capture it.
    """


class ProcExit(Trap):
    """The guest called WASI ``proc_exit``.

    Carries the exit ``code``; a zero code is a *successful* termination
    that the CLI normalizes to a clean exit rather than a trap. The
    constructor accepts either the integer code or a previously formatted
    message (``"proc_exit(N)"``) so replay's error decoding — which passes
    the recorded message string — round-trips the code.
    """

    def __init__(self, code: "int | str" = 0):
        if isinstance(code, str):
            message = code
            digits = code[code.find("(") + 1:code.rfind(")")]
            try:
                self.code = int(digits)
            except ValueError:
                self.code = 1
        else:
            self.code = int(code)
            message = f"proc_exit({self.code})"
        super().__init__(message)


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline for one top-level invocation passed."""


class SnapshotError(WasmError):
    """A state snapshot cannot be restored into (or verified against) an
    instance — schema mismatch, shape mismatch (globals/table/memory not
    matching the module), or a content-digest failure after restore."""


class ReplayDivergence(WasmError):
    """Replayed execution diverged from the recorded log.

    Raised by the replay layer when the live run requests a host-boundary
    event that does not match the next recorded entry (different host
    function, different arguments, a hook fault that was not recorded, …)
    or when recorded entries are left unconsumed at verification time.
    ``index`` is the position in the recorded log (per entry kind) and
    ``location`` carries the guest :class:`~repro.core.analysis.Location`
    when the diverging event has one (hook faults).
    """

    def __init__(self, message: str, index: int | None = None,
                 location=None):
        self.index = index
        self.location = location
        if index is not None:
            message = f"{message} (log entry #{index})"
        if location is not None:
            message = f"{message} at {location}"
        super().__init__(message)


class ServiceError(WasmError):
    """Errors raised by the supervised execution service (:mod:`repro.serve`)."""


class WorkerKilled(ServiceError):
    """The supervisor hard-killed the worker running a request.

    ``kill_class`` is the supervision taxonomy: ``"timeout"`` (the request
    exceeded its hard wall-clock deadline), ``"oom"`` (the worker's RSS
    crossed the configured ceiling), or ``"crash"`` (the worker process
    died unexpectedly mid-request). A clean guest trap is *not* a kill —
    it comes back as an ordinary error response.
    """

    def __init__(self, message: str, kill_class: str = "crash"):
        self.kill_class = kill_class
        super().__init__(message)


class BreakerOpen(ServiceError):
    """The circuit breaker quarantined this input.

    An input whose requests killed a worker twice is refused fail-fast:
    no worker is risked on it again for the pool's lifetime.
    """


class ServiceUnavailable(ServiceError):
    """The service daemon cannot be reached (after bounded client retries)."""


class AnalysisError(WasmError):
    """An analysis hook raised during dispatch.

    Wraps the original exception (available as ``__cause__``) together with
    the hook name and the :class:`~repro.core.analysis.Location` of the
    instruction whose event was being dispatched, so a misbehaving analysis
    is reported against guest code rather than as a bare Python traceback
    from deep inside the engine.
    """

    def __init__(self, message: str, hook_name: str | None = None,
                 location=None):
        self.hook_name = hook_name
        self.location = location
        super().__init__(message)


class AnalysisAbort(AnalysisError, Trap):
    """A hook fault under the ``abort`` policy: the guest aborts as a trap.

    Subclasses both :class:`AnalysisError` (it carries the faulting hook and
    location) and :class:`Trap` (the guest sees clean trap semantics, so
    machine state stays consistent and further invokes work).
    """
