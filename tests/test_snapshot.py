"""State snapshots: exact value codec, round-trip, and restore semantics.

The two load-bearing guarantees:

* serialization is *exact* — NaN payloads, signed zeros, grown memory,
  and sparse non-zero pages survive ``to_json``/``from_json`` bit-for-bit
  (checked with a hypothesis property);
* ``restore(snapshot(m))`` resumes execution bit-identically on *either*
  engine (checked differentially on the PolyBench fast subset).
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import POLYBENCH_FAST_SUBSET, polybench_workloads
from repro.interp import (Machine, ResourceLimits, Snapshot, diff_instance,
                          restore_instance, snapshot_instance)
from repro.interp.snapshot import (SNAPSHOT_SCHEMA, decode_value,
                                   decode_values, encode_value, encode_values)
from repro.wasm import PAGE_SIZE, SnapshotError

# -- exact value codec ----------------------------------------------------------


class TestValueCodec:
    def test_integers_pass_through(self):
        assert encode_value(0) == 0
        assert encode_value(2**64 - 1) == 2**64 - 1
        assert decode_value(encode_value(2**63)) == 2**63

    def test_negative_zero_survives(self):
        out = decode_value(encode_value(-0.0))
        assert out == 0.0 and math.copysign(1.0, out) == -1.0

    def test_nan_payload_survives(self):
        # a NaN with a non-canonical payload: repr()-based JSON would lose it
        pattern = struct.pack("<Q", 0x7FF800000000BEEF)
        nan = struct.unpack("<d", pattern)[0]
        out = decode_value(encode_value(nan))
        assert struct.pack("<d", out) == struct.pack("<d", nan)

    def test_infinities(self):
        assert decode_value(encode_value(math.inf)) == math.inf
        assert decode_value(encode_value(-math.inf)) == -math.inf

    @given(st.floats(allow_nan=True, allow_infinity=True, width=64))
    @settings(max_examples=200, deadline=None)
    def test_any_float_bit_exact(self, value):
        out = decode_value(encode_value(value))
        assert struct.pack("<d", out) == struct.pack("<d", value)


# -- snapshot round-trip property ------------------------------------------------


def _values():
    """Canonical runtime values: unsigned wasm ints or binary64 floats."""
    return st.one_of(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.floats(allow_nan=True, allow_infinity=True, width=64),
    )


def _pages():
    """A sparse non-zero page map for a memory of up to 5 pages."""
    return st.dictionaries(
        st.integers(min_value=0, max_value=4),
        st.binary(min_size=1, max_size=64).filter(lambda b: any(b)),
        max_size=3,
    )


@st.composite
def snapshots(draw):
    memory = None
    if draw(st.booleans()):
        pages = draw(_pages())
        memory = {"size_pages": 5, "pages": pages, "digest": _digest(pages, 5)}
    table = draw(st.none() | st.lists(
        st.none() | st.integers(min_value=0, max_value=9), max_size=6))
    usage = draw(st.dictionaries(
        st.sampled_from(["fuel_spent", "peak_depth", "tick"]),
        st.integers(min_value=0, max_value=10**9), max_size=3))
    return Snapshot(memory=memory, globals_=draw(st.lists(_values(), max_size=8)),
                    table=table, usage=usage)


def _digest(pages, size_pages):
    import hashlib
    data = bytearray(size_pages * PAGE_SIZE)
    for idx, chunk in pages.items():
        data[idx * PAGE_SIZE:idx * PAGE_SIZE + len(chunk)] = chunk
    return hashlib.sha256(bytes(data)).hexdigest()


class TestRoundTrip:
    @given(snapshots())
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_exact(self, snap):
        back = Snapshot.from_json(snap.to_json())
        assert back.memory == snap.memory
        # compare globals through the codec: NaN != NaN under ==
        assert encode_values(back.globals_) == encode_values(snap.globals_)
        assert back.table == snap.table
        assert back.usage == snap.usage
        # a second trip is byte-stable
        assert back.to_json() == snap.to_json()

    def test_schema_tag_checked(self):
        with pytest.raises(SnapshotError, match="schema"):
            Snapshot.from_dict({"schema": "bogus/9"})
        assert SNAPSHOT_SCHEMA in Snapshot().to_json()

    def test_decode_values_inverse(self):
        values = [0, 1, 2**64 - 1, -0.0, 1.5]
        assert decode_values(encode_values(values)) == values


# -- live instance capture/restore ----------------------------------------------


class TestInstanceSnapshot:
    def test_restore_reverts_mutations(self, machine, memory_module,
                                       print_linker):
        inst = machine.instantiate(memory_module, print_linker)
        inst.invoke("roundtrip", [1.25])
        snap = snapshot_instance(inst)
        inst.invoke("roundtrip", [9.75])  # mutate memory again
        assert diff_instance(inst, snap)  # states differ now
        restore_instance(inst, snap)
        assert diff_instance(inst, snap) == []

    def test_grown_memory_round_trips(self, machine, memory_module,
                                      print_linker):
        inst = machine.instantiate(memory_module, print_linker)
        inst.invoke("grow", [])
        snap = snapshot_instance(inst)
        assert snap.memory["size_pages"] == 3
        fresh = Machine().instantiate(memory_module, print_linker)
        assert fresh.memory.size_pages == 1
        restore_instance(fresh, snap)
        assert fresh.memory.size_pages == 3
        assert diff_instance(fresh, snap) == []

    def test_snapshot_is_json_serializable(self, machine, memory_module,
                                           print_linker):
        inst = machine.instantiate(memory_module, print_linker)
        inst.invoke("roundtrip", [3.5])
        snap = snapshot_instance(inst)
        back = Snapshot.from_json(snap.to_json())
        assert diff_instance(inst, back) == []

    def test_shape_mismatch_rejected(self, machine, memory_module, add_module,
                                     print_linker):
        inst = machine.instantiate(memory_module, print_linker)
        snap = snapshot_instance(inst)
        other = Machine().instantiate(add_module, print_linker)
        with pytest.raises(SnapshotError):
            restore_instance(other, snap)

    def test_corrupt_digest_rejected(self, machine, memory_module,
                                     print_linker):
        inst = machine.instantiate(memory_module, print_linker)
        inst.invoke("roundtrip", [2.0])
        snap = snapshot_instance(inst)
        snap.memory["digest"] = "0" * 64
        with pytest.raises(SnapshotError, match="digest"):
            restore_instance(inst, snap)

    def test_meter_residue_round_trips(self, memory_module, print_linker):
        limits = ResourceLimits(fuel=10**9)
        machine = Machine(limits=limits)
        inst = machine.instantiate(memory_module, print_linker)
        inst.invoke("roundtrip", [1.0])
        snap = snapshot_instance(inst)
        assert snap.usage["fuel_spent"] > 0
        fresh = Machine(limits=ResourceLimits(fuel=10**9))
        inst2 = fresh.instantiate(memory_module, print_linker)
        restore_instance(inst2, snap)
        assert fresh._meter.residue() == snap.usage


# -- both-engines differential on PolyBench --------------------------------------


@pytest.mark.parametrize("name", POLYBENCH_FAST_SUBSET)
@pytest.mark.parametrize("record_predecode", [True, False])
def test_polybench_restore_resumes_bit_identically(name, record_predecode):
    """Snapshot on one engine, restore on the other, resume: bit-identical.

    Runs ``main`` once, snapshots, then compares a second invocation
    resumed from the snapshot on the *opposite* engine against resuming
    in place: printed output and final state digests must agree exactly.
    """
    workload = polybench_workloads([name])[0]
    module = workload.module()

    printed_a: list = []
    inst_a = Machine(predecode=record_predecode).instantiate(
        module, workload.linker(printed_a))
    inst_a.invoke("main", [])
    snap = Snapshot.from_json(snapshot_instance(inst_a).to_json())

    printed_b: list = []
    inst_b = Machine(predecode=not record_predecode).instantiate(
        module, workload.linker(printed_b))
    restore_instance(inst_b, snap)
    assert diff_instance(inst_b, snap) == []

    printed_a.clear()
    inst_a.invoke("main", [])
    inst_b.invoke("main", [])
    assert encode_values(printed_b) == encode_values(printed_a)

    final_a = snapshot_instance(inst_a)
    final_b = snapshot_instance(inst_b)
    assert final_a.memory == final_b.memory
    assert encode_values(final_a.globals_) == encode_values(final_b.globals_)
    assert final_a.table == final_b.table
