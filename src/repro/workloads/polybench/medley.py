"""PolyBench medley kernels: deriche, floyd-warshall, nussinov."""

from __future__ import annotations

from .common import register


@register("deriche", "medley", 10)
def deriche(n: int) -> str:
    # w == h == n for the scaled-down version
    img_in, img_out, y1, y2 = 0, n * n, 2 * n * n, 3 * n * n
    return f"""
memory 8;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var alpha: f64 = 0.25;
    var k: f64 = (1.0 - exp_approx(0.0 - alpha)) * (1.0 - exp_approx(0.0 - alpha))
        / (1.0 + 2.0 * alpha * exp_approx(0.0 - alpha) - exp_approx(0.0 - 2.0 * alpha));
    var a1: f64 = k;
    var a5: f64 = k;
    var a2: f64 = k * exp_approx(0.0 - alpha) * (alpha - 1.0);
    var a6: f64 = a2;
    var a3: f64 = k * exp_approx(0.0 - alpha) * (alpha + 1.0);
    var a7: f64 = a3;
    var a4: f64 = 0.0 - k * exp_approx(0.0 - 2.0 * alpha);
    var a8: f64 = a4;
    var b1: f64 = 2.0 * exp_approx(0.0 - alpha);
    var b2: f64 = 0.0 - exp_approx(0.0 - 2.0 * alpha);
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{img_in} + i*{n} + j] = f64((313*i + 991*j) % 65536) / 65535.0;
        }}
    }}
    // horizontal forward pass
    for (i = 0; i < {n}; i = i + 1) {{
        var ym1: f64 = 0.0;
        var ym2: f64 = 0.0;
        var xm1: f64 = 0.0;
        for (j = 0; j < {n}; j = j + 1) {{
            var v: f64 = a1 * mem_f64[{img_in} + i*{n} + j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
            mem_f64[{y1} + i*{n} + j] = v;
            xm1 = mem_f64[{img_in} + i*{n} + j];
            ym2 = ym1;
            ym1 = v;
        }}
    }}
    // horizontal backward pass
    for (i = 0; i < {n}; i = i + 1) {{
        var yp1: f64 = 0.0;
        var yp2: f64 = 0.0;
        var xp1: f64 = 0.0;
        var xp2: f64 = 0.0;
        for (j = {n} - 1; j >= 0; j = j - 1) {{
            var v: f64 = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
            mem_f64[{y2} + i*{n} + j] = v;
            xp2 = xp1;
            xp1 = mem_f64[{img_in} + i*{n} + j];
            yp2 = yp1;
            yp1 = v;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{img_out} + i*{n} + j] = mem_f64[{y1} + i*{n} + j] + mem_f64[{y2} + i*{n} + j];
        }}
    }}
    print_f64(checksum_f64({img_out}, {n * n}));
    // vertical forward pass
    for (j = 0; j < {n}; j = j + 1) {{
        var tm1: f64 = 0.0;
        var ym1: f64 = 0.0;
        var ym2: f64 = 0.0;
        for (i = 0; i < {n}; i = i + 1) {{
            var v: f64 = a5 * mem_f64[{img_out} + i*{n} + j] + a6 * tm1 + b1 * ym1 + b2 * ym2;
            mem_f64[{y1} + i*{n} + j] = v;
            tm1 = mem_f64[{img_out} + i*{n} + j];
            ym2 = ym1;
            ym1 = v;
        }}
    }}
    // vertical backward pass
    for (j = 0; j < {n}; j = j + 1) {{
        var tp1: f64 = 0.0;
        var tp2: f64 = 0.0;
        var yp1: f64 = 0.0;
        var yp2: f64 = 0.0;
        for (i = {n} - 1; i >= 0; i = i - 1) {{
            var v: f64 = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;
            mem_f64[{y2} + i*{n} + j] = v;
            tp2 = tp1;
            tp1 = mem_f64[{img_out} + i*{n} + j];
            yp2 = yp1;
            yp1 = v;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{img_out} + i*{n} + j] = mem_f64[{y1} + i*{n} + j] + mem_f64[{y2} + i*{n} + j];
        }}
    }}
    var result: f64 = checksum_f64({img_out}, {n * n});
    print_f64(result);
    return result;
}}

// truncated Taylor expansion of e^x (good enough for the filter constants,
// keeps the kernel self-contained and deterministic)
func exp_approx(x: f64) -> f64 {{
    var term: f64 = 1.0;
    var acc: f64 = 1.0;
    var i: i32;
    for (i = 1; i < 12; i = i + 1) {{
        term = term * x / f64(i);
        acc = acc + term;
    }}
    return acc;
}}
"""


@register("floyd-warshall", "medley", 12)
def floyd_warshall(n: int) -> str:
    path = 0
    return f"""
memory 2;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var v: i32 = i * j % 7 + 1;
            if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) {{
                v = 999;
            }}
            mem_i32[{path} + i*{n} + j] = v;
        }}
    }}
    for (k = 0; k < {n}; k = k + 1) {{
        for (i = 0; i < {n}; i = i + 1) {{
            for (j = 0; j < {n}; j = j + 1) {{
                var through: i32 = mem_i32[{path} + i*{n} + k] + mem_i32[{path} + k*{n} + j];
                var direct: i32 = mem_i32[{path} + i*{n} + j];
                mem_i32[{path} + i*{n} + j] = select(direct < through, direct, through);
            }}
        }}
        if (k % 4 == 0) {{
            print_f64(checksum_i32({path} + k*{n}, {n}));
        }}
    }}
    var result: f64 = checksum_i32({path}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("nussinov", "medley", 12)
def nussinov(n: int) -> str:
    seq, table = 0, n  # seq: i32[n], table: i32[n*n]
    return f"""
memory 2;

func match(b1: i32, b2: i32) -> i32 {{
    if (b1 + b2 == 3) {{ return 1; }}
    return 0;
}}

func max_score(a: i32, b: i32) -> i32 {{
    return select(a >= b, a, b);
}}

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    for (i = 0; i < {n}; i = i + 1) {{
        mem_i32[{seq} + i] = (i + 1) % 4;
        for (j = 0; j < {n}; j = j + 1) {{
            mem_i32[{table} + i*{n} + j] = 0;
        }}
    }}
    for (i = {n} - 1; i >= 0; i = i - 1) {{
        for (j = i + 1; j < {n}; j = j + 1) {{
            if (j - 1 >= 0) {{
                mem_i32[{table} + i*{n} + j] = max_score(
                    mem_i32[{table} + i*{n} + j], mem_i32[{table} + i*{n} + j - 1]);
            }}
            if (i + 1 < {n}) {{
                mem_i32[{table} + i*{n} + j] = max_score(
                    mem_i32[{table} + i*{n} + j], mem_i32[{table} + (i+1)*{n} + j]);
            }}
            if (j - 1 >= 0 && i + 1 < {n}) {{
                if (i < j - 1) {{
                    mem_i32[{table} + i*{n} + j] = max_score(
                        mem_i32[{table} + i*{n} + j],
                        mem_i32[{table} + (i+1)*{n} + j - 1]
                            + match(mem_i32[{seq} + i], mem_i32[{seq} + j]));
                }} else {{
                    mem_i32[{table} + i*{n} + j] = max_score(
                        mem_i32[{table} + i*{n} + j], mem_i32[{table} + (i+1)*{n} + j - 1]);
                }}
            }}
            for (k = i + 1; k < j; k = k + 1) {{
                mem_i32[{table} + i*{n} + j] = max_score(
                    mem_i32[{table} + i*{n} + j],
                    mem_i32[{table} + i*{n} + k] + mem_i32[{table} + (k+1)*{n} + j]);
            }}
        }}
    }}
    var result: f64 = checksum_i32({table}, {n * n});
    print_f64(result);
    return result;
}}
"""
