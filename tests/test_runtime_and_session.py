"""The Wasabi runtime (low-level → high-level dispatch) and session glue."""

import pytest

from repro.core import (Analysis, AnalysisSession, analyze, instrument_module)
from repro.core.hooks import HOOK_MODULE
from repro.core.instrument import InstrumentationConfig
from repro.core.runtime import WasabiRuntime, _present
from repro.interp import Linker, Machine
from repro.minic import compile_source
from repro.wasm import encode_module, validate_module
from repro.wasm.types import F32, F64, I32, I64


class TestValuePresentation:
    def test_i32_signed(self):
        assert _present(I32, 0xFFFFFFFF) == -1
        assert _present(I32, 5) == 5

    def test_i64_signed(self):
        assert _present(I64, (1 << 64) - 1) == -1
        assert _present(I64, 1 << 62) == 1 << 62

    def test_floats_untouched(self):
        assert _present(F32, 1.5) == 1.5
        assert _present(F64, -0.0) == 0.0


class TestHookImports:
    def test_hook_import_module_name(self, fib_module):
        result = instrument_module(fib_module)
        hook_imports = [imp for imp in result.module.imports
                        if imp.module == HOOK_MODULE]
        assert len(hook_imports) == result.hook_count

    def test_hook_functypes_match_specs(self, fib_module):
        result = instrument_module(fib_module)
        runtime = WasabiRuntime(result, Analysis())
        host = runtime.host_functions()
        assert set(host) == {spec.name for spec in result.info.hooks}
        for spec in result.info.hooks:
            assert host[spec.name].functype == spec.functype

    def test_existing_imports_keep_indices(self, print_linker):
        module = compile_source("""
            import func print_i32(x: i32);
            export func f() { print_i32(9); }
        """)
        result = instrument_module(module)
        # the env import is still function 0
        assert result.module.imports[0].module == "env"
        first_import = result.module.imported_functions()[0]
        assert first_import.name == "print_i32"

    def test_call_indices_remapped(self, fib_module):
        result = instrument_module(fib_module)
        instrumented_fib = result.module.functions[0]
        hook_count = result.hook_count
        # recursive call now targets original idx 0 shifted by hook count
        recursive_calls = [i for i in instrumented_fib.body
                           if i.op == "call" and i.idx == hook_count]
        assert recursive_calls, "recursive call should be remapped"

    def test_exports_and_names_survive(self, fib_module):
        result = instrument_module(fib_module)
        export = result.module.export_of("func", "fib")
        assert result.module.func_name(export.idx) == "fib"


class TestSession:
    def test_invoke_unknown_export(self, fib_module):
        session = AnalysisSession(fib_module, Analysis())
        from repro.wasm import WasmError
        with pytest.raises(WasmError):
            session.invoke("nope")

    def test_multiple_invocations_accumulate(self, fib_module):
        class CountCalls(Analysis):
            def __init__(self):
                self.calls = 0

            def call_pre(self, loc, func, args, tbl):
                self.calls += 1

        analysis = CountCalls()
        session = AnalysisSession(fib_module, analysis)
        session.invoke("fib", [5])
        first = analysis.calls
        session.invoke("fib", [5])
        assert analysis.calls == 2 * first

    def test_two_sessions_are_independent(self, fib_module):
        class CountCalls(Analysis):
            def __init__(self):
                self.calls = 0

            def call_pre(self, loc, func, args, tbl):
                self.calls += 1

        a, b = CountCalls(), CountCalls()
        session_a = AnalysisSession(fib_module, a)
        session_b = AnalysisSession(fib_module, b)
        session_a.invoke("fib", [6])
        assert a.calls > 0 and b.calls == 0
        session_b.invoke("fib", [3])
        assert b.calls > 0

    def test_explicit_groups_override_detection(self, fib_module):
        class Everything(Analysis):
            def __init__(self):
                self.events = 0

            def binary(self, *args):
                self.events += 1

            def call_pre(self, *args):
                self.events += 1

        analysis = Everything()
        session = AnalysisSession(fib_module, analysis,
                                  groups=frozenset({"binary"}))
        session.invoke("fib", [5])
        # only binary hooks were instrumented
        assert all(spec.kind == "binary" for spec in session.result.info.hooks)

    def test_analyze_with_entry(self, fib_module):
        class R(Analysis):
            def __init__(self):
                self.returned = None

            def return_(self, loc, results):
                self.returned = list(results)

        analysis = R()
        analyze(fib_module, analysis, entry="fib", args=(7,))
        assert analysis.returned == [13]


class TestParallelInstrumentation:
    def test_parallel_equivalent_to_sequential(self):
        from repro.workloads import pdf_toolkit
        module = pdf_toolkit()
        sequential = instrument_module(module)
        parallel = instrument_module(
            module, config=InstrumentationConfig(parallel_workers=4))
        validate_module(parallel.module)
        assert {s.name for s in sequential.info.hooks} == \
            {s.name for s in parallel.info.hooks}
        # bodies are identical modulo hook index assignment order (hook
        # creation order may differ across threads, shifting LEB sizes by
        # a few bytes), so compare structure rather than exact bytes
        assert parallel.module.instruction_count() == \
            sequential.module.instruction_count()
        assert abs(len(encode_module(sequential.module))
                   - len(encode_module(parallel.module))) < 200

    def test_parallel_runs_faithfully(self):
        from repro.workloads import pdf_toolkit
        from repro.eval import make_full_analysis

        module = pdf_toolkit()
        expected = Machine().instantiate(module).invoke("main", [2])
        result = instrument_module(
            module, config=InstrumentationConfig(parallel_workers=4))
        runtime = WasabiRuntime(result, make_full_analysis())
        linker = Linker()
        for name, hf in runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, hf)
        instance = Machine().instantiate(result.module, linker)
        runtime.bind(instance)
        assert instance.invoke("main", [2]) == expected


class TestAnalysisExceptionPropagation:
    def test_analysis_errors_surface(self, fib_module):
        from repro.wasm import AnalysisError

        class Broken(Analysis):
            def binary(self, loc, op, a, b, r):
                raise RuntimeError("analysis bug")

        session = AnalysisSession(fib_module, Broken())
        with pytest.raises(AnalysisError, match="analysis bug") as excinfo:
            session.invoke("fib", [3])
        # the original exception is preserved as the cause, and the fault
        # is attributed to the hook and guest location
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert excinfo.value.hook_name is not None
        assert excinfo.value.location is not None
        assert excinfo.value.location.func >= 0
