"""MiniC compiler errors."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for MiniC compilation errors."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


class LexError(MiniCError):
    pass


class ParseError(MiniCError):
    pass


class TypeError_(MiniCError):
    """Type checking failed (named to avoid shadowing the builtin)."""
