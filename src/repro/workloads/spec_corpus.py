"""A spec-test-style corpus for the faithfulness experiment (paper §4.3).

The paper validates Wasabi on the 63 programs of the official WebAssembly
specification test suite. This module generates an equivalent corpus: one
self-checking program per numeric instruction (driving it over an operand
matrix including edge cases and folding all results into an integer
checksum), plus hand-built control-flow, memory, and call programs.

Every program exports ``test() -> i64`` (the checksum) and is fully
deterministic, so faithfulness is simply "same checksum before and after
instrumentation" — and, for trapping programs, "same trap".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..wasm import opcodes
from ..wasm.builder import FunctionBuilder, ModuleBuilder
from ..wasm.module import Module
from ..wasm.types import F32, F64, I32, I64, FuncType, ValType

#: Operand matrices per type. Chosen to hit sign boundaries, wrap-around,
#: and special float values while keeping all included operations trap-free.
_INT32_OPERANDS = [0, 1, -1, 2, 42, 0x7FFFFFFF, -0x80000000 + 1, 0x55555555,
                   -1234567]
_INT64_OPERANDS = [0, 1, -1, 2, 1 << 40, 0x7FFFFFFFFFFFFFFF,
                   -(1 << 62), 0x5555555555555555]
_FLOAT_OPERANDS = [0.0, -0.0, 1.0, -1.5, 3.75, -2.25, 0.1, 100.5]
#: restricted operands for float→int truncations (must stay in i32 range)
_TRUNC_SAFE_OPERANDS = [0.0, -0.0, 1.0, -1.5, 3.75, -2.25, 0.1, 100.5,
                        -1000.25]

_OPERANDS: dict[ValType, list] = {
    I32: _INT32_OPERANDS, I64: _INT64_OPERANDS,
    F32: _FLOAT_OPERANDS, F64: _FLOAT_OPERANDS,
}

#: division/remainder need nonzero divisors, and (MIN, -1) must be avoided
_DIVISORS = {I32: [1, -1 + 0, 2, 7, -3, 0x7FFFFFFF],
             I64: [1, 2, 7, -3, 0x7FFFFFFFFFFFFFFF]}


@dataclass(frozen=True)
class CorpusProgram:
    name: str
    module: Module
    entry: str = "test"
    args: tuple = ()
    expect_trap: bool = False


def _fold_result(fb: FunctionBuilder, result_type: ValType, acc: int) -> None:
    """Fold the value on the stack into the i64 accumulator local ``acc``.

    The value is reinterpreted to its bit pattern (no float arithmetic, so
    the checksum is exact), then mixed with rotate-xor.
    """
    if result_type is I32:
        fb.emit("i64.extend_u/i32")
    elif result_type is F32:
        fb.emit("i32.reinterpret/f32")
        fb.emit("i64.extend_u/i32")
    elif result_type is F64:
        fb.emit("i64.reinterpret/f64")
    fb.get_local(acc)
    fb.i64_const(7)
    fb.emit("i64.rotl")
    fb.emit("i64.xor")
    fb.set_local(acc)


def _const(fb: FunctionBuilder, valtype: ValType, value) -> None:
    fb.emit(f"{valtype.value}.const", value=value)


def _numeric_program(mnemonic: str) -> Module:
    """A program exhaustively driving one numeric instruction."""
    info = opcodes.BY_NAME[mnemonic]
    params, results = info.signature
    builder = ModuleBuilder(f"op_{mnemonic}")
    fb = builder.function((), (I64,), name="test", export="test")
    acc = fb.add_local(I64)

    if len(params) == 1:
        operands = _OPERANDS[params[0]]
        if "trunc" in mnemonic and params[0].is_float:
            operands = _TRUNC_SAFE_OPERANDS
            if "_u" in mnemonic.split("/")[0]:
                operands = [x for x in operands if x >= 0 or x > -1.0]
        for value in operands:
            _const(fb, params[0], value)
            fb.emit(mnemonic)
            _fold_result(fb, results[0], acc)
    else:
        lefts = _OPERANDS[params[0]]
        if mnemonic.split(".")[1] in ("div_s", "div_u", "rem_s", "rem_u"):
            rights = _DIVISORS[params[0]]
            lefts = [x for x in lefts
                     if x != -(1 << (params[0].bit_width - 1))]
        else:
            rights = lefts
        for left in lefts:
            for right in rights:
                _const(fb, params[0], left)
                _const(fb, params[1], right)
                fb.emit(mnemonic)
                _fold_result(fb, results[0], acc)
    fb.get_local(acc)
    fb.finish()
    return builder.build()


def _control_flow_programs() -> list[CorpusProgram]:
    programs: list[CorpusProgram] = []

    # nested blocks and branches out of several levels
    builder = ModuleBuilder("ctrl_nested")
    fb = builder.function((I32,), (I64,), name="test", export="test")
    acc = fb.add_local(I64)
    fb.block()
    fb.block()
    fb.block()
    fb.get_local(0)
    fb.i32_const(1)
    fb.emit("i32.and")
    fb.br_if(1)
    fb.i64_const(100)
    fb.set_local(acc)
    fb.br(2)
    fb.end()
    fb.i64_const(200)
    fb.set_local(acc)
    fb.br(1)
    fb.end()
    fb.get_local(acc)
    fb.i64_const(7)
    fb.emit("i64.add")
    fb.set_local(acc)
    fb.end()
    fb.get_local(acc)
    fb.finish()
    module = builder.build()
    programs.append(CorpusProgram("ctrl_nested_even", module, args=(2,)))
    programs.append(CorpusProgram("ctrl_nested_odd", module, args=(3,)))

    # br_table over every case including default
    builder = ModuleBuilder("ctrl_br_table")
    fb = builder.function((), (I64,), name="test", export="test")
    acc = fb.add_local(I64)
    loop_i = fb.add_local(I32)
    fb.block()
    fb.loop()
    fb.get_local(loop_i)
    fb.i32_const(6)
    fb.emit("i32.ge_u")
    fb.br_if(1)
    # switch(loop_i % 4)
    fb.block()
    fb.block()
    fb.block()
    fb.block()
    fb.get_local(loop_i)
    fb.br_table([0, 1, 2], 3)
    fb.end()
    fb.get_local(acc)
    fb.i64_const(11)
    fb.emit("i64.add")
    fb.set_local(acc)
    fb.br(2)
    fb.end()
    fb.get_local(acc)
    fb.i64_const(13)
    fb.emit("i64.mul")
    fb.set_local(acc)
    fb.br(1)
    fb.end()
    fb.get_local(acc)
    fb.i64_const(17)
    fb.emit("i64.xor")
    fb.set_local(acc)
    fb.br(0)
    fb.end()
    fb.get_local(acc)
    fb.i64_const(1)
    fb.emit("i64.or")
    fb.set_local(acc)
    # loop increment
    fb.get_local(loop_i)
    fb.i32_const(1)
    fb.emit("i32.add")
    fb.set_local(loop_i)
    fb.br(0)
    fb.end()
    fb.end()
    fb.get_local(acc)
    fb.finish()
    programs.append(CorpusProgram("ctrl_br_table", builder.build()))

    # if/else with results, select, drop
    builder = ModuleBuilder("ctrl_if_select")
    fb = builder.function((I32,), (I64,), name="test", export="test")
    fb.get_local(0)
    fb.if_(I64)
    fb.i64_const(111)
    fb.else_()
    fb.i64_const(222)
    fb.end()
    fb.i64_const(5)
    fb.i64_const(9)
    fb.get_local(0)
    fb.emit("select")
    fb.emit("i64.add")
    fb.f64_const(2.5)
    fb.emit("drop")
    fb.finish()
    module = builder.build()
    programs.append(CorpusProgram("ctrl_if_select_t", module, args=(1,)))
    programs.append(CorpusProgram("ctrl_if_select_f", module, args=(0,)))

    # direct + indirect calls, locals of every type, i64 args and results
    builder = ModuleBuilder("calls")
    helper_type = FuncType((I64, I64), (I64,))
    fb = builder.function((I64, I64), (I64,), name="mix")
    fb.get_local(0)
    fb.get_local(1)
    fb.emit("i64.xor")
    fb.get_local(0)
    fb.i64_const(13)
    fb.emit("i64.rotl")
    fb.emit("i64.add")
    fb.finish()
    mix_idx = fb.func_idx
    fb = builder.function((I64, I64), (I64,), name="mix2")
    fb.get_local(0)
    fb.get_local(1)
    fb.emit("i64.sub")
    fb.finish()
    mix2_idx = fb.func_idx
    builder.add_table(2, 2)
    builder.add_element(0, [mix_idx, mix2_idx])
    fb = builder.function((I32,), (I64,), name="test", export="test")
    fb.i64_const(0x123456789ABCDEF)
    fb.i64_const(-42)
    fb.call(mix_idx)
    fb.i64_const(999)
    fb.get_local(0)
    fb.i32_const(2)
    fb.emit("i32.rem_u")
    fb.call_indirect(builder.module.add_type(helper_type))
    fb.finish()
    module = builder.build()
    programs.append(CorpusProgram("calls_0", module, args=(0,)))
    programs.append(CorpusProgram("calls_1", module, args=(1,)))

    # memory: all load/store widths, grow, size; globals
    builder = ModuleBuilder("memory_globals")
    builder.add_memory(1, 4)
    glob = builder.add_global(I64, mutable=True, init=5)
    fb = builder.function((), (I64,), name="test", export="test")
    acc = fb.add_local(I64)
    store_ops = [("i32.store", I32, 0x11223344), ("i32.store8", I32, 0x7F),
                 ("i32.store16", I32, 0xBEEF), ("i64.store", I64, 1 << 50),
                 ("i64.store8", I64, 0x44), ("i64.store16", I64, 0x5566),
                 ("i64.store32", I64, 0x778899AA),
                 ("f32.store", F32, 1.5), ("f64.store", F64, -2.25)]
    addr = 64
    for op, valtype, value in store_ops:
        fb.i32_const(addr)
        _const(fb, valtype, value)
        fb.store(op)
        addr += 16
    load_ops = ["i32.load", "i32.load8_s", "i32.load8_u", "i32.load16_s",
                "i32.load16_u", "i64.load", "i64.load8_s", "i64.load8_u",
                "i64.load16_s", "i64.load16_u", "i64.load32_s",
                "i64.load32_u", "f32.load", "f64.load"]
    for i, op in enumerate(load_ops):
        fb.i32_const(64 + (i % 9) * 16)
        fb.load(op)
        result_type = opcodes.BY_NAME[op].signature[1][0]
        _fold_result(fb, result_type, acc)
    fb.emit("memory.size")
    _fold_result(fb, I32, acc)
    fb.i32_const(1)
    fb.emit("memory.grow")
    _fold_result(fb, I32, acc)
    fb.emit("memory.size")
    _fold_result(fb, I32, acc)
    fb.get_global(glob)
    fb.get_local(acc)
    fb.emit("i64.add")
    fb.set_global(glob)
    fb.get_global(glob)
    fb.finish()
    programs.append(CorpusProgram("memory_globals", builder.build()))

    # a trapping program: unreachable after some work
    builder = ModuleBuilder("trap_unreachable")
    fb = builder.function((), (I64,), name="test", export="test")
    fb.i64_const(1)
    fb.emit("drop")
    fb.emit("unreachable")
    fb.finish()
    programs.append(CorpusProgram("trap_unreachable", builder.build(),
                                  expect_trap=True))

    # a trapping program: out-of-bounds load
    builder = ModuleBuilder("trap_oob")
    builder.add_memory(1, 1)
    fb = builder.function((), (I64,), name="test", export="test")
    fb.i32_const(65536)
    fb.load("i64.load")
    fb.finish()
    programs.append(CorpusProgram("trap_oob", builder.build(),
                                  expect_trap=True))

    # a trapping program: division by zero
    builder = ModuleBuilder("trap_div0")
    fb = builder.function((I32,), (I64,), name="test", export="test")
    fb.i64_const(10)
    fb.get_local(0)
    fb.emit("i64.extend_u/i32")
    fb.emit("i64.div_u")
    fb.finish()
    programs.append(CorpusProgram("trap_div0", builder.build(), args=(0,),
                                  expect_trap=True))
    return programs


@lru_cache(maxsize=1)
def corpus() -> list[CorpusProgram]:
    """The full corpus: one program per numeric instruction + control flow."""
    programs = [
        CorpusProgram(f"op_{op.mnemonic}", _numeric_program(op.mnemonic))
        for op in opcodes.NUMERIC_OPS
        if op.group in (opcodes.HookGroup.UNARY, opcodes.HookGroup.BINARY)
    ]
    programs.extend(_control_flow_programs())
    return programs


def corpus_names() -> list[str]:
    return [p.name for p in corpus()]
