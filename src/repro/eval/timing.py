"""RQ3: time to instrument (paper Table 5) and raw interpreter timing.

Measures the full binary→binary pipeline: decode the ``.wasm`` bytes,
instrument for all hooks, re-encode — the same work Wasabi's CLI does.
Reports mean ± stddev over repetitions, and throughput in MB/s.

Also times the two interpreter engines against each other (the legacy
string-dispatch loop vs. the pre-decoded threaded loop), which backs the
``BENCH_interp.json`` artifact the CI perf floor is anchored to.

All timing funnels through :func:`repro.obs.spans.measure`, so every
measured repeat is a span over one injected clock: pass ``clock=`` for
deterministic tests, or ``tracer=`` to keep the raw spans alongside the
aggregated report (the exporters then render them like any pipeline trace).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable

from ..core.instrument import InstrumentationConfig, instrument_module
from ..interp.machine import Machine
from ..obs.spans import Tracer, measure
from ..wasm.decoder import decode_module
from ..wasm.encoder import encode_module
from ..wasm.module import Module
from .workloads import Workload


@dataclass
class TimingReport:
    name: str
    binary_bytes: int
    mean_seconds: float
    stdev_seconds: float
    repeats: int

    @property
    def throughput_mb_per_s(self) -> float:
        return (self.binary_bytes / 1e6) / self.mean_seconds


def instrument_binary(raw: bytes,
                      config: InstrumentationConfig | None = None) -> bytes:
    """The binary→binary pipeline being timed."""
    module = decode_module(raw)
    result = instrument_module(module, config=config)
    return encode_module(result.module)


def time_instrumentation(name: str, module: Module, repeats: int = 5,
                         config: InstrumentationConfig | None = None,
                         clock: Callable[[], float] | None = None,
                         tracer: Tracer | None = None) -> TimingReport:
    raw = encode_module(module)
    samples = measure(lambda: instrument_binary(raw, config), repeats,
                      name="instrument_binary", tracer=tracer, clock=clock,
                      attrs={"workload": name})
    return TimingReport(
        name=name, binary_bytes=len(raw),
        mean_seconds=statistics.mean(samples),
        stdev_seconds=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        repeats=repeats)


# -- interpreter engine timing (predecoded vs. legacy dispatch) ---------------


@dataclass
class InterpBenchReport:
    """One workload timed on both interpreter engines."""

    name: str
    legacy_seconds: float
    predecoded_seconds: float
    repeats: int

    @property
    def speedup(self) -> float:
        if self.predecoded_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.predecoded_seconds


def time_workload(workload: Workload, repeats: int = 3,
                  predecode: bool | None = None,
                  clock: Callable[[], float] | None = None,
                  tracer: Tracer | None = None) -> float:
    """Best-of-``repeats`` uninstrumented runtime on the chosen engine.

    Instantiates fresh per repeat (memory/globals reset) but times only the
    invoke, so decode cost is excluded — matching how the overhead sweep
    times its baseline. Each repeat is one ``workload_invoke`` span.
    """
    if tracer is None:
        tracer = Tracer(clock=clock) if clock is not None else Tracer()
    module = workload.module()
    best = float("inf")
    engine = "predecode" if predecode in (None, True) else "legacy"
    for _ in range(repeats):
        machine = Machine(predecode=predecode)
        instance = machine.instantiate(module, workload.linker())
        elapsed, = measure(
            lambda: instance.invoke(workload.entry, workload.args), 1,
            name="workload_invoke", tracer=tracer,
            attrs={"workload": workload.name, "engine": engine})
        best = min(best, elapsed)
    return best


def bench_interpreter(workloads: list[Workload], repeats: int = 3,
                      clock: Callable[[], float] | None = None,
                      tracer: Tracer | None = None) -> list[InterpBenchReport]:
    """Time every workload on the legacy and predecoded engines."""
    reports = []
    for workload in workloads:
        legacy = time_workload(workload, repeats, predecode=False,
                               clock=clock, tracer=tracer)
        predecoded = time_workload(workload, repeats, predecode=True,
                                   clock=clock, tracer=tracer)
        reports.append(InterpBenchReport(workload.name, legacy, predecoded,
                                         repeats))
    return reports


def geomean_speedup(reports: list[InterpBenchReport]) -> float:
    if not reports:
        return 1.0
    return math.exp(sum(math.log(r.speedup) for r in reports) / len(reports))


def interp_bench_payload(reports: list[InterpBenchReport]) -> dict:
    """The JSON payload recorded as ``BENCH_interp.json``."""
    return {
        "workloads": [
            {
                "name": r.name,
                "legacy_seconds": r.legacy_seconds,
                "predecoded_seconds": r.predecoded_seconds,
                "speedup": r.speedup,
                "repeats": r.repeats,
            }
            for r in reports
        ],
        "geomean_speedup": geomean_speedup(reports),
    }
