"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.interp.host import Linker
from repro.interp.machine import Machine
from repro.minic import compile_source
from repro.wasm.builder import ModuleBuilder
from repro.wasm.types import F64, I32, FuncType


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def print_linker():
    """Linker providing env.print_f64 / env.print_i32, collecting output."""
    printed: list = []
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: printed.append(args[0]))
    linker.define_function("env", "print_i32", FuncType((I32,), ()),
                           lambda args: printed.append(args[0]))
    linker.printed = printed
    return linker


@pytest.fixture
def add_module():
    """A minimal module: export add(a, b) = a + b."""
    builder = ModuleBuilder("add")
    fb = builder.function((I32, I32), (I32,), name="add", export="add")
    fb.get_local(0).get_local(1).emit("i32.add")
    fb.finish()
    return builder.build()


@pytest.fixture
def fib_module():
    """Recursive fibonacci (direct calls, if/else)."""
    return compile_source("""
        export func fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    """, "fib")


@pytest.fixture
def memory_module():
    """Loads/stores of several widths plus memory.size/grow."""
    return compile_source("""
        memory 1;
        export func roundtrip(v: f64) -> f64 {
            mem_f64[3] = v;
            mem_u8[100] = 200;
            mem_i32[50] = 0 - 2;
            return mem_f64[3] + f64(mem_u8[100]) + f64(mem_i32[50]);
        }
        export func grow() -> i32 {
            var before: i32 = memory_size();
            var prev: i32 = memory_grow(2);
            return memory_size() * 1000 + prev * 10 + before;
        }
    """, "mem")
