"""Evaluation workloads: PolyBench kernels, synthetic binaries, spec corpus."""

from . import polybench
from .spec_corpus import CorpusProgram, corpus, corpus_names
from .synthetic import engine_demo, pdf_toolkit

__all__ = ["CorpusProgram", "corpus", "corpus_names", "engine_demo",
           "pdf_toolkit", "polybench"]
