"""PolyBench stencil kernels: adi, fdtd-2d, heat-3d, jacobi-1d/2d, seidel-2d."""

from __future__ import annotations

from .common import register


@register("adi", "stencils", 8)
def adi(n: int) -> str:
    u, v, p, q = 0, n * n, 2 * n * n, 3 * n * n
    tsteps = 2
    return f"""
memory 4;

export func main() -> f64 {{
    var t: i32; var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{u} + i*{n} + j] = (f64(i) + f64({n}) - f64(j)) / fn;
        }}
    }}
    var dx: f64 = 1.0 / fn;
    var dy: f64 = 1.0 / fn;
    var dt: f64 = 1.0 / f64({tsteps});
    var b1: f64 = 2.0;
    var b2: f64 = 1.0;
    var mul1: f64 = b1 * dt / (dx * dx);
    var mul2: f64 = b2 * dt / (dy * dy);
    var a: f64 = 0.0 - mul1 / 2.0;
    var b: f64 = 1.0 + mul1;
    var c: f64 = a;
    var d: f64 = 0.0 - mul2 / 2.0;
    var e: f64 = 1.0 + mul2;
    var f: f64 = d;
    for (t = 1; t <= {tsteps}; t = t + 1) {{
        // column sweep
        for (i = 1; i < {n} - 1; i = i + 1) {{
            mem_f64[{v} + 0*{n} + i] = 1.0;
            mem_f64[{p} + i*{n} + 0] = 0.0;
            mem_f64[{q} + i*{n} + 0] = mem_f64[{v} + 0*{n} + i];
            for (j = 1; j < {n} - 1; j = j + 1) {{
                mem_f64[{p} + i*{n} + j] = (0.0 - c) / (a * mem_f64[{p} + i*{n} + j - 1] + b);
                mem_f64[{q} + i*{n} + j] = ((0.0 - d) * mem_f64[{u} + j*{n} + i - 1]
                    + (1.0 + 2.0 * d) * mem_f64[{u} + j*{n} + i]
                    - f * mem_f64[{u} + j*{n} + i + 1]
                    - a * mem_f64[{q} + i*{n} + j - 1])
                    / (a * mem_f64[{p} + i*{n} + j - 1] + b);
            }}
            mem_f64[{v} + ({n}-1)*{n} + i] = 1.0;
            for (j = {n} - 2; j >= 1; j = j - 1) {{
                mem_f64[{v} + j*{n} + i] = mem_f64[{p} + i*{n} + j] * mem_f64[{v} + (j+1)*{n} + i]
                    + mem_f64[{q} + i*{n} + j];
            }}
        }}
        // row sweep
        for (i = 1; i < {n} - 1; i = i + 1) {{
            mem_f64[{u} + i*{n} + 0] = 1.0;
            mem_f64[{p} + i*{n} + 0] = 0.0;
            mem_f64[{q} + i*{n} + 0] = mem_f64[{u} + i*{n} + 0];
            for (j = 1; j < {n} - 1; j = j + 1) {{
                mem_f64[{p} + i*{n} + j] = (0.0 - f) / (d * mem_f64[{p} + i*{n} + j - 1] + e);
                mem_f64[{q} + i*{n} + j] = ((0.0 - a) * mem_f64[{v} + (i-1)*{n} + j]
                    + (1.0 + 2.0 * a) * mem_f64[{v} + i*{n} + j]
                    - c * mem_f64[{v} + (i+1)*{n} + j]
                    - d * mem_f64[{q} + i*{n} + j - 1])
                    / (d * mem_f64[{p} + i*{n} + j - 1] + e);
            }}
            mem_f64[{u} + i*{n} + {n} - 1] = 1.0;
            for (j = {n} - 2; j >= 1; j = j - 1) {{
                mem_f64[{u} + i*{n} + j] = mem_f64[{p} + i*{n} + j] * mem_f64[{u} + i*{n} + j + 1]
                    + mem_f64[{q} + i*{n} + j];
            }}
        }}
        print_f64(checksum_f64({u}, {n * n}));
    }}
    var result: f64 = checksum_f64({u}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("fdtd-2d", "stencils", 8)
def fdtd_2d(n: int) -> str:
    ex, ey, hz, fict = 0, n * n, 2 * n * n, 3 * n * n
    tsteps = 3
    return f"""
memory 4;

export func main() -> f64 {{
    var t: i32; var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (t = 0; t < {tsteps}; t = t + 1) {{
        mem_f64[{fict} + t] = f64(t);
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{ex} + i*{n} + j] = f64(i) * (f64(j) + 1.0) / fn;
            mem_f64[{ey} + i*{n} + j] = f64(i) * (f64(j) + 2.0) / fn;
            mem_f64[{hz} + i*{n} + j] = f64(i) * (f64(j) + 3.0) / fn;
        }}
    }}
    for (t = 0; t < {tsteps}; t = t + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{ey} + 0*{n} + j] = mem_f64[{fict} + t];
        }}
        for (i = 1; i < {n}; i = i + 1) {{
            for (j = 0; j < {n}; j = j + 1) {{
                mem_f64[{ey} + i*{n} + j] = mem_f64[{ey} + i*{n} + j]
                    - 0.5 * (mem_f64[{hz} + i*{n} + j] - mem_f64[{hz} + (i-1)*{n} + j]);
            }}
        }}
        for (i = 0; i < {n}; i = i + 1) {{
            for (j = 1; j < {n}; j = j + 1) {{
                mem_f64[{ex} + i*{n} + j] = mem_f64[{ex} + i*{n} + j]
                    - 0.5 * (mem_f64[{hz} + i*{n} + j] - mem_f64[{hz} + i*{n} + j - 1]);
            }}
        }}
        for (i = 0; i < {n} - 1; i = i + 1) {{
            for (j = 0; j < {n} - 1; j = j + 1) {{
                mem_f64[{hz} + i*{n} + j] = mem_f64[{hz} + i*{n} + j]
                    - 0.7 * (mem_f64[{ex} + i*{n} + j + 1] - mem_f64[{ex} + i*{n} + j]
                             + mem_f64[{ey} + (i+1)*{n} + j] - mem_f64[{ey} + i*{n} + j]);
            }}
        }}
        print_f64(checksum_f64({hz}, {n * n}));
    }}
    var result: f64 = checksum_f64({hz}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("heat-3d", "stencils", 6)
def heat_3d(n: int) -> str:
    a, b = 0, n * n * n
    tsteps = 2
    return f"""
memory 4;

export func main() -> f64 {{
    var t: i32; var i: i32; var j: i32; var k: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            for (k = 0; k < {n}; k = k + 1) {{
                var v: f64 = f64(i + j + ({n} - k)) * 10.0 / fn;
                mem_f64[{a} + (i*{n} + j)*{n} + k] = v;
                mem_f64[{b} + (i*{n} + j)*{n} + k] = v;
            }}
        }}
    }}
    for (t = 1; t <= {tsteps}; t = t + 1) {{
        for (i = 1; i < {n} - 1; i = i + 1) {{
            for (j = 1; j < {n} - 1; j = j + 1) {{
                for (k = 1; k < {n} - 1; k = k + 1) {{
                    mem_f64[{b} + (i*{n} + j)*{n} + k] =
                        0.125 * (mem_f64[{a} + ((i+1)*{n} + j)*{n} + k]
                                 - 2.0 * mem_f64[{a} + (i*{n} + j)*{n} + k]
                                 + mem_f64[{a} + ((i-1)*{n} + j)*{n} + k])
                        + 0.125 * (mem_f64[{a} + (i*{n} + j + 1)*{n} + k]
                                   - 2.0 * mem_f64[{a} + (i*{n} + j)*{n} + k]
                                   + mem_f64[{a} + (i*{n} + j - 1)*{n} + k])
                        + 0.125 * (mem_f64[{a} + (i*{n} + j)*{n} + k + 1]
                                   - 2.0 * mem_f64[{a} + (i*{n} + j)*{n} + k]
                                   + mem_f64[{a} + (i*{n} + j)*{n} + k - 1])
                        + mem_f64[{a} + (i*{n} + j)*{n} + k];
                }}
            }}
        }}
        for (i = 1; i < {n} - 1; i = i + 1) {{
            for (j = 1; j < {n} - 1; j = j + 1) {{
                for (k = 1; k < {n} - 1; k = k + 1) {{
                    mem_f64[{a} + (i*{n} + j)*{n} + k] =
                        0.125 * (mem_f64[{b} + ((i+1)*{n} + j)*{n} + k]
                                 - 2.0 * mem_f64[{b} + (i*{n} + j)*{n} + k]
                                 + mem_f64[{b} + ((i-1)*{n} + j)*{n} + k])
                        + 0.125 * (mem_f64[{b} + (i*{n} + j + 1)*{n} + k]
                                   - 2.0 * mem_f64[{b} + (i*{n} + j)*{n} + k]
                                   + mem_f64[{b} + (i*{n} + j - 1)*{n} + k])
                        + 0.125 * (mem_f64[{b} + (i*{n} + j)*{n} + k + 1]
                                   - 2.0 * mem_f64[{b} + (i*{n} + j)*{n} + k]
                                   + mem_f64[{b} + (i*{n} + j)*{n} + k - 1])
                        + mem_f64[{b} + (i*{n} + j)*{n} + k];
                }}
            }}
        }}
        print_f64(checksum_f64({a}, {n * n * n}));
    }}
    var result: f64 = checksum_f64({a}, {n * n * n});
    print_f64(result);
    return result;
}}
"""


@register("jacobi-1d", "stencils", 30)
def jacobi_1d(n: int) -> str:
    a, b = 0, n
    tsteps = 4
    return f"""
memory 2;

export func main() -> f64 {{
    var t: i32; var i: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{a} + i] = (f64(i) + 2.0) / fn;
        mem_f64[{b} + i] = (f64(i) + 3.0) / fn;
    }}
    for (t = 0; t < {tsteps}; t = t + 1) {{
        for (i = 1; i < {n} - 1; i = i + 1) {{
            mem_f64[{b} + i] = 0.33333 * (mem_f64[{a} + i - 1]
                + mem_f64[{a} + i] + mem_f64[{a} + i + 1]);
        }}
        for (i = 1; i < {n} - 1; i = i + 1) {{
            mem_f64[{a} + i] = 0.33333 * (mem_f64[{b} + i - 1]
                + mem_f64[{b} + i] + mem_f64[{b} + i + 1]);
        }}
        print_f64(checksum_f64({a}, {n}));
    }}
    var result: f64 = checksum_f64({a}, {n});
    print_f64(result);
    return result;
}}
"""


@register("jacobi-2d", "stencils", 10)
def jacobi_2d(n: int) -> str:
    a, b = 0, n * n
    tsteps = 3
    return f"""
memory 4;

export func main() -> f64 {{
    var t: i32; var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(i) * (f64(j) + 2.0) / fn;
            mem_f64[{b} + i*{n} + j] = f64(i) * (f64(j) + 3.0) / fn;
        }}
    }}
    for (t = 0; t < {tsteps}; t = t + 1) {{
        for (i = 1; i < {n} - 1; i = i + 1) {{
            for (j = 1; j < {n} - 1; j = j + 1) {{
                mem_f64[{b} + i*{n} + j] = 0.2 * (mem_f64[{a} + i*{n} + j]
                    + mem_f64[{a} + i*{n} + j - 1] + mem_f64[{a} + i*{n} + j + 1]
                    + mem_f64[{a} + (i+1)*{n} + j] + mem_f64[{a} + (i-1)*{n} + j]);
            }}
        }}
        for (i = 1; i < {n} - 1; i = i + 1) {{
            for (j = 1; j < {n} - 1; j = j + 1) {{
                mem_f64[{a} + i*{n} + j] = 0.2 * (mem_f64[{b} + i*{n} + j]
                    + mem_f64[{b} + i*{n} + j - 1] + mem_f64[{b} + i*{n} + j + 1]
                    + mem_f64[{b} + (i+1)*{n} + j] + mem_f64[{b} + (i-1)*{n} + j]);
            }}
        }}
        print_f64(checksum_f64({a}, {n * n}));
    }}
    var result: f64 = checksum_f64({a}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("seidel-2d", "stencils", 10)
def seidel_2d(n: int) -> str:
    a = 0
    tsteps = 3
    return f"""
memory 4;

export func main() -> f64 {{
    var t: i32; var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = (f64(i) * (f64(j) + 2.0) + 2.0) / fn;
        }}
    }}
    for (t = 0; t < {tsteps}; t = t + 1) {{
        for (i = 1; i < {n} - 1; i = i + 1) {{
            for (j = 1; j < {n} - 1; j = j + 1) {{
                mem_f64[{a} + i*{n} + j] =
                    (mem_f64[{a} + (i-1)*{n} + j - 1] + mem_f64[{a} + (i-1)*{n} + j]
                     + mem_f64[{a} + (i-1)*{n} + j + 1] + mem_f64[{a} + i*{n} + j - 1]
                     + mem_f64[{a} + i*{n} + j] + mem_f64[{a} + i*{n} + j + 1]
                     + mem_f64[{a} + (i+1)*{n} + j - 1] + mem_f64[{a} + (i+1)*{n} + j]
                     + mem_f64[{a} + (i+1)*{n} + j + 1]) / 9.0;
            }}
        }}
        print_f64(checksum_f64({a}, {n * n}));
    }}
    var result: f64 = checksum_f64({a}, {n * n});
    print_f64(result);
    return result;
}}
"""
