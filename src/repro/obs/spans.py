"""Span tracing for the instrumentation pipeline, with three exporters.

A *span* is one timed region — ``decode``, ``validate``, ``instrument``,
``encode``, ``instantiate``, ``invoke`` — recorded with its start time,
duration, nesting depth, and free-form attributes. The :class:`Tracer`
collects spans with a *single injected clock* (the same discipline as
:class:`repro.interp.limits.Meter`), so tests drive it with a fake clock
and every bench artifact derives from the identical time source.

Distributed tracing: a tracer can carry a *trace identity* — a 128-bit
trace id plus per-span ids with parent links. The identity is optional;
tracers without one (the default, and everything that existed before the
service layer) record id-less spans at zero extra cost. A
:class:`SpanContext` is the serializable form carried across the
``repro.serve/1`` wire, so the client, daemon, and worker processes each
continue one trace: the daemon parents its spans under the client's
request span, the worker under the daemon's, and the merged export shows
queue wait, supervision, and guest execution as one stitched tree.
Cross-process timestamps align because ``time.perf_counter`` reads
``CLOCK_MONOTONIC`` on Linux, which is shared by every process on the
machine.

Exporters:

* :func:`spans_to_jsonl` — one JSON object per line, trivially greppable
  and streamable (:func:`spans_from_jsonl` is its inverse);
* :func:`spans_to_chrome_trace` — the Chrome trace-event JSON format
  (complete ``"ph": "X"`` events, microsecond timestamps), loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev; spans tagged with a
  ``process`` render as separate process tracks on one shared timeline;
* the Prometheus path: the telemetry façade folds span durations into a
  ``repro_stage_seconds`` histogram per stage name (see
  :mod:`repro.obs.telemetry`).

:func:`measure` is the shared clock-and-report path of the evaluation
harness: ``eval/timing.py`` and ``eval/overhead.py`` time every repeat as a
span through it, so BENCH artifacts and telemetry cannot drift onto
different clocks.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Callable

#: Span fields that ride in Chrome trace-event ``args`` but are not
#: user attributes; the chrome-trace importer pops them back out.
_ID_ARG_KEYS = ("trace_id", "span_id", "parent_id")


def new_id(nbytes: int = 8) -> str:
    """A fresh random hex id; unique across processes (``os.urandom``)."""
    return os.urandom(nbytes).hex()


class SpanContext:
    """The serializable trace position carried across process boundaries.

    ``trace_id`` names the whole trace; ``span_id`` names the span that
    remote work should parent under. The dict form is what travels inside
    ``repro.serve/1`` messages.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str | None = None):
        self.trace_id = trace_id
        self.span_id = span_id

    def as_dict(self) -> dict:
        out = {"trace_id": self.trace_id}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanContext":
        return cls(str(payload["trace_id"]), payload.get("span_id"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.trace_id!r}, span={self.span_id!r})"


class Span:
    """One completed timed region."""

    __slots__ = ("name", "start", "duration", "depth", "attrs",
                 "trace_id", "span_id", "parent_id", "process")

    def __init__(self, name: str, start: float, duration: float,
                 depth: int = 0, attrs: dict | None = None, *,
                 trace_id: str | None = None, span_id: str | None = None,
                 parent_id: str | None = None, process: str | None = None):
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.attrs = attrs or {}
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process

    def as_dict(self) -> dict:
        out = {"name": self.name, "start": self.start,
               "duration": self.duration, "depth": self.depth,
               "attrs": self.attrs}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.process is not None:
            out["process"] = self.process
        return out

    @classmethod
    def from_dict(cls, entry: dict) -> "Span":
        return cls(entry["name"], entry["start"], entry["duration"],
                   entry.get("depth", 0), entry.get("attrs") or {},
                   trace_id=entry.get("trace_id"),
                   span_id=entry.get("span_id"),
                   parent_id=entry.get("parent_id"),
                   process=entry.get("process"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, depth={self.depth})"


class Tracer:
    """Collects spans; nesting is tracked by an explicit depth counter.

    The clock is injected (default :func:`time.perf_counter`); all span
    timestamps come from it and nothing else, so a deterministic fake clock
    yields deterministic spans.

    Trace identity is opt-in: pass ``context`` (a remote parent to continue
    under) or call :meth:`ensure_trace` to start a fresh trace. Without an
    identity the tracer behaves exactly as before — id-less spans, no id
    generation. ``id_source`` is injectable for deterministic tests;
    ``process`` tags every recorded span with a process-track name for the
    merged cross-process export.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter, *,
                 context: SpanContext | None = None,
                 process: str | None = None,
                 id_source: Callable[[], str] = new_id):
        self.clock = clock
        self.spans: list[Span] = []
        self.process = process
        self.trace_id = context.trace_id if context is not None else None
        self._root_parent = context.span_id if context is not None else None
        self._id_source = id_source
        self._depth = 0
        self._open: list[str] = []

    def ensure_trace(self) -> str:
        """Start a trace identity if there is none yet; returns the id."""
        if self.trace_id is None:
            self.trace_id = self._id_source()
        return self.trace_id

    def current_context(self) -> SpanContext | None:
        """The context remote work should continue under, or ``None``."""
        if self.trace_id is None:
            return None
        parent = self._open[-1] if self._open else self._root_parent
        return SpanContext(self.trace_id, parent)

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a region; the span is recorded when the region exits.

        Spans are appended in *completion* order (children before parents),
        with ``depth`` recording the nesting level at entry.
        """
        depth = self._depth
        self._depth += 1
        span_id = parent_id = None
        if self.trace_id is not None:
            span_id = self._id_source()
            parent_id = self._open[-1] if self._open else self._root_parent
            self._open.append(span_id)
        start = self.clock()
        try:
            yield
        finally:
            duration = self.clock() - start
            self._depth -= 1
            if span_id is not None:
                self._open.pop()
            self.spans.append(Span(name, start, duration, depth, attrs or None,
                                   trace_id=self.trace_id, span_id=span_id,
                                   parent_id=parent_id, process=self.process))

    def record(self, name: str, start: float, duration: float, **attrs) -> Span:
        """Record an already-timed region (hot paths avoid the context
        manager); ids and parenting follow the currently open span."""
        span_id = parent_id = None
        if self.trace_id is not None:
            span_id = self._id_source()
            parent_id = self._open[-1] if self._open else self._root_parent
        span = Span(name, start, duration, self._depth, attrs or None,
                    trace_id=self.trace_id, span_id=span_id,
                    parent_id=parent_id, process=self.process)
        self.spans.append(span)
        return span

    def adopt(self, entries: list[dict] | None,
              default_process: str | None = None) -> int:
        """Fold remote span dicts (e.g. from a ``repro.serve/1`` response)
        into this tracer; returns the number adopted."""
        if not entries:
            return 0
        for entry in entries:
            span = Span.from_dict(entry)
            if span.process is None:
                span.process = default_process
            self.spans.append(span)
        return len(entries)

    def durations(self, name: str) -> list[float]:
        """Durations of every completed span called ``name``, in order."""
        return [span.duration for span in self.spans if span.name == name]


# -- exporters ----------------------------------------------------------------


def spans_to_jsonl(spans: list[Span]) -> str:
    """One JSON object per line; inverse of :func:`spans_from_jsonl`."""
    return "\n".join(json.dumps(span.as_dict(), sort_keys=True)
                     for span in spans) + ("\n" if spans else "")


def spans_from_jsonl(text: str) -> list[Span]:
    spans = []
    for line in text.splitlines():
        if not line.strip():
            continue
        spans.append(Span.from_dict(json.loads(line)))
    return spans


def spans_to_chrome_trace(spans: list[Span],
                          process_name: str = "repro") -> dict:
    """Chrome trace-event JSON (the dict; dump with ``json.dumps``).

    Timestamps are microseconds relative to the earliest span, which keeps
    them small and origin-independent (``perf_counter`` has an arbitrary
    epoch). Spans sharing a ``process`` tag land on one pid (untagged spans
    on ``process_name``), with one ``process_name`` metadata event per pid;
    a single-process trace renders exactly as before. Span/parent ids, when
    present, ride in ``args`` so Perfetto shows the cross-process links.
    """
    origin = min((span.start for span in spans), default=0.0)
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        name = span.process or process_name
        if name not in pids:
            pids[name] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[name],
                "tid": 1, "args": {"name": name},
            })
    if not pids:  # keep the metadata event for empty traces
        events.append({
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": process_name},
        })
    for span in spans:
        args = dict(span.attrs)
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        if span.span_id is not None:
            args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pids[span.process or process_name],
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(payload: dict) -> list[Span]:
    """Inverse of :func:`spans_to_chrome_trace` (depth is not recoverable)."""
    names: dict[int, str] = {}
    for event in payload.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid", 1)] = (event.get("args") or {}).get("name")
    multi = len(names) > 1
    spans = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        ids = {key: args.pop(key, None) for key in _ID_ARG_KEYS}
        spans.append(Span(event["name"], event["ts"] / 1e6,
                          event["dur"] / 1e6, 0, args,
                          trace_id=ids["trace_id"], span_id=ids["span_id"],
                          parent_id=ids["parent_id"],
                          process=names.get(event.get("pid")) if multi else None))
    return spans


# -- the shared measurement path ----------------------------------------------


def measure(fn: Callable[[], object], repeats: int, *,
            name: str = "measure",
            tracer: Tracer | None = None,
            clock: Callable[[], float] | None = None,
            attrs: dict | None = None) -> list[float]:
    """Run ``fn`` ``repeats`` times, recording each run as one span.

    Returns the per-repeat durations (callers take ``min``/``mean`` as
    their protocol dictates). When no tracer is passed, a throwaway one is
    created over ``clock`` (default ``perf_counter``) — so the measurement
    path is *identical* whether or not the spans are kept.
    """
    if tracer is None:
        tracer = Tracer(clock=clock or time.perf_counter)
    attrs = attrs or {}
    durations: list[float] = []
    for repeat in range(repeats):
        with tracer.span(name, repeat=repeat, **attrs):
            fn()
        durations.append(tracer.spans[-1].duration)
    return durations
