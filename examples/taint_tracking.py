"""Dynamic taint analysis with memory shadowing (paper §2.3, §4.2).

The heavyweight analysis of the paper: every value carries a taint set,
propagated through arithmetic, locals, globals, calls, and linear memory —
the shadow memory lives entirely in the analysis (the program's own memory
is untouched, §1). We model a web-app scenario: a secret from
``env.read_credential`` must not reach ``env.network_send``, even after
being copied through memory and mangled by arithmetic.

Run:  python examples/taint_tracking.py
"""

from repro import analyze
from repro.analyses import TaintAnalysis
from repro.interp import Linker
from repro.minic import compile_source
from repro.wasm.types import I32, FuncType

APP = """
import func read_credential() -> i32;
import func read_public_config() -> i32;
import func network_send(x: i32);
import func local_log(x: i32);
memory 1;

func obfuscate(x: i32) -> i32 {
    return (x ^ 0x5a5a5a5a) + 17;
}

export func main() -> i32 {
    var secret: i32 = read_credential();
    var config: i32 = read_public_config();

    // the secret takes a detour through linear memory and a helper
    mem_i32[8] = obfuscate(secret);
    var staged: i32 = mem_i32[8] * 3;

    local_log(staged);        // allowed: logging stays on the device
    network_send(config);     // allowed: public data may leave
    network_send(staged - 1); // VIOLATION: derived from the credential
    return staged;
}
"""


def main():
    module = compile_source(APP, "webapp")

    taint = TaintAnalysis()
    taint.add_source_function("env.read_credential", "credential")
    taint.add_sink_function("env.network_send")

    sent = []
    linker = Linker()
    linker.define_function("env", "read_credential", FuncType((), (I32,)),
                           lambda args: 0xC0FFEE)
    linker.define_function("env", "read_public_config", FuncType((), (I32,)),
                           lambda args: 80)
    linker.define_function("env", "network_send", FuncType((I32,), ()),
                           lambda args: sent.append(args[0]))
    linker.define_function("env", "local_log", FuncType((I32,), ()),
                           lambda args: None)

    session = analyze(module, taint, linker=linker)
    taint.bind_module_info(session.module_info)
    session.invoke("main")

    print(f"values sent to the network: {sent}")
    print(f"tainted shadow-memory bytes: {taint.tainted_memory_bytes()}")
    print(f"detected flows: {len(taint.flows)}")
    for flow in taint.flows:
        sink_name = session.module_info.func_name(flow.sink)
        print(f"  labels {set(flow.labels)} reached sink '{sink_name}' "
              f"(argument {flow.arg_index}) at call site {flow.location}")

    assert len(taint.flows) == 1, "exactly the one illegal flow"
    assert taint.underflows == 0, "shadow stack stayed aligned"
    print("\nthe credential leak was caught; the public send was not flagged.")


if __name__ == "__main__":
    main()
