"""Enabled-observability overhead on the serve hot path (BENCH_serve_obs.json).

The acceptance criterion for the observability layer: with structured
logging, the flight recorder, the scrape surface, and per-op latency
histograms all enabled, ping throughput through the full socket stack
must be within **2%** of the pre-observability daemon.

Methodology (and what the floor does *not* claim):

* **The floor is asserted on untraced pings.** Tracing is head-sampled:
  a request only pays for span construction when the *client* attached a
  trace context. The always-on per-request cost — the ``trace`` field
  pop, two clock reads, one histogram observe + counter increment under
  a lock — is what the 2% budget covers. Fully-traced request rates are
  recorded informationally (``ping_traced_rps``), not asserted, because
  opting a request into tracing is a caller's explicit choice.
* **The baseline arm is the same daemon with the per-op accounting
  stubbed out** — the one piece of observability that sits on every
  request — which reproduces the pre-observability dispatch path without
  resurrecting old code.
* **Interleaved A/B.** Alternating baseline/enabled rounds under one
  process and one warmed pool, median-of-rounds, so drift (CPU
  frequency, page cache) hits both arms equally. Ping rates on this
  transport are noisy at the single-percent level; the interleaving and
  medians are what make a 2% assertion meaningful.
"""

from __future__ import annotations

import json
import statistics
import threading
import time

from repro.obs import Telemetry
from repro.serve import ServeClient, ServeConfig, ServeDaemon, WorkerPool

ROUNDS = 9           # interleaved A/B rounds per arm (median taken)
PINGS_PER_ROUND = 150
TRACED_ROUNDS = 3
OVERHEAD_FLOOR_PCT = 2.0


class _BaselineDaemon(ServeDaemon):
    """The enabled daemon minus the always-on per-request accounting —
    the pre-observability dispatch path, for the A arm."""

    def _observe_op(self, op, outcome, elapsed):
        pass


def _ping_rate(client: ServeClient, pings: int) -> float:
    start = time.perf_counter()
    for _ in range(pings):
        client.ping()
    return pings / (time.perf_counter() - start)


def _serve(tmp_path, name: str, daemon_cls):
    pool = WorkerPool(ServeConfig(workers=1, request_timeout=120.0,
                                  poll_interval=0.005)).start()
    socket_path = tmp_path / f"{name}.sock"
    daemon = daemon_cls(socket_path, pool).start()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread, ServeClient(socket_path)


def test_observability_overhead_on_ping(results_dir, tmp_path):
    base_daemon, base_thread, base_client = _serve(
        tmp_path, "base", _BaselineDaemon)
    obs_daemon, obs_thread, obs_client = _serve(
        tmp_path, "obs", ServeDaemon)
    try:
        # warm both stacks (socket path, worker, allocator)
        for client in (base_client, obs_client):
            for _ in range(30):
                assert client.ping()["ok"]

        base_rates, obs_rates = [], []
        for _ in range(ROUNDS):
            base_rates.append(_ping_rate(base_client, PINGS_PER_ROUND))
            obs_rates.append(_ping_rate(obs_client, PINGS_PER_ROUND))
        baseline_rps = statistics.median(base_rates)
        enabled_rps = statistics.median(obs_rates)

        # informational: the price a caller pays for *opting in* to tracing
        traced_client = ServeClient(obs_daemon.socket_path,
                                    telemetry=Telemetry())
        traced_rates = [_ping_rate(traced_client, PINGS_PER_ROUND)
                        for _ in range(TRACED_ROUNDS)]
        traced_rps = statistics.median(traced_rates)
    finally:
        base_daemon.stop()
        obs_daemon.stop()
        base_thread.join(timeout=10.0)
        obs_thread.join(timeout=10.0)

    overhead_pct = 100 * (baseline_rps - enabled_rps) / baseline_rps
    payload = {
        "ping_baseline_rps": round(baseline_rps, 1),
        "ping_enabled_rps": round(enabled_rps, 1),
        "overhead_pct": round(overhead_pct, 2),
        "floor_pct": OVERHEAD_FLOOR_PCT,
        "ping_traced_rps": round(traced_rps, 1),
        "traced_overhead_pct": round(
            100 * (baseline_rps - traced_rps) / baseline_rps, 2),
        "rounds": ROUNDS,
        "pings_per_round": PINGS_PER_ROUND,
        "methodology": "interleaved A/B, median of rounds; floor asserted "
                       "on untraced pings (tracing is head-sampled per "
                       "request); traced rate recorded informationally",
    }
    path = results_dir / "BENCH_serve_obs.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"ping baseline {baseline_rps:,.0f}/s vs enabled "
          f"{enabled_rps:,.0f}/s ({overhead_pct:+.2f}%) | traced "
          f"{traced_rps:,.0f}/s [recorded in {path}]")

    # the acceptance criterion: enabled observability costs <= 2%
    assert overhead_pct <= OVERHEAD_FLOOR_PCT, payload
