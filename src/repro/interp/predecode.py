"""Pre-decoded, direct-threaded instruction streams for the interpreter.

The legacy interpreter loop in :mod:`repro.interp.machine` dispatches every
instruction by string comparison and looks block targets up in per-function
dicts. This module translates each function body *once* into a flat array of
``(opcode-id, operand, ...)`` tuples:

* mnemonics become small integer opcode ids (compared with ``==`` on ints in
  the hot loop, ordered by dynamic frequency),
* every ``i32.const``/``i64.const`` immediate is pre-masked to its canonical
  unsigned form and ``f32.const`` pre-rounded through binary32,
* unary/binary arithmetic resolves straight to the Python handler from
  :data:`repro.interp.values.OP_HANDLERS` (no per-step dict probes),
* loads/stores resolve to their typed accessor with the static memarg offset
  extracted into the tuple,
* ``block``/``if``/``else`` targets are pre-resolved into absolute decoded
  pcs (subsuming the legacy ``BlockMatching`` side tables), and
* ``call``/``call_indirect`` carry their callee's parameter count (and, for
  indirect calls, the expected :class:`FuncType`) so the call sequence does
  no type-table lookups at run time, and
* calls into the Wasabi hook namespace (:data:`HOOK_IMPORT_MODULE`,
  identified via the module's import section) are recorded as *hook call
  sites*. At instantiation time the machine fuses each
  ``i32.const func / i32.const instr / call <hook>`` site into an
  :data:`OP_HOOK` superinstruction bound to a per-site dispatcher closure,
  so an executed hook does no location marshalling and no static-info
  lookups (see ``repro.interp.machine.bind_hook_sites``).

The decoded stream is cached *on the* :class:`~repro.wasm.module.Function`
*object itself* (``func._decoded``), so re-instantiating the same module —
which the benchmark harness does constantly — pays the decode cost once.
The cache is validated against the identity and length of ``func.body``; a
function whose body list is replaced is transparently re-decoded. In-place
mutation of a body that already executed is not supported (the legacy loop
has the same limitation through its precomputed matching tables).

Decoded pcs map 1:1 onto body indices: instruction ``i`` of the source body
is entry ``i`` of the decoded stream, which keeps branch resolution and
debugging straightforward.
"""

from __future__ import annotations

import math
from struct import Struct
from struct import error as _struct_error

from ..wasm.errors import Trap, WasmError
from ..wasm.module import Function, Instr, Module
from ..wasm.numeric import f32_round
from .values import BINOPS, MASK32, MASK64, OP_HANDLERS

# Opcode ids, ordered roughly by dynamic frequency on numeric workloads so
# the interpreter's if/elif chain resolves hot instructions first.
OP_GET_LOCAL = 0
OP_BINARY = 1
OP_CONST = 2
OP_SET_LOCAL = 3
OP_LOAD_INT = 4
OP_LOAD_FLOAT = 5
OP_STORE_INT = 6
OP_STORE_FLOAT = 7
OP_BR_IF = 8
OP_UNARY = 9
OP_TEE_LOCAL = 10
OP_BR = 11
OP_END = 12
OP_LOOP = 13
OP_IF = 14
OP_BLOCK = 15
OP_JUMP = 16
OP_CALL = 17
OP_RETURN = 18
OP_GET_GLOBAL = 19
OP_SET_GLOBAL = 20
OP_SELECT = 21
OP_DROP = 22
OP_CALL_INDIRECT = 23
OP_BR_TABLE = 24
OP_MEMORY_SIZE = 25
OP_MEMORY_GROW = 26
OP_NOP = 27
OP_UNREACHABLE = 28
OP_RAISE = 29

# Fused superinstructions. :func:`_fuse_pairs` rewrites slot *i* to execute
# both instruction *i* and *i+1* (then skip ahead two pcs) for hot adjacent
# pairs in compiled expression code — address arithmetic is almost
# entirely ``get_local``/``const`` feeding a binary op. Slot *i+1* keeps its
# ordinary decoding, so a branch that lands there still executes it solo and
# the stream stays 1:1 with the source body.
#
# Which pairs actually get fused is table-driven: :data:`FUSION_RULES` is
# the full menu of *implementable* pairs, :data:`DEFAULT_FUSION_PAIRS` the
# hand-picked subset used when no profile is supplied, and a PGO table
# derived from recorded ``repro.profile/1`` artifacts (see
# :mod:`repro.interp.pgo`) selects a data-driven subset per machine.
OP_GET_LOCAL_CONST = 30    # (_, local_idx, const) — push local, push const
OP_CONST_BINARY = 31       # (_, fn, const)       — stack[-1] = fn(top, const)
OP_GET_LOCAL_BINARY = 32   # (_, fn, local_idx)   — stack[-1] = fn(top, local)
OP_GET2_LOCAL = 33         # (_, i, j)            — push two locals

# Call-site-specialized hook dispatch. Decoding records *where* calls into
# the Wasabi hook import namespace happen (``DecodedFunction.hook_sites``);
# the machine rewrites those slots per instance into
# ``(OP_HOOK, bound_dispatcher, n_value_args, skip)``: pop the value args,
# call the pre-bound closure, advance ``skip`` pcs (3 when the two location
# constants were fused in, 1 for a bare call). The const/call slots keep
# their ordinary decoding so branches into the middle of a (never-branched-
# into, in practice) hook sequence still behave like the source program.
OP_HOOK = 34

# The profile-guided extension of the fusion menu (PR 7). Same contract as
# the four classic fusions above: execute source instructions *i* and *i+1*
# in one dispatch, skip two pcs, leave slot *i+1* decodable for branches.
OP_BINARY_CONST = 35       # (_, fn, const)          — binary, then push const
OP_BINARY_BINARY = 36      # (_, fn1, fn2)           — two stacked binaries
OP_BINARY_GET_LOCAL = 37   # (_, fn, idx)            — binary, push local
OP_CONST_GET_LOCAL = 38    # (_, const, idx)         — push const, push local
OP_CONST_CONST = 39        # (_, c1, c2)             — push two consts
OP_BINARY_SET_LOCAL = 40   # (_, fn, idx)            — local[idx] = binary
OP_BINARY_UNARY = 41       # (_, fn, un)             — un(binary)
OP_UNARY_BR_IF = 42        # (_, un, label)          — branch on un(top)
OP_BINARY_LOAD_FLOAT = 43  # (_, fn, fmt, off)       — load at binary address
OP_BINARY_LOAD_INT = 44    # (_, fn, fmt, off, mask)
OP_BINARY_STORE_FLOAT = 45  # (_, fn, fmt, off)      — store binary result
OP_BINARY_STORE_INT = 46   # (_, fn, fmt, off, mask)
OP_LOAD_FLOAT_BINARY = 47  # (_, fmt, off, fn)       — binary on loaded value
OP_LOAD_INT_BINARY = 48    # (_, fmt, off, mask, fn)
OP_SET_LOCAL_CONST = 49    # (_, idx, const)         — pop to local, push const
OP_LOAD_FLOAT_CONST = 50   # (_, fmt, off, const)    — load, then push const

# Quickening (PR 7). ``decode_function(quicken=True)`` wraps every bare
# memory op in an ``OP_QUICK`` trampoline carrying its pre-resolved twin:
# the twin holds a bound ``struct.Struct.unpack_from``/``pack_into`` method
# (no per-access format-cache probe) and drops the canonicalization mask
# where the format already guarantees canonical values. The first time the
# slot executes, the trampoline atomically swaps itself for the twin (the
# same single-slot list assignment quarantine uses) and re-dispatches, so
# the steady state pays nothing for having been quickened lazily.
OP_QUICK = 51              # (_, twin)               — code[pc] = twin; retry
OP_QLOAD = 52              # (_, unpack, off, width) — no mask needed
OP_QLOAD_MASK = 53         # (_, unpack, off, mask, width)
OP_QSTORE = 54             # (_, pack, off, width)   — full-width store
OP_QSTORE_MASK = 55        # (_, pack, off, mask, width)

# Monomorphic inline cache for ``call_indirect``, installed per *instance*
# (the cache cell holds that instance's resolved callee) by
# ``repro.interp.machine.bind_indirect_caches`` at quickened sites:
# ``(_, expected_type, n_params, cell)`` with ``cell`` a mutable
# ``[last_table_idx, last_func_addr, last_callee]``. A hit needs the same
# table index *and* the same table entry (tables mutate), so table.set /
# snapshot-restore fall back to the full resolve+type-check path.
OP_CALL_INDIRECT_IC = 56

# The logical endpoint of superinstruction formation (PR 7): a *compiled
# straight-line segment*. At quickening time, maximal runs of pure
# stack-machine ops (consts, locals, arithmetic, loads/stores, drop — no
# control flow, no calls, no hook sites) are translated once into a small
# Python function with every constant, mask, and bound struct method baked
# in, and the run's first slot becomes ``(OP_SEGMENT, fn, span)``: one
# dispatch executes the whole run, then skips ``span`` pcs. The covered
# slots keep their ordinary decoding, so a branch landing inside the
# segment executes the original (pair-fusable, quickenable) instructions —
# the same fallback contract fused pairs honour.
OP_SEGMENT = 57

#: Import namespace of Wasabi's generated low-level hooks. The instrumenter
#: (``repro.core.hooks.HOOK_MODULE``) aliases this constant, so the engine
#: and the instrumenter cannot drift apart.
HOOK_IMPORT_MODULE = "__wasabi_hooks"

#: Opcode id → display name, used by the self-profiler's hot-opcode ranking
#: and anything else that renders decoded streams for humans. Fused forms
#: are named after their constituents; ``OP_JUMP`` is the decoded ``else``.
OP_NAMES: dict[int, str] = {
    OP_GET_LOCAL: "get_local",
    OP_BINARY: "binary",
    OP_CONST: "const",
    OP_SET_LOCAL: "set_local",
    OP_LOAD_INT: "load.int",
    OP_LOAD_FLOAT: "load.float",
    OP_STORE_INT: "store.int",
    OP_STORE_FLOAT: "store.float",
    OP_BR_IF: "br_if",
    OP_UNARY: "unary",
    OP_TEE_LOCAL: "tee_local",
    OP_BR: "br",
    OP_END: "end",
    OP_LOOP: "loop",
    OP_IF: "if",
    OP_BLOCK: "block",
    OP_JUMP: "else",
    OP_CALL: "call",
    OP_RETURN: "return",
    OP_GET_GLOBAL: "get_global",
    OP_SET_GLOBAL: "set_global",
    OP_SELECT: "select",
    OP_DROP: "drop",
    OP_CALL_INDIRECT: "call_indirect",
    OP_BR_TABLE: "br_table",
    OP_MEMORY_SIZE: "memory.size",
    OP_MEMORY_GROW: "memory.grow",
    OP_NOP: "nop",
    OP_UNREACHABLE: "unreachable",
    OP_RAISE: "raise",
    OP_GET_LOCAL_CONST: "get_local+const",
    OP_CONST_BINARY: "const+binary",
    OP_GET_LOCAL_BINARY: "get_local+binary",
    OP_GET2_LOCAL: "get_local+get_local",
    OP_HOOK: "hook",
    OP_BINARY_CONST: "binary+const",
    OP_BINARY_BINARY: "binary+binary",
    OP_BINARY_GET_LOCAL: "binary+get_local",
    OP_CONST_GET_LOCAL: "const+get_local",
    OP_CONST_CONST: "const+const",
    OP_BINARY_SET_LOCAL: "binary+set_local",
    OP_BINARY_UNARY: "binary+unary",
    OP_UNARY_BR_IF: "unary+br_if",
    OP_BINARY_LOAD_FLOAT: "binary+load.float",
    OP_BINARY_LOAD_INT: "binary+load.int",
    OP_BINARY_STORE_FLOAT: "binary+store.float",
    OP_BINARY_STORE_INT: "binary+store.int",
    OP_LOAD_FLOAT_BINARY: "load.float+binary",
    OP_LOAD_INT_BINARY: "load.int+binary",
    OP_SET_LOCAL_CONST: "set_local+const",
    OP_LOAD_FLOAT_CONST: "load.float+const",
    OP_QUICK: "quicken",
    OP_QLOAD: "load.quick",
    OP_QLOAD_MASK: "load.quick.mask",
    OP_QSTORE: "store.quick",
    OP_QSTORE_MASK: "store.quick.mask",
    OP_CALL_INDIRECT_IC: "call_indirect.ic",
    OP_SEGMENT: "segment",
}

#: Size of a dense per-opcode counter array covering every opcode id.
N_OPCODES = max(OP_NAMES) + 1

# Loads decode to a struct format executed directly against the memory
# bytearray with ``struct.unpack_from`` (one C call instead of a chain of
# Python-level accessor calls); integer results are masked back to the
# canonical unsigned representation. Stores mirror this with ``pack_into``,
# masking the value to the store width first.
INT_LOADS: dict[str, tuple[str, int]] = {
    "i32.load": ("<I", MASK32),
    "i64.load": ("<Q", MASK64),
    "i32.load8_s": ("<b", MASK32),
    "i32.load8_u": ("<B", MASK32),
    "i32.load16_s": ("<h", MASK32),
    "i32.load16_u": ("<H", MASK32),
    "i64.load8_s": ("<b", MASK64),
    "i64.load8_u": ("<B", MASK64),
    "i64.load16_s": ("<h", MASK64),
    "i64.load16_u": ("<H", MASK64),
    "i64.load32_s": ("<i", MASK64),
    "i64.load32_u": ("<I", MASK64),
}
FLOAT_LOADS: dict[str, str] = {"f32.load": "<f", "f64.load": "<d"}
INT_STORES: dict[str, tuple[str, int]] = {
    "i32.store": ("<I", MASK32),
    "i64.store": ("<Q", MASK64),
    "i32.store8": ("<B", 0xFF),
    "i32.store16": ("<H", 0xFFFF),
    "i64.store8": ("<B", 0xFF),
    "i64.store16": ("<H", 0xFFFF),
    "i64.store32": ("<I", MASK32),
}
FLOAT_STORES: dict[str, str] = {"f32.store": "<f", "f64.store": "<d"}


class DecodedFunction:
    """The pre-decoded form of one function body.

    ``code`` is a flat list of tuples, one per source instruction (1:1 with
    ``source_body``). ``source_body`` keeps a strong reference to the body
    list the stream was decoded from, which both prevents ``id`` recycling
    and lets the cache detect body replacement. ``hook_sites`` lists the
    pcs of ``call`` instructions targeting Wasabi hook imports; it is empty
    for uninstrumented modules, whose decode is entirely unaffected.
    ``indirect_sites`` lists the pcs of ``call_indirect`` slots on quickened
    streams — the machine rewrites those per instance into monomorphic
    inline caches (:data:`OP_CALL_INDIRECT_IC`); it is empty on unquickened
    streams.
    """

    __slots__ = ("code", "source_body", "hook_sites", "indirect_sites")

    def __init__(
        self, code: list[tuple], source_body: list[Instr],
        hook_sites: tuple[int, ...] = (),
        indirect_sites: tuple[int, ...] = (),
    ):
        self.code = code
        self.source_body = source_body
        self.hook_sites = hook_sites
        self.indirect_sites = indirect_sites

    def __len__(self) -> int:
        return len(self.code)


def match_blocks(body: list[Instr]) -> tuple[dict[int, int], dict[int, int | None]]:
    """Map block-start (and ``else``) indices to their matching ``end``.

    Returns ``(end_of, else_of)``. Raises :class:`WasmError` for an ``else``
    outside any block (mirroring the legacy ``BlockMatching`` behaviour);
    unclosed blocks are simply absent from ``end_of`` and are turned into
    runtime errors by :func:`decode_function`.
    """
    end_of: dict[int, int] = {}
    else_of: dict[int, int | None] = {}
    open_blocks: list[int] = []
    for idx, instr in enumerate(body):
        op = instr.op
        if op in ("block", "loop", "if"):
            open_blocks.append(idx)
            else_of[idx] = None
        elif op == "else":
            if not open_blocks:
                raise WasmError("else outside any block")
            else_of[open_blocks[-1]] = idx
        elif op == "end":
            if open_blocks:
                start = open_blocks.pop()
                end_of[start] = idx
                else_idx = else_of.get(start)
                if else_idx is not None:
                    end_of[else_idx] = idx
            # an end with no open block is the function's final end
    return end_of, else_of


def _decode_instr(
    instr: Instr,
    pc: int,
    module: Module,
    end_of: dict[int, int],
    else_of: dict[int, int | None],
) -> tuple:
    op = instr.op
    handler = OP_HANDLERS.get(op)
    if handler is not None:
        arity, fn = handler
        return (OP_BINARY, fn) if arity == 2 else (OP_UNARY, fn)
    if op == "get_local":
        return (OP_GET_LOCAL, instr.idx)
    if op == "set_local":
        return (OP_SET_LOCAL, instr.idx)
    if op == "tee_local":
        return (OP_TEE_LOCAL, instr.idx)
    if op == "i32.const":
        return (OP_CONST, instr.value & MASK32)
    if op == "i64.const":
        return (OP_CONST, instr.value & MASK64)
    if op == "f32.const":
        return (OP_CONST, f32_round(instr.value))
    if op == "f64.const":
        return (OP_CONST, float(instr.value))
    int_load = INT_LOADS.get(op)
    if int_load is not None:
        fmt, mask = int_load
        return (OP_LOAD_INT, fmt, instr.memarg.offset, mask)
    float_load = FLOAT_LOADS.get(op)
    if float_load is not None:
        return (OP_LOAD_FLOAT, float_load, instr.memarg.offset)
    int_store = INT_STORES.get(op)
    if int_store is not None:
        fmt, mask = int_store
        return (OP_STORE_INT, fmt, instr.memarg.offset, mask)
    float_store = FLOAT_STORES.get(op)
    if float_store is not None:
        return (OP_STORE_FLOAT, float_store, instr.memarg.offset)
    if op == "block":
        arity = 0 if instr.blocktype is None else 1
        return (OP_BLOCK, end_of[pc] + 1, arity)
    if op == "loop":
        return (OP_LOOP,)
    if op == "if":
        arity = 0 if instr.blocktype is None else 1
        end_idx = end_of[pc]
        else_idx = else_of.get(pc)
        # false path: jump into the else arm (skipping the marker), or onto
        # the end, which pops the label
        false_pc = end_idx if else_idx is None else else_idx + 1
        return (OP_IF, end_idx + 1, arity, false_pc)
    if op == "else":
        # reached from the then-arm: jump onto the matching end
        return (OP_JUMP, end_of[pc])
    if op == "end":
        return (OP_END,)
    if op == "br":
        return (OP_BR, instr.label)
    if op == "br_if":
        return (OP_BR_IF, instr.label)
    if op == "br_table":
        table = instr.br_table
        return (OP_BR_TABLE, table.labels, table.default)
    if op == "return":
        return (OP_RETURN,)
    if op == "call":
        return (OP_CALL, instr.idx, len(module.func_type(instr.idx).params))
    if op == "call_indirect":
        expected = module.types[instr.idx]
        return (OP_CALL_INDIRECT, expected, len(expected.params))
    if op == "get_global":
        return (OP_GET_GLOBAL, instr.idx)
    if op == "set_global":
        return (OP_SET_GLOBAL, instr.idx)
    if op == "select":
        return (OP_SELECT,)
    if op == "drop":
        return (OP_DROP,)
    if op == "memory.size":
        return (OP_MEMORY_SIZE,)
    if op == "memory.grow":
        return (OP_MEMORY_GROW,)
    if op == "nop":
        return (OP_NOP,)
    if op == "unreachable":
        return (OP_UNREACHABLE,)
    raise WasmError(f"cannot pre-decode {op}")


def _hook_import_indices(module: Module) -> frozenset[int]:
    """Function indices of imports in the Wasabi hook namespace.

    Only void imports qualify: generated low-level hooks never return
    values, and restricting the match keeps arbitrary same-named imports
    with results on the fully generic call path.
    """
    indices: list[int] = []
    func_idx = 0
    for imp in module.imports:
        if isinstance(imp.desc, int):  # function import
            if imp.module == HOOK_IMPORT_MODULE and not module.types[imp.desc].results:
                indices.append(func_idx)
            func_idx += 1
    return frozenset(indices)


#: The full menu of *implementable* pair fusions: ``(first_op, second_op)``
#: → builder taking the two decoded tuples and returning the fused tuple.
#: A PGO table (or :data:`DEFAULT_FUSION_PAIRS`) selects which entries a
#: decode actually applies; pairs outside this menu can be profiled but
#: never fused. The menu itself was chosen from recorded PolyBench +
#: synthetic pair profiles (see ``repro pgo``): together these shapes cover
#: the overwhelming majority of back-to-back executions in compiled
#: numeric code.
FUSION_RULES: dict[tuple[int, int], object] = {
    (OP_GET_LOCAL, OP_CONST):
        lambda f, s: (OP_GET_LOCAL_CONST, f[1], s[1]),
    (OP_GET_LOCAL, OP_BINARY):
        lambda f, s: (OP_GET_LOCAL_BINARY, s[1], f[1]),
    (OP_GET_LOCAL, OP_GET_LOCAL):
        lambda f, s: (OP_GET2_LOCAL, f[1], s[1]),
    (OP_CONST, OP_BINARY):
        lambda f, s: (OP_CONST_BINARY, s[1], f[1]),
    (OP_CONST, OP_GET_LOCAL):
        lambda f, s: (OP_CONST_GET_LOCAL, f[1], s[1]),
    (OP_CONST, OP_CONST):
        lambda f, s: (OP_CONST_CONST, f[1], s[1]),
    (OP_BINARY, OP_CONST):
        lambda f, s: (OP_BINARY_CONST, f[1], s[1]),
    (OP_BINARY, OP_BINARY):
        lambda f, s: (OP_BINARY_BINARY, f[1], s[1]),
    (OP_BINARY, OP_GET_LOCAL):
        lambda f, s: (OP_BINARY_GET_LOCAL, f[1], s[1]),
    (OP_BINARY, OP_SET_LOCAL):
        lambda f, s: (OP_BINARY_SET_LOCAL, f[1], s[1]),
    (OP_BINARY, OP_UNARY):
        lambda f, s: (OP_BINARY_UNARY, f[1], s[1]),
    (OP_UNARY, OP_BR_IF):
        lambda f, s: (OP_UNARY_BR_IF, f[1], s[1]),
    (OP_BINARY, OP_LOAD_FLOAT):
        lambda f, s: (OP_BINARY_LOAD_FLOAT, f[1], s[1], s[2]),
    (OP_BINARY, OP_LOAD_INT):
        lambda f, s: (OP_BINARY_LOAD_INT, f[1], s[1], s[2], s[3]),
    (OP_BINARY, OP_STORE_FLOAT):
        lambda f, s: (OP_BINARY_STORE_FLOAT, f[1], s[1], s[2]),
    (OP_BINARY, OP_STORE_INT):
        lambda f, s: (OP_BINARY_STORE_INT, f[1], s[1], s[2], s[3]),
    (OP_LOAD_FLOAT, OP_BINARY):
        lambda f, s: (OP_LOAD_FLOAT_BINARY, f[1], f[2], s[1]),
    (OP_LOAD_INT, OP_BINARY):
        lambda f, s: (OP_LOAD_INT_BINARY, f[1], f[2], f[3], s[1]),
    (OP_SET_LOCAL, OP_CONST):
        lambda f, s: (OP_SET_LOCAL_CONST, f[1], s[1]),
    (OP_LOAD_FLOAT, OP_CONST):
        lambda f, s: (OP_LOAD_FLOAT_CONST, f[1], f[2], s[1]),
}

#: The hand-picked pair set predating profile-guided selection — the
#: default whenever no PGO profile is supplied, so engines without a
#: profile behave exactly as before. ``Machine(pgo_profile=...)`` swaps in
#: a table derived from recorded pair frequencies instead.
DEFAULT_FUSION_PAIRS: frozenset[tuple[int, int]] = frozenset({
    (OP_GET_LOCAL, OP_CONST),
    (OP_GET_LOCAL, OP_BINARY),
    (OP_GET_LOCAL, OP_GET_LOCAL),
    (OP_CONST, OP_BINARY),
})

_DEFAULT_RULES = {pair: FUSION_RULES[pair] for pair in DEFAULT_FUSION_PAIRS}


def _fuse_pairs(code: list[tuple],
                blocked: frozenset[int] | set[int] = frozenset(),
                pairs: frozenset[tuple[int, int]] | None = None) -> None:
    """Rewrite hot adjacent pairs into superinstructions, in place.

    ``pairs`` selects which :data:`FUSION_RULES` entries apply (``None``
    means :data:`DEFAULT_FUSION_PAIRS`). Overlapping fusions are fine: a
    fused slot is only *entered* at its own pc, and it always skips exactly
    one slot, whose unfused decoding is kept for branches that target it
    directly. Slots in ``blocked`` (the leading location constant of a hook
    call site) are never fused in either position, so the machine's
    hook-site rewrite stays reachable.
    """
    if pairs is None:
        rules = _DEFAULT_RULES
    else:
        rules = {pair: FUSION_RULES[pair] for pair in pairs
                 if pair in FUSION_RULES}
    get = rules.get
    for pc in range(len(code) - 1):
        if pc in blocked or pc + 1 in blocked:
            continue
        first = code[pc]
        second = code[pc + 1]
        rule = get((first[0], second[0]))
        if rule is not None:
            code[pc] = rule(first, second)


#: ``(fmt, mask)`` pairs whose store mask is redundant: the operand stack
#: only holds canonical values, so a full-width store can never overflow
#: its pack format. Narrow stores (store8/16/32) still need the mask.
_FULL_WIDTH_STORES = frozenset({("<I", MASK32), ("<Q", MASK64)})


def _quicken_slots(code: list[tuple]) -> None:
    """Wrap bare memory ops in :data:`OP_QUICK` trampolines, in place.

    Each twin pre-resolves what the generic slot re-derives on every
    execution: the ``struct`` format string becomes a bound
    ``Struct.unpack_from``/``pack_into`` method (no format-cache probe per
    access), and the canonicalization mask is dropped when the format
    already yields canonical values (unsigned loads; full-width stores).
    Signed loads and narrow stores keep their masks. The twin's last field
    is the access width in bytes, used only on the trap path so
    out-of-bounds messages stay bit-identical with the unquickened engine.
    """
    structs: dict[str, Struct] = {}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op == OP_LOAD_INT:
            fmt = ins[1]
            s = structs.get(fmt) or structs.setdefault(fmt, Struct(fmt))
            if fmt[1].isupper():  # unsigned: unpack is already canonical
                twin = (OP_QLOAD, s.unpack_from, ins[2], s.size)
            else:
                twin = (OP_QLOAD_MASK, s.unpack_from, ins[2], ins[3], s.size)
            code[pc] = (OP_QUICK, twin)
        elif op == OP_LOAD_FLOAT:
            fmt = ins[1]
            s = structs.get(fmt) or structs.setdefault(fmt, Struct(fmt))
            code[pc] = (OP_QUICK, (OP_QLOAD, s.unpack_from, ins[2], s.size))
        elif op == OP_STORE_INT:
            fmt = ins[1]
            s = structs.get(fmt) or structs.setdefault(fmt, Struct(fmt))
            if (fmt, ins[3]) in _FULL_WIDTH_STORES:
                twin = (OP_QSTORE, s.pack_into, ins[2], s.size)
            else:
                twin = (OP_QSTORE_MASK, s.pack_into, ins[2], ins[3], s.size)
            code[pc] = (OP_QUICK, twin)
        elif op == OP_STORE_FLOAT:
            fmt = ins[1]
            s = structs.get(fmt) or structs.setdefault(fmt, Struct(fmt))
            code[pc] = (OP_QUICK, (OP_QSTORE, s.pack_into, ins[2], s.size))


def oob_message(width: int, addr: int, memdata, what: str) -> str:
    """The canonical out-of-bounds trap message.

    Compiled segments, quickened twins, and the generic machine handlers
    all funnel through this one formatter so the trap text is bit-identical
    across every engine configuration.
    """
    size = len(memdata) if memdata is not None else 0
    return (f"out of bounds memory access ({what} of {width} bytes "
            f"at address {addr}, memory is {size} bytes)")


#: Shortest run worth compiling: below this, one CALL_FUNCTION into the
#: compiled segment costs about as much as the dispatches it saves.
_SEGMENT_MIN = 4

#: Ops a compiled segment may contain: pure operand-stack work with no
#: control flow, no calls, and no observable effects besides locals and
#: linear memory — exactly the part of the stream where dispatch overhead
#: is pure loss.
_SEGMENT_VOCAB = frozenset({
    OP_GET_LOCAL, OP_BINARY, OP_CONST, OP_SET_LOCAL, OP_LOAD_INT,
    OP_LOAD_FLOAT, OP_STORE_INT, OP_STORE_FLOAT, OP_UNARY, OP_TEE_LOCAL,
    OP_DROP,
})

#: Binary handlers with an exact inline expression template, keyed by the
#: *identity* of the table function — matching by identity means a template
#: can never drift from the semantics it replaces (anything unrecognized is
#: called through the table function instead of inlined).
_INLINE_BINOPS: dict[int, str] = {
    id(BINOPS[name]): template
    for name, template in {
        "i32.add": "(({a} + {b}) & 0xffffffff)",
        "i32.sub": "(({a} - {b}) & 0xffffffff)",
        "i32.mul": "(({a} * {b}) & 0xffffffff)",
        "i32.shl": "(({a} << ({b} % 32)) & 0xffffffff)",
        "i64.add": "(({a} + {b}) & 0xffffffffffffffff)",
        "i64.sub": "(({a} - {b}) & 0xffffffffffffffff)",
        "i64.mul": "(({a} * {b}) & 0xffffffffffffffff)",
        "i64.shl": "(({a} << ({b} % 64)) & 0xffffffffffffffff)",
        "i32.and": "({a} & {b})",
        "i32.or": "({a} | {b})",
        "i32.xor": "({a} ^ {b})",
        "f64.add": "({a} + {b})",
        "f64.sub": "({a} - {b})",
        "f64.mul": "({a} * {b})",
    }.items()
}


def _compile_segment(slots: list[tuple]):
    """Translate a straight-line run of decoded slots into one function.

    Symbolically executes the run against a virtual operand stack of
    Python expressions, emitting one statement per produced value (so
    evaluation order, every i32/i64 wrap mask, and the order of memory
    effects match the interpreted stream exactly). Values the run consumes
    from below its own pushes become leading ``stack`` reads; whatever the
    virtual stack holds at the end is appended back. Loads and stores keep
    their individual try/except so a trapping access raises the same
    message after the same prefix of memory effects as the generic
    handlers.
    """
    env: dict = {"_se": _struct_error, "_Trap": Trap, "_oob": oob_message}
    lines: list[str] = []
    vstack: list[str] = []
    structs: dict[str, Struct] = {}
    counters = {"args": 0, "tmp": 0}

    def vpop() -> str:
        if vstack:
            return vstack.pop()
        name = f"a{counters['args']}"
        counters["args"] += 1
        return name

    def vpeek() -> str:
        if not vstack:
            # borrow the entry stack's top: it is consumed by the prologue
            # and re-pushed by the epilogue, preserving net stack effect
            name = f"a{counters['args']}"
            counters["args"] += 1
            vstack.append(name)
        return vstack[-1]

    def tmp() -> str:
        counters["tmp"] += 1
        return f"t{counters['tmp']}"

    def lit(value) -> str:
        if isinstance(value, float) and not math.isfinite(value):
            name = f"k{len(env)}"
            env[name] = value
            return name
        return repr(value)

    def ref(obj) -> str:
        name = f"f{id(obj)}"
        env[name] = obj
        return name

    def addr_of(base: str, offset: int) -> str:
        if not offset:
            return base
        name = tmp()
        lines.append(f"{name} = {base} + {offset}")
        return name

    def bound(fmt: str, attr: str) -> str:
        s = structs.get(fmt) or structs.setdefault(fmt, Struct(fmt))
        return ref(getattr(s, attr))

    def emit_load(ins, masked: bool) -> None:
        addr = addr_of(vpop(), ins[2])
        s = structs.get(ins[1]) or structs.setdefault(ins[1], Struct(ins[1]))
        out = tmp()
        mask = f" & {ins[3]}" if masked else ""
        lines.extend([
            "try:",
            f"    {out} = {bound(ins[1], 'unpack_from')}(memdata, {addr})[0]{mask}",
            "except _se:",
            f"    raise _Trap(_oob({s.size}, {addr}, memdata, 'load')) from None",
        ])
        vstack.append(out)

    def emit_store(ins, masked: bool) -> None:
        value = vpop()
        addr = addr_of(vpop(), ins[2])
        s = structs.get(ins[1]) or structs.setdefault(ins[1], Struct(ins[1]))
        mask = f" & {ins[3]}" if masked else ""
        lines.extend([
            "try:",
            f"    {bound(ins[1], 'pack_into')}(memdata, {addr}, {value}{mask})",
            "except _se:",
            f"    raise _Trap(_oob({s.size}, {addr}, memdata, 'store')) from None",
        ])

    for ins in slots:
        op = ins[0]
        if op == OP_GET_LOCAL:
            out = tmp()
            lines.append(f"{out} = locals_[{ins[1]}]")
            vstack.append(out)
        elif op == OP_CONST:
            vstack.append(lit(ins[1]))
        elif op == OP_BINARY:
            b = vpop()
            a = vpop()
            out = tmp()
            template = _INLINE_BINOPS.get(id(ins[1]))
            if template is not None:
                lines.append(f"{out} = " + template.format(a=a, b=b))
            else:
                lines.append(f"{out} = {ref(ins[1])}({a}, {b})")
            vstack.append(out)
        elif op == OP_SET_LOCAL:
            lines.append(f"locals_[{ins[1]}] = {vpop()}")
        elif op == OP_TEE_LOCAL:
            lines.append(f"locals_[{ins[1]}] = {vpeek()}")
        elif op == OP_UNARY:
            out = tmp()
            lines.append(f"{out} = {ref(ins[1])}({vpop()})")
            vstack.append(out)
        elif op == OP_LOAD_INT:
            emit_load(ins, masked=True)
        elif op == OP_LOAD_FLOAT:
            emit_load(ins, masked=False)
        elif op == OP_STORE_INT:
            emit_store(ins, masked=True)
        elif op == OP_STORE_FLOAT:
            emit_store(ins, masked=False)
        else:  # OP_DROP
            vpop()

    n_args = counters["args"]
    prologue = [f"a{k} = stack[-{k + 1}]" for k in range(n_args)]
    if n_args:
        prologue.append(f"del stack[-{n_args}:]")
    body = prologue + lines + [f"stack.append({v})" for v in vstack]
    if not body:
        return None
    src = "def _segment(stack, locals_, memdata):\n" + "\n".join(
        "    " + line for line in body)
    exec(compile(src, "<quickened-segment>", "exec"), env)
    return env["_segment"]


def _compile_segments(code: list[tuple],
                      blocked: frozenset[int] | set[int] = frozenset()) -> None:
    """Replace straight-line runs with :data:`OP_SEGMENT` slots, in place.

    Runs before pair fusion: the segment takes the run's first slot (so
    fusion can never consume it), while the covered slots keep their
    ordinary decoding as the branch-target fallback — fusion and memory-op
    quickening still apply to them, so a branch into the middle of a
    segment executes at fused-pair speed. Hook sites (``blocked``) never
    join a segment; the machine's per-instance OP_HOOK rewrite stays
    reachable.
    """
    n = len(code)
    pc = 0
    while pc < n:
        if code[pc][0] in _SEGMENT_VOCAB and pc not in blocked:
            start = pc
            while pc < n and code[pc][0] in _SEGMENT_VOCAB and pc not in blocked:
                pc += 1
            if pc - start >= _SEGMENT_MIN:
                fn = _compile_segment(code[start:pc])
                if fn is not None:
                    code[start] = (OP_SEGMENT, fn, pc - start)
        else:
            pc += 1


def decode_function(func: Function, module: Module,
                    fuse: bool = True,
                    pairs: frozenset[tuple[int, int]] | None = None,
                    quicken: bool = False) -> DecodedFunction:
    """Decode one function body into its threaded form (uncached).

    ``fuse=False`` skips the pair-fusion pass, leaving every slot a base
    opcode — the self-profiler executes unfused streams so its per-opcode
    counts attribute 1:1 to source instructions. ``pairs`` selects the
    fusion table (``None`` = :data:`DEFAULT_FUSION_PAIRS`); ``quicken``
    additionally wraps bare memory ops in :data:`OP_QUICK` trampolines and
    records ``call_indirect`` slots in ``indirect_sites`` for the machine's
    per-instance inline-cache rewrite.
    """
    body = func.body
    end_of, else_of = match_blocks(body)
    hook_imports = _hook_import_indices(module)
    code: list[tuple] = []
    for pc, instr in enumerate(body):
        try:
            code.append(_decode_instr(instr, pc, module, end_of, else_of))
        except Exception as exc:
            # Malformed instructions (missing immediates, unclosed blocks)
            # fail at *execution* time in the legacy loop; mirror that by
            # decoding them to a raising placeholder instead of refusing to
            # instantiate.
            code.append((OP_RAISE, WasmError(f"cannot execute {instr}: {exc}")))
    hook_sites: tuple[int, ...] = ()
    blocked: set[int] = set()
    if hook_imports:
        hook_sites = tuple(
            pc for pc, ins in enumerate(code) if ins[0] == OP_CALL and ins[1] in hook_imports
        )
        for pc in hook_sites:
            # the instrumentation idiom: two i32.const location operands
            # directly before the hook call — reserve the first const slot
            # for the machine's OP_HOOK rewrite
            consts = pc >= 2 and code[pc - 1][0] == OP_CONST and code[pc - 2][0] == OP_CONST
            if consts and code[pc][2] >= 2:
                blocked.add(pc - 2)
    if quicken:
        # before fusion: the segment claims each run's first slot (so a
        # fusion pair can never swallow it), while the covered slots fall
        # through to fusion + quickening as branch-target fallbacks
        _compile_segments(code, blocked)
    if fuse:
        _fuse_pairs(code, blocked, pairs)
    indirect_sites: tuple[int, ...] = ()
    if quicken:
        _quicken_slots(code)
        indirect_sites = tuple(
            pc for pc, ins in enumerate(code) if ins[0] == OP_CALL_INDIRECT)
    return DecodedFunction(code, body, hook_sites, indirect_sites)


def cached_decode(func: Function, module: Module,
                  pairs: frozenset[tuple[int, int]] | None = None,
                  quicken: bool = False) -> tuple[DecodedFunction, bool]:
    """Decode ``func``, reusing the per-``Function`` cache when possible.

    The cache (``func._decoded``) is keyed by decode variant
    ``(quicken, pairs)``: quickened streams rewrite their own slots as they
    execute, so an unquickened machine (``REPRO_QUICKEN=0``) and machines
    with different PGO fusion tables must never observe each other's
    streams. Replacing ``func.body`` invalidates every variant at once.
    Returns ``(decoded, was_cache_hit)``.
    """
    key = (quicken, pairs)
    cache: dict | None = getattr(func, "_decoded", None)
    if cache is not None:
        decoded = cache.get(key)
        if (
            decoded is not None
            and decoded.source_body is func.body
            and len(decoded.code) == len(func.body)
        ):
            return decoded, True
        # any stale variant means the body was replaced (or mutated):
        # every cached stream decoded from the old body is now invalid
        stale = next(iter(cache.values()), None)
        if stale is not None and (stale.source_body is not func.body
                                  or len(stale.code) != len(func.body)):
            cache = None
    if cache is None:
        cache = {}
        func._decoded = cache  # type: ignore[attr-defined]
    decoded = decode_function(func, module, pairs=pairs, quicken=quicken)
    cache[key] = decoded
    return decoded, False


def stream_summary(module: Module) -> dict:
    """Static triage summary of a module's decoded streams.

    Decodes every defined function (through the per-``Function`` cache)
    and aggregates what crash-bundle inspection wants to show at a
    glance: total decoded instructions, Wasabi hook call sites (non-zero
    means the binary was instrumented), instructions that decoded to
    raising :data:`OP_RAISE` placeholders (malformed bodies a fuzz mutant
    smuggled past validation), and direct host-boundary call sites —
    the slots whose results a replay log must supply.
    """
    host_imports = set()
    for idx, imp in enumerate(i for i in module.imports if isinstance(i.desc, int)):
        if imp.module != HOOK_IMPORT_MODULE:
            host_imports.add(idx)
    instructions = hook_sites = raising = host_call_sites = 0
    for func in module.functions:
        decoded, _ = cached_decode(func, module)
        instructions += len(decoded.code)
        hook_sites += len(decoded.hook_sites)
        for ins in decoded.code:
            if ins[0] == OP_RAISE:
                raising += 1
            elif ins[0] == OP_CALL and ins[1] in host_imports:
                host_call_sites += 1
    return {
        "instructions": instructions,
        "hook_sites": hook_sites,
        "raising": raising,
        "host_call_sites": host_call_sites,
    }
