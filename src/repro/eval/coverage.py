"""Edge coverage over the *toolkit itself*, as a fuzzing signal.

The fault-injection harness needs to know whether a mutant exercised any
code in the binary pipeline (decoder, validator, instrumenter, encoder)
that no earlier mutant reached — that is the corpus-admission criterion
for coverage-guided fuzzing. This module collects intra-function *line
edges* ``(file, previous_line, line)`` over a fixed set of pipeline
modules, encoded as stable integers so coverage maps merge cheaply across
shard processes.

Two backends share one interface:

* ``monitoring`` (Python >= 3.12) — :mod:`sys.monitoring` LINE events.
  Each location is DISABLEd after its first sighting, so steady-state
  collection approaches zero overhead; :func:`sys.monitoring.restart_events`
  on installation makes every collector instance self-contained.
* ``settrace`` — a classic :func:`sys.settrace` local-trace closure.
  Slower (line events fire on every execution) but available on 3.10/3.11
  and exact about the previous-line chain.

Scoping discipline: nothing here is imported by the engines or the
pipeline, and a collector only observes between ``__enter__``/``__exit__``
— normal (non-fuzzing) runs never pay for it, which
``tests/test_fuzz_coverage.py`` pins.

Edge identity is deterministic across processes: target modules are
numbered in the fixed :data:`DEFAULT_COVERAGE_MODULES` order and lines are
packed into ``file_idx << 28 | prev << 14 | line``, so two shards that
execute the same pipeline path report the same integers.
"""

from __future__ import annotations

import importlib
import sys
from typing import Iterable

#: Pipeline modules the collector observes, in the (fixed) order that
#: assigns their stable file ids. Appending is safe; reordering changes
#: every edge id and therefore invalidates persisted coverage maps (bump
#: :data:`repro.eval.fuzz.CORPUS_VERSION` if you must).
DEFAULT_COVERAGE_MODULES = (
    "repro.wasm.leb128",
    "repro.wasm.decoder",
    "repro.wasm.validation",
    "repro.core.instrument",
    "repro.wasm.encoder",
)

_LINE_BITS = 14
_LINE_MASK = (1 << _LINE_BITS) - 1


class CoverageMap:
    """A mergeable set of edge ids with new-edge accounting."""

    __slots__ = ("edges",)

    def __init__(self, edges: Iterable[int] | None = None):
        self.edges: set[int] = set(edges or ())

    def add_all(self, edges: Iterable[int]) -> set[int]:
        """Fold ``edges`` in; returns the subset that was actually new."""
        new = set(edges) - self.edges
        self.edges |= new
        return new

    def __len__(self) -> int:
        return len(self.edges)

    def __contains__(self, edge: int) -> bool:
        return edge in self.edges

    def to_payload(self) -> list[int]:
        """Deterministic JSON-serializable form (sorted edge ids)."""
        return sorted(self.edges)

    @classmethod
    def from_payload(cls, payload: Iterable[int]) -> "CoverageMap":
        return cls(int(e) for e in payload)


def _module_files(modules: Iterable[str]) -> dict[str, int]:
    """Map target module ``__file__`` -> stable file index."""
    files: dict[str, int] = {}
    for idx, name in enumerate(modules):
        mod = importlib.import_module(name)
        files[mod.__file__] = idx
    return files


def default_backend() -> str:
    return "monitoring" if sys.version_info >= (3, 12) else "settrace"


class CoverageCollector:
    """Collects toolkit line edges while entered as a context manager.

    ``edges`` accumulates packed edge ids; :meth:`drain` hands them over
    (per-mutant, in the fuzz loop) and clears the buffer. Collectors nest
    politely with a pre-existing trace function (it is restored on exit)
    but must not be entered concurrently with another collector.
    """

    #: sys.monitoring tool slot. 0-2 are claimed by debuggers/coverage/
    #: profilers by convention; 4 keeps out of everyone's way.
    _TOOL_ID = 4

    def __init__(self, modules: Iterable[str] = DEFAULT_COVERAGE_MODULES,
                 backend: str | None = None):
        self._files = _module_files(modules)
        self.backend = backend or default_backend()
        if self.backend not in ("monitoring", "settrace"):
            raise ValueError(f"unknown coverage backend {self.backend!r}")
        if self.backend == "monitoring" and not hasattr(sys, "monitoring"):
            self.backend = "settrace"
        self.edges: set[int] = set()
        self._installed = False
        self._saved_trace = None
        # per-code previous-line state for the monitoring backend
        self._prev_line: dict = {}

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "CoverageCollector":
        if self._installed:
            raise RuntimeError("coverage collector already installed")
        if self.backend == "monitoring":
            self._install_monitoring()
        else:
            self._saved_trace = sys.gettrace()
            sys.settrace(self._global_trace)
        self._installed = True
        return self

    def __exit__(self, *exc) -> None:
        if self.backend == "monitoring":
            self._uninstall_monitoring()
        else:
            sys.settrace(self._saved_trace)
            self._saved_trace = None
        self._installed = False

    def drain(self) -> set[int]:
        """Return the edges collected since the last drain, clearing them."""
        edges, self.edges = self.edges, set()
        return edges

    # -- settrace backend -----------------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        fidx = self._files.get(frame.f_code.co_filename)
        if fidx is None:
            return None
        base = fidx << (2 * _LINE_BITS)
        prev = 0
        edges = self.edges

        def local(fr, ev, a):
            nonlocal prev
            if ev == "line":
                line = fr.f_lineno & _LINE_MASK
                edges.add(base | (prev << _LINE_BITS) | line)
                prev = line
            return local

        return local

    # -- sys.monitoring backend (3.12+) --------------------------------------

    def _install_monitoring(self) -> None:
        mon = sys.monitoring
        mon.use_tool_id(self._TOOL_ID, "repro-fuzz-coverage")
        mon.register_callback(self._TOOL_ID, mon.events.LINE, self._on_line)
        mon.set_events(self._TOOL_ID, mon.events.LINE)
        # re-arm locations DISABLEd by a previous collector instance so a
        # fresh collector observes from scratch (determinism contract)
        mon.restart_events()
        self._prev_line.clear()

    def _uninstall_monitoring(self) -> None:
        mon = sys.monitoring
        mon.set_events(self._TOOL_ID, 0)
        mon.register_callback(self._TOOL_ID, mon.events.LINE, None)
        mon.free_tool_id(self._TOOL_ID)
        self._prev_line.clear()

    def _on_line(self, code, line_number):
        mon = sys.monitoring
        fidx = self._files.get(code.co_filename)
        if fidx is None:
            return mon.DISABLE  # foreign code self-disables after one event
        line = line_number & _LINE_MASK
        prev = self._prev_line.get(code, 0)
        self._prev_line[code] = line
        self.edges.add((fidx << (2 * _LINE_BITS)) | (prev << _LINE_BITS) | line)
        # first sighting recorded; silence this location for the rest of
        # the process so steady-state tracing is ~free. Later mutants can
        # only be credited with globally-new edges anyway.
        return mon.DISABLE


def collect_edges(fn, *args, modules: Iterable[str] = DEFAULT_COVERAGE_MODULES,
                  backend: str | None = None, **kwargs) -> tuple[object, set[int]]:
    """One-shot convenience: run ``fn`` under a fresh collector.

    Returns ``(result, edges)``. Exceptions from ``fn`` propagate after the
    collector is uninstalled.
    """
    collector = CoverageCollector(modules=modules, backend=backend)
    with collector:
        result = fn(*args, **kwargs)
    return result, collector.drain()
