"""Pre-decoded, direct-threaded instruction streams for the interpreter.

The legacy interpreter loop in :mod:`repro.interp.machine` dispatches every
instruction by string comparison and looks block targets up in per-function
dicts. This module translates each function body *once* into a flat array of
``(opcode-id, operand, ...)`` tuples:

* mnemonics become small integer opcode ids (compared with ``==`` on ints in
  the hot loop, ordered by dynamic frequency),
* every ``i32.const``/``i64.const`` immediate is pre-masked to its canonical
  unsigned form and ``f32.const`` pre-rounded through binary32,
* unary/binary arithmetic resolves straight to the Python handler from
  :data:`repro.interp.values.OP_HANDLERS` (no per-step dict probes),
* loads/stores resolve to their typed accessor with the static memarg offset
  extracted into the tuple,
* ``block``/``if``/``else`` targets are pre-resolved into absolute decoded
  pcs (subsuming the legacy ``BlockMatching`` side tables), and
* ``call``/``call_indirect`` carry their callee's parameter count (and, for
  indirect calls, the expected :class:`FuncType`) so the call sequence does
  no type-table lookups at run time, and
* calls into the Wasabi hook namespace (:data:`HOOK_IMPORT_MODULE`,
  identified via the module's import section) are recorded as *hook call
  sites*. At instantiation time the machine fuses each
  ``i32.const func / i32.const instr / call <hook>`` site into an
  :data:`OP_HOOK` superinstruction bound to a per-site dispatcher closure,
  so an executed hook does no location marshalling and no static-info
  lookups (see ``repro.interp.machine.bind_hook_sites``).

The decoded stream is cached *on the* :class:`~repro.wasm.module.Function`
*object itself* (``func._decoded``), so re-instantiating the same module —
which the benchmark harness does constantly — pays the decode cost once.
The cache is validated against the identity and length of ``func.body``; a
function whose body list is replaced is transparently re-decoded. In-place
mutation of a body that already executed is not supported (the legacy loop
has the same limitation through its precomputed matching tables).

Decoded pcs map 1:1 onto body indices: instruction ``i`` of the source body
is entry ``i`` of the decoded stream, which keeps branch resolution and
debugging straightforward.
"""

from __future__ import annotations

from ..wasm.errors import WasmError
from ..wasm.module import Function, Instr, Module
from ..wasm.numeric import f32_round
from .values import MASK32, MASK64, OP_HANDLERS

# Opcode ids, ordered roughly by dynamic frequency on numeric workloads so
# the interpreter's if/elif chain resolves hot instructions first.
OP_GET_LOCAL = 0
OP_BINARY = 1
OP_CONST = 2
OP_SET_LOCAL = 3
OP_LOAD_INT = 4
OP_LOAD_FLOAT = 5
OP_STORE_INT = 6
OP_STORE_FLOAT = 7
OP_BR_IF = 8
OP_UNARY = 9
OP_TEE_LOCAL = 10
OP_BR = 11
OP_END = 12
OP_LOOP = 13
OP_IF = 14
OP_BLOCK = 15
OP_JUMP = 16
OP_CALL = 17
OP_RETURN = 18
OP_GET_GLOBAL = 19
OP_SET_GLOBAL = 20
OP_SELECT = 21
OP_DROP = 22
OP_CALL_INDIRECT = 23
OP_BR_TABLE = 24
OP_MEMORY_SIZE = 25
OP_MEMORY_GROW = 26
OP_NOP = 27
OP_UNREACHABLE = 28
OP_RAISE = 29

# Fused superinstructions. :func:`_fuse_pairs` rewrites slot *i* to execute
# both instruction *i* and *i+1* (then skip ahead two pcs) for the hottest
# adjacent pairs in compiled expression code — address arithmetic is almost
# entirely ``get_local``/``const`` feeding a binary op. Slot *i+1* keeps its
# ordinary decoding, so a branch that lands there still executes it solo and
# the stream stays 1:1 with the source body.
OP_GET_LOCAL_CONST = 30    # (_, local_idx, const) — push local, push const
OP_CONST_BINARY = 31       # (_, fn, const)       — stack[-1] = fn(top, const)
OP_GET_LOCAL_BINARY = 32   # (_, fn, local_idx)   — stack[-1] = fn(top, local)
OP_GET2_LOCAL = 33         # (_, i, j)            — push two locals

# Call-site-specialized hook dispatch. Decoding records *where* calls into
# the Wasabi hook import namespace happen (``DecodedFunction.hook_sites``);
# the machine rewrites those slots per instance into
# ``(OP_HOOK, bound_dispatcher, n_value_args, skip)``: pop the value args,
# call the pre-bound closure, advance ``skip`` pcs (3 when the two location
# constants were fused in, 1 for a bare call). The const/call slots keep
# their ordinary decoding so branches into the middle of a (never-branched-
# into, in practice) hook sequence still behave like the source program.
OP_HOOK = 34

#: Import namespace of Wasabi's generated low-level hooks. The instrumenter
#: (``repro.core.hooks.HOOK_MODULE``) aliases this constant, so the engine
#: and the instrumenter cannot drift apart.
HOOK_IMPORT_MODULE = "__wasabi_hooks"

#: Opcode id → display name, used by the self-profiler's hot-opcode ranking
#: and anything else that renders decoded streams for humans. Fused forms
#: are named after their constituents; ``OP_JUMP`` is the decoded ``else``.
OP_NAMES: dict[int, str] = {
    OP_GET_LOCAL: "get_local",
    OP_BINARY: "binary",
    OP_CONST: "const",
    OP_SET_LOCAL: "set_local",
    OP_LOAD_INT: "load.int",
    OP_LOAD_FLOAT: "load.float",
    OP_STORE_INT: "store.int",
    OP_STORE_FLOAT: "store.float",
    OP_BR_IF: "br_if",
    OP_UNARY: "unary",
    OP_TEE_LOCAL: "tee_local",
    OP_BR: "br",
    OP_END: "end",
    OP_LOOP: "loop",
    OP_IF: "if",
    OP_BLOCK: "block",
    OP_JUMP: "else",
    OP_CALL: "call",
    OP_RETURN: "return",
    OP_GET_GLOBAL: "get_global",
    OP_SET_GLOBAL: "set_global",
    OP_SELECT: "select",
    OP_DROP: "drop",
    OP_CALL_INDIRECT: "call_indirect",
    OP_BR_TABLE: "br_table",
    OP_MEMORY_SIZE: "memory.size",
    OP_MEMORY_GROW: "memory.grow",
    OP_NOP: "nop",
    OP_UNREACHABLE: "unreachable",
    OP_RAISE: "raise",
    OP_GET_LOCAL_CONST: "get_local+const",
    OP_CONST_BINARY: "const+binary",
    OP_GET_LOCAL_BINARY: "get_local+binary",
    OP_GET2_LOCAL: "get_local+get_local",
    OP_HOOK: "hook",
}

#: Size of a dense per-opcode counter array covering every opcode id.
N_OPCODES = max(OP_NAMES) + 1

# Loads decode to a struct format executed directly against the memory
# bytearray with ``struct.unpack_from`` (one C call instead of a chain of
# Python-level accessor calls); integer results are masked back to the
# canonical unsigned representation. Stores mirror this with ``pack_into``,
# masking the value to the store width first.
INT_LOADS: dict[str, tuple[str, int]] = {
    "i32.load": ("<I", MASK32),
    "i64.load": ("<Q", MASK64),
    "i32.load8_s": ("<b", MASK32),
    "i32.load8_u": ("<B", MASK32),
    "i32.load16_s": ("<h", MASK32),
    "i32.load16_u": ("<H", MASK32),
    "i64.load8_s": ("<b", MASK64),
    "i64.load8_u": ("<B", MASK64),
    "i64.load16_s": ("<h", MASK64),
    "i64.load16_u": ("<H", MASK64),
    "i64.load32_s": ("<i", MASK64),
    "i64.load32_u": ("<I", MASK64),
}
FLOAT_LOADS: dict[str, str] = {"f32.load": "<f", "f64.load": "<d"}
INT_STORES: dict[str, tuple[str, int]] = {
    "i32.store": ("<I", MASK32),
    "i64.store": ("<Q", MASK64),
    "i32.store8": ("<B", 0xFF),
    "i32.store16": ("<H", 0xFFFF),
    "i64.store8": ("<B", 0xFF),
    "i64.store16": ("<H", 0xFFFF),
    "i64.store32": ("<I", MASK32),
}
FLOAT_STORES: dict[str, str] = {"f32.store": "<f", "f64.store": "<d"}


class DecodedFunction:
    """The pre-decoded form of one function body.

    ``code`` is a flat list of tuples, one per source instruction (1:1 with
    ``source_body``). ``source_body`` keeps a strong reference to the body
    list the stream was decoded from, which both prevents ``id`` recycling
    and lets the cache detect body replacement. ``hook_sites`` lists the
    pcs of ``call`` instructions targeting Wasabi hook imports; it is empty
    for uninstrumented modules, whose decode is entirely unaffected.
    """

    __slots__ = ("code", "source_body", "hook_sites")

    def __init__(
        self, code: list[tuple], source_body: list[Instr], hook_sites: tuple[int, ...] = ()
    ):
        self.code = code
        self.source_body = source_body
        self.hook_sites = hook_sites

    def __len__(self) -> int:
        return len(self.code)


def match_blocks(body: list[Instr]) -> tuple[dict[int, int], dict[int, int | None]]:
    """Map block-start (and ``else``) indices to their matching ``end``.

    Returns ``(end_of, else_of)``. Raises :class:`WasmError` for an ``else``
    outside any block (mirroring the legacy ``BlockMatching`` behaviour);
    unclosed blocks are simply absent from ``end_of`` and are turned into
    runtime errors by :func:`decode_function`.
    """
    end_of: dict[int, int] = {}
    else_of: dict[int, int | None] = {}
    open_blocks: list[int] = []
    for idx, instr in enumerate(body):
        op = instr.op
        if op in ("block", "loop", "if"):
            open_blocks.append(idx)
            else_of[idx] = None
        elif op == "else":
            if not open_blocks:
                raise WasmError("else outside any block")
            else_of[open_blocks[-1]] = idx
        elif op == "end":
            if open_blocks:
                start = open_blocks.pop()
                end_of[start] = idx
                else_idx = else_of.get(start)
                if else_idx is not None:
                    end_of[else_idx] = idx
            # an end with no open block is the function's final end
    return end_of, else_of


def _decode_instr(
    instr: Instr,
    pc: int,
    module: Module,
    end_of: dict[int, int],
    else_of: dict[int, int | None],
) -> tuple:
    op = instr.op
    handler = OP_HANDLERS.get(op)
    if handler is not None:
        arity, fn = handler
        return (OP_BINARY, fn) if arity == 2 else (OP_UNARY, fn)
    if op == "get_local":
        return (OP_GET_LOCAL, instr.idx)
    if op == "set_local":
        return (OP_SET_LOCAL, instr.idx)
    if op == "tee_local":
        return (OP_TEE_LOCAL, instr.idx)
    if op == "i32.const":
        return (OP_CONST, instr.value & MASK32)
    if op == "i64.const":
        return (OP_CONST, instr.value & MASK64)
    if op == "f32.const":
        return (OP_CONST, f32_round(instr.value))
    if op == "f64.const":
        return (OP_CONST, float(instr.value))
    int_load = INT_LOADS.get(op)
    if int_load is not None:
        fmt, mask = int_load
        return (OP_LOAD_INT, fmt, instr.memarg.offset, mask)
    float_load = FLOAT_LOADS.get(op)
    if float_load is not None:
        return (OP_LOAD_FLOAT, float_load, instr.memarg.offset)
    int_store = INT_STORES.get(op)
    if int_store is not None:
        fmt, mask = int_store
        return (OP_STORE_INT, fmt, instr.memarg.offset, mask)
    float_store = FLOAT_STORES.get(op)
    if float_store is not None:
        return (OP_STORE_FLOAT, float_store, instr.memarg.offset)
    if op == "block":
        arity = 0 if instr.blocktype is None else 1
        return (OP_BLOCK, end_of[pc] + 1, arity)
    if op == "loop":
        return (OP_LOOP,)
    if op == "if":
        arity = 0 if instr.blocktype is None else 1
        end_idx = end_of[pc]
        else_idx = else_of.get(pc)
        # false path: jump into the else arm (skipping the marker), or onto
        # the end, which pops the label
        false_pc = end_idx if else_idx is None else else_idx + 1
        return (OP_IF, end_idx + 1, arity, false_pc)
    if op == "else":
        # reached from the then-arm: jump onto the matching end
        return (OP_JUMP, end_of[pc])
    if op == "end":
        return (OP_END,)
    if op == "br":
        return (OP_BR, instr.label)
    if op == "br_if":
        return (OP_BR_IF, instr.label)
    if op == "br_table":
        table = instr.br_table
        return (OP_BR_TABLE, table.labels, table.default)
    if op == "return":
        return (OP_RETURN,)
    if op == "call":
        return (OP_CALL, instr.idx, len(module.func_type(instr.idx).params))
    if op == "call_indirect":
        expected = module.types[instr.idx]
        return (OP_CALL_INDIRECT, expected, len(expected.params))
    if op == "get_global":
        return (OP_GET_GLOBAL, instr.idx)
    if op == "set_global":
        return (OP_SET_GLOBAL, instr.idx)
    if op == "select":
        return (OP_SELECT,)
    if op == "drop":
        return (OP_DROP,)
    if op == "memory.size":
        return (OP_MEMORY_SIZE,)
    if op == "memory.grow":
        return (OP_MEMORY_GROW,)
    if op == "nop":
        return (OP_NOP,)
    if op == "unreachable":
        return (OP_UNREACHABLE,)
    raise WasmError(f"cannot pre-decode {op}")


def _hook_import_indices(module: Module) -> frozenset[int]:
    """Function indices of imports in the Wasabi hook namespace.

    Only void imports qualify: generated low-level hooks never return
    values, and restricting the match keeps arbitrary same-named imports
    with results on the fully generic call path.
    """
    indices: list[int] = []
    func_idx = 0
    for imp in module.imports:
        if isinstance(imp.desc, int):  # function import
            if imp.module == HOOK_IMPORT_MODULE and not module.types[imp.desc].results:
                indices.append(func_idx)
            func_idx += 1
    return frozenset(indices)


def _fuse_pairs(code: list[tuple], blocked: frozenset[int] | set[int] = frozenset()) -> None:
    """Rewrite hot adjacent pairs into superinstructions, in place.

    Overlapping fusions are fine: a fused slot is only *entered* at its own
    pc, and it always skips exactly one slot, whose unfused decoding is kept
    for branches that target it directly. Slots in ``blocked`` (the leading
    location constant of a hook call site) are never consumed as the second
    half of a pair, so the machine's hook-site fusion stays reachable.
    """
    for pc in range(len(code) - 1):
        if pc + 1 in blocked:
            continue
        first = code[pc]
        fop = first[0]
        second = code[pc + 1]
        sop = second[0]
        if fop == OP_GET_LOCAL:
            if sop == OP_CONST:
                code[pc] = (OP_GET_LOCAL_CONST, first[1], second[1])
            elif sop == OP_BINARY:
                code[pc] = (OP_GET_LOCAL_BINARY, second[1], first[1])
            elif sop == OP_GET_LOCAL:
                code[pc] = (OP_GET2_LOCAL, first[1], second[1])
        elif fop == OP_CONST and sop == OP_BINARY:
            code[pc] = (OP_CONST_BINARY, second[1], first[1])


def decode_function(func: Function, module: Module,
                    fuse: bool = True) -> DecodedFunction:
    """Decode one function body into its threaded form (uncached).

    ``fuse=False`` skips the pair-fusion pass, leaving every slot a base
    opcode — the self-profiler executes unfused streams so its per-opcode
    counts attribute 1:1 to source instructions.
    """
    body = func.body
    end_of, else_of = match_blocks(body)
    hook_imports = _hook_import_indices(module)
    code: list[tuple] = []
    for pc, instr in enumerate(body):
        try:
            code.append(_decode_instr(instr, pc, module, end_of, else_of))
        except Exception as exc:
            # Malformed instructions (missing immediates, unclosed blocks)
            # fail at *execution* time in the legacy loop; mirror that by
            # decoding them to a raising placeholder instead of refusing to
            # instantiate.
            code.append((OP_RAISE, WasmError(f"cannot execute {instr}: {exc}")))
    hook_sites: tuple[int, ...] = ()
    blocked: set[int] = set()
    if hook_imports:
        hook_sites = tuple(
            pc for pc, ins in enumerate(code) if ins[0] == OP_CALL and ins[1] in hook_imports
        )
        for pc in hook_sites:
            # the instrumentation idiom: two i32.const location operands
            # directly before the hook call — reserve the first const slot
            # for the machine's OP_HOOK rewrite
            consts = pc >= 2 and code[pc - 1][0] == OP_CONST and code[pc - 2][0] == OP_CONST
            if consts and code[pc][2] >= 2:
                blocked.add(pc - 2)
    if fuse:
        _fuse_pairs(code, blocked)
    return DecodedFunction(code, body, hook_sites)


def cached_decode(func: Function, module: Module) -> tuple[DecodedFunction, bool]:
    """Decode ``func``, reusing the per-``Function`` cache when possible.

    Returns ``(decoded, was_cache_hit)``.
    """
    decoded = getattr(func, "_decoded", None)
    if (
        decoded is not None
        and decoded.source_body is func.body
        and len(decoded.code) == len(func.body)
    ):
        return decoded, True
    decoded = decode_function(func, module)
    func._decoded = decoded  # type: ignore[attr-defined]
    return decoded, False


def stream_summary(module: Module) -> dict:
    """Static triage summary of a module's decoded streams.

    Decodes every defined function (through the per-``Function`` cache)
    and aggregates what crash-bundle inspection wants to show at a
    glance: total decoded instructions, Wasabi hook call sites (non-zero
    means the binary was instrumented), instructions that decoded to
    raising :data:`OP_RAISE` placeholders (malformed bodies a fuzz mutant
    smuggled past validation), and direct host-boundary call sites —
    the slots whose results a replay log must supply.
    """
    host_imports = set()
    for idx, imp in enumerate(i for i in module.imports if isinstance(i.desc, int)):
        if imp.module != HOOK_IMPORT_MODULE:
            host_imports.add(idx)
    instructions = hook_sites = raising = host_call_sites = 0
    for func in module.functions:
        decoded, _ = cached_decode(func, module)
        instructions += len(decoded.code)
        hook_sites += len(decoded.hook_sites)
        for ins in decoded.code:
            if ins[0] == OP_RAISE:
                raising += 1
            elif ins[0] == OP_CALL and ins[1] in host_imports:
                host_call_sites += 1
    return {
        "instructions": instructions,
        "hook_sites": hook_sites,
        "raising": raising,
        "host_call_sites": host_call_sites,
    }
