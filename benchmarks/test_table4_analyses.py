"""Table 4: analyses built on top of Wasabi — hooks used and lines of code.

Reproduces the paper's effort metric (RQ1): each of the eight analyses is
implemented in a few dozen lines. We count the *logic* lines of each
analysis class (excluding docstrings, comments, blanks, and reporting-only
helpers), and verify each analysis implements exactly the hooks the paper
lists. The benchmark itself times the cheapest analysis end-to-end.
"""

from __future__ import annotations

import inspect

from repro.analyses import (BasicBlockProfiler, BranchCoverage,
                            CallGraphAnalysis, CryptominerDetector,
                            InstructionCoverage, InstructionMixAnalysis,
                            MemoryTracer, TaintAnalysis)
from repro.core import analyze, used_groups
from repro.eval import polybench_workloads, render_table

PAPER_TABLE4 = {
    "Instruction mix analysis": ("all", 42),
    "Basic block profiling": ("begin", 9),
    "Instruction coverage": ("all", 11),
    "Branch coverage": ("if, br_if, br_table, select", 14),
    "Call graph analysis": ("call_pre", 18),
    "Dynamic taint analysis": ("all", 208),
    "Cryptominer detection": ("binary", 10),
    "Memory access tracing": ("load, store", 11),
}

ANALYSES = [
    ("Instruction mix analysis", InstructionMixAnalysis),
    ("Basic block profiling", BasicBlockProfiler),
    ("Instruction coverage", InstructionCoverage),
    ("Branch coverage", BranchCoverage),
    ("Call graph analysis", CallGraphAnalysis),
    ("Dynamic taint analysis", TaintAnalysis),
    ("Cryptominer detection", CryptominerDetector),
    ("Memory access tracing", MemoryTracer),
]


def logic_loc(cls) -> int:
    """Count non-blank, non-comment, non-docstring source lines of a class."""
    source = inspect.getsource(cls)
    lines = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            if not (in_doc is False and stripped.endswith(('"""', "'''"))
                    and len(stripped) > 3):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        lines += 1
    return lines


def test_table4(benchmark, write_report):
    rows = []
    for paper_name, cls in ANALYSES:
        hooks = used_groups(cls())
        hooks_str = "all" if len(hooks) >= 20 else ", ".join(sorted(hooks))
        paper_hooks, paper_loc = PAPER_TABLE4[paper_name]
        rows.append([paper_name, hooks_str, logic_loc(cls),
                     f"{paper_hooks} / {paper_loc}"])
    report = render_table(
        ["Analysis", "Hooks (measured)", "LOC (ours)", "Paper hooks / LOC"],
        rows, title="Table 4: analyses built on top of Wasabi")
    write_report("table4_analyses", report)

    # effort claim: every analysis is at most a few hundred lines
    for _, cls in ANALYSES:
        assert logic_loc(cls) <= 250

    # benchmark one representative analysis run (cryptominer on gemm)
    workload = polybench_workloads(["gemm"])[0]

    def run():
        detector = CryptominerDetector()
        session = analyze(workload.module(), detector,
                          linker=workload.linker())
        session.invoke("main")
        return detector.signature_fraction

    fraction = benchmark(run)
    assert 0 <= fraction <= 1
