"""The Wasabi binary instrumenter (paper §2.4).

Walks every function body and interleaves the original instructions with
calls to generated low-level hooks (imported functions), implementing the
schemes of the paper's Table 3:

* constants are duplicated and passed to the hook (row 1);
* general instructions save their inputs/results in *fresh locals* (row 2);
* calls get a pre and a post hook around them (row 3);
* polymorphic ``drop``/``select`` are resolved against the abstract operand
  stack and call a *monomorphized* hook (row 4, §2.4.3);
* blocks get begin/end hooks, and branches/returns additionally call the
  end hooks of all traversed blocks (row 5, §2.4.5), with branch targets
  statically resolved via the abstract control stack (§2.4.4);
* i64 values are split into two i32 halves before crossing the host
  boundary (row 6, §2.4.6).

Selective instrumentation (§2.4.2): only instruction groups in the
configured set are instrumented, which bounds both code-size and runtime
overhead to what the analysis actually observes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from threading import Lock

from ..wasm.errors import WasmError
from ..wasm.module import Export, Function, Import, Instr, Module
from ..wasm.types import I32, I64, ValType
from ..wasm.validation import ExprValidator, _Unknown
from .analysis import ALL_GROUPS, Location
from .control import ControlFrame, ControlStack
from .hooks import HOOK_MODULE, HookRegistry, HookSpec
from .metadata import BrTableInfo, EndEvent, ModuleInfo, StaticInfo

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class InstrumentationConfig:
    """Tuning knobs of the instrumenter.

    ``groups`` selects which hook groups to instrument (selective
    instrumentation); ``emit_locations`` can be disabled for the location
    ablation benchmark; ``parallel_workers > 1`` instruments functions on a
    thread pool, sharing the hook registry behind a lock (mirroring the
    Rust implementation's parallelization, §3 — note CPython's GIL limits
    the achievable speedup).
    """

    groups: frozenset[str] = ALL_GROUPS
    emit_locations: bool = True
    parallel_workers: int = 1


@dataclass
class InstrumentationResult:
    """The instrumented module plus everything the runtime needs."""

    module: Module
    info: StaticInfo

    @property
    def hook_count(self) -> int:
        return len(self.info.hooks)


class _FuncInstrumenter:
    """Instruments a single function body."""

    def __init__(self, module: Module, func: Function, func_idx: int,
                 registry: HookRegistry, groups: frozenset[str],
                 static: StaticInfo, config: InstrumentationConfig,
                 lock: Lock | None = None):
        self.module = module
        self.func = func
        self.func_idx = func_idx
        self.registry = registry
        self.groups = groups
        self.static = static
        self.config = config
        self.lock = lock
        functype = module.types[func.type_idx]
        self.functype = functype
        self.typer = ExprValidator(module, func, functype.results,
                                   list(functype.params) + list(func.locals))
        self.ctrl = ControlStack(func_idx, func.body)
        self.out: list[Instr] = []
        self.new_locals: list[ValType] = []
        self._local_base = len(functype.params) + len(func.locals)
        self._free_temps: dict[ValType, list[int]] = {}

    # -- fresh locals (paper Table 3, row 2) ----------------------------------

    def temp(self, valtype: ValType) -> int:
        pool = self._free_temps.setdefault(valtype, [])
        if pool:
            return pool.pop()
        self.new_locals.append(valtype)
        return self._local_base + len(self.new_locals) - 1

    def release(self, temps: list[int], types: tuple[ValType, ...]) -> None:
        for local_idx, valtype in zip(temps, types):
            self._free_temps.setdefault(valtype, []).append(local_idx)

    # -- emission helpers ----------------------------------------------------------

    def emit(self, op: str, **immediates) -> None:
        self.out.append(Instr(op, **immediates))

    def emit_instr(self, instr: Instr) -> None:
        self.out.append(instr)

    def hook(self, kind: str, payload: tuple,
             value_types: tuple[ValType, ...]) -> HookSpec:
        if self.lock is not None:
            with self.lock:
                return self.registry.get_or_create(kind, payload, value_types)
        return self.registry.get_or_create(kind, payload, value_types)

    def call_hook(self, spec: HookSpec, instr_idx: int) -> None:
        """Emit the location constants and the (placeholder) hook call."""
        if self.config.emit_locations:
            self.emit("i32.const", value=self.func_idx)
            self.emit("i32.const", value=instr_idx)
        self.out.append(Instr("call", idx=-1 - spec.index))

    def push_local(self, local_idx: int, valtype: ValType) -> None:
        """Push a saved value as hook argument(s), splitting i64 (row 6)."""
        if valtype is I64:
            self.emit("get_local", idx=local_idx)
            self.emit("i32.wrap/i64")
            self.emit("get_local", idx=local_idx)
            self.emit("i64.const", value=32)
            self.emit("i64.shr_u")
            self.emit("i32.wrap/i64")
        else:
            self.emit("get_local", idx=local_idx)

    def save_to_temps(self, types: tuple[ValType, ...]) -> list[int]:
        """Pop the top ``len(types)`` stack values into fresh locals.

        ``types`` is given in stack order (bottom first); the returned temp
        indices are aligned with it.
        """
        temps = [self.temp(t) for t in types]
        for local_idx in reversed(temps):
            self.emit("set_local", idx=local_idx)
        return temps

    def restore_from_temps(self, temps: list[int]) -> None:
        for local_idx in temps:
            self.emit("get_local", idx=local_idx)

    def push_args(self, temps: list[int], types: tuple[ValType, ...]) -> None:
        for local_idx, valtype in zip(temps, types):
            self.push_local(local_idx, valtype)

    def push_const_dup(self, instr: Instr) -> None:
        """Duplicate a constant by re-emitting it (Table 3, rows 1 and 6)."""
        if instr.op == "i64.const":
            unsigned = int(instr.value) & MASK64
            self.emit("i32.const", value=unsigned & MASK32)
            self.emit("i32.const", value=unsigned >> 32)
        else:
            self.emit_instr(instr)

    # -- end hooks (paper §2.4.5) ----------------------------------------------

    def emit_end_hook(self, kind: str, begin_idx: int, end_idx: int) -> None:
        self.static.begin_of_end[(self.func_idx, end_idx, kind)] = \
            Location(self.func_idx, begin_idx)
        spec = self.hook("end", (kind,), ())
        self.call_hook(spec, end_idx)

    def emit_begin_hook(self, kind: str, begin_idx: int) -> None:
        spec = self.hook("begin", (kind,), ())
        self.call_hook(spec, begin_idx)

    def end_events(self, frames: list[ControlFrame]) -> tuple[EndEvent, ...]:
        return tuple(
            EndEvent(frame.kind, Location(self.func_idx, frame.begin),
                     Location(self.func_idx, frame.end))
            for frame in frames)

    # -- the main walk ------------------------------------------------------------

    def run(self) -> Function:
        if not self.func.body or self.func.body[-1].op != "end":
            raise WasmError("function body must end with end")

        if "begin" in self.groups:
            self.emit_begin_hook("function", -1)

        for idx, instr in enumerate(self.func.body):
            self._instrument_one(idx, instr)
            self.typer.step(instr)
        self.typer.finish()

        return Function(type_idx=self.func.type_idx,
                        locals=list(self.func.locals) + self.new_locals,
                        body=self.out, name=self.func.name)

    def _instrument_one(self, idx: int, instr: Instr) -> None:
        op = instr.op
        dead = self.typer.unreachable_now
        loc_key = (self.func_idx, idx)
        enabled = self.groups.__contains__

        # Control structure must be tracked even through dead code.
        if op == "else":
            if_frame, _else_frame = self.ctrl.enter_else(idx)
            if not dead and enabled("end"):
                self.emit_end_hook("if", if_frame.begin, idx)
            self.emit_instr(instr)
            if enabled("begin"):
                self.emit_begin_hook("else", idx)
            return
        if op == "end":
            frame = self.ctrl.exit()
            if not dead:
                if frame.kind == "function" and enabled("return"):
                    self._emit_return_hook(idx)
                if enabled("end"):
                    self.emit_end_hook(frame.kind, frame.begin, frame.end)
            self.emit_instr(instr)
            return
        if op in ("block", "loop"):
            self.emit_instr(instr)
            self.ctrl.enter(op, idx)
            if not dead and enabled("begin"):
                self.emit_begin_hook(op, idx)
            return
        if op == "if":
            if not dead and enabled("if"):
                cond = self.temp(I32)
                self.emit("set_local", idx=cond)
                self.emit("get_local", idx=cond)
                spec = self.hook("if", (), (I32,))
                self.call_hook(spec, idx)
                self.emit("get_local", idx=cond)
                self.release([cond], (I32,))
            self.emit_instr(instr)
            self.ctrl.enter("if", idx)
            if not dead and enabled("begin"):
                self.emit_begin_hook("if", idx)
            return

        if dead:
            self.emit_instr(instr)
            return

        group = instr.info.group
        group_name = group.value if group is not None else None

        if op == "br":
            if enabled("br"):
                self.static.br_targets[loc_key] = self.ctrl.resolve_label(instr.label)
                spec = self.hook("br", (), ())
                self.call_hook(spec, idx)
            if enabled("end"):
                for frame in self.ctrl.traversed_frames(instr.label):
                    self.emit_end_hook(frame.kind, frame.begin, frame.end)
            self.emit_instr(instr)
            return

        if op == "br_if":
            need_hook = enabled("br_if")
            need_ends = enabled("end") and self.ctrl.traversed_frames(instr.label)
            if not need_hook and not need_ends:
                self.emit_instr(instr)
                return
            cond = self.temp(I32)
            self.emit("set_local", idx=cond)
            if need_hook:
                self.static.br_targets[loc_key] = self.ctrl.resolve_label(instr.label)
                self.emit("get_local", idx=cond)
                spec = self.hook("br_if", (), (I32,))
                self.call_hook(spec, idx)
            if need_ends:
                # end hooks fire only if the branch is taken (§2.4.5)
                self.emit("get_local", idx=cond)
                self.emit("if", blocktype=None)
                for frame in self.ctrl.traversed_frames(instr.label):
                    self.emit_end_hook(frame.kind, frame.begin, frame.end)
                self.emit("end")
            self.emit("get_local", idx=cond)
            self.emit_instr(instr)
            self.release([cond], (I32,))
            return

        if op == "br_table":
            need = enabled("br_table") or enabled("end")
            if need:
                targets = tuple(self.ctrl.resolve_label(lbl)
                                for lbl in instr.br_table.labels)
                default = self.ctrl.resolve_label(instr.br_table.default)
                ended = tuple(
                    self.end_events(self.ctrl.traversed_frames(lbl))
                    for lbl in (*instr.br_table.labels, instr.br_table.default))
                if enabled("end"):
                    for events in ended:
                        for event in events:
                            self.static.begin_of_end[
                                (self.func_idx, event.end.instr, event.kind)] = event.begin
                self.static.br_tables[loc_key] = BrTableInfo(targets, default, ended)
                table_idx = self.temp(I32)
                self.emit("set_local", idx=table_idx)
                self.emit("get_local", idx=table_idx)
                spec = self.hook("br_table", (), (I32,))
                self.call_hook(spec, idx)
                self.emit("get_local", idx=table_idx)
                self.release([table_idx], (I32,))
            self.emit_instr(instr)
            return

        if op == "return":
            if enabled("return"):
                self._emit_return_hook(idx)
            if enabled("end"):
                for frame in self.ctrl.all_frames_for_return():
                    self.emit_end_hook(frame.kind, frame.begin, frame.end)
            self.emit_instr(instr)
            return

        if op == "call":
            self._instrument_call(idx, instr)
            return
        if op == "call_indirect":
            self._instrument_call_indirect(idx, instr)
            return

        if group_name is None or group_name not in self.groups:
            self.emit_instr(instr)
            return

        if group_name == "nop":
            self.emit_instr(instr)
            spec = self.hook("nop", (), ())
            self.call_hook(spec, idx)
            return
        if group_name == "unreachable":
            spec = self.hook("unreachable", (), ())
            self.call_hook(spec, idx)
            self.emit_instr(instr)
            return
        if group_name == "const":
            self.emit_instr(instr)
            valtype = instr.info.signature[1][0]
            self.push_const_dup(instr)
            spec = self.hook("const", (valtype,), (valtype,))
            self.call_hook(spec, idx)
            return
        if group_name == "drop":
            valtype = self.typer.peek(0)
            if isinstance(valtype, _Unknown):
                self.emit_instr(instr)
                return
            spec = self.hook("drop", (valtype,), (valtype,))
            if valtype is I64:
                saved = self.temp(I64)
                self.emit("set_local", idx=saved)
                self.push_local(saved, I64)
                self.release([saved], (I64,))
            self.call_hook(spec, idx)
            return
        if group_name == "select":
            first_t = self.typer.peek(2)
            second_t = self.typer.peek(1)
            valtype = second_t if isinstance(first_t, _Unknown) else first_t
            if isinstance(valtype, _Unknown):
                self.emit_instr(instr)
                return
            types = (valtype, valtype, I32)
            temps = self.save_to_temps(types)
            self.restore_from_temps(temps)
            self.emit_instr(instr)
            self.push_args(temps, types)
            spec = self.hook("select", (valtype,), types)
            self.call_hook(spec, idx)
            self.release(temps, types)
            return
        if group_name in ("unary", "binary"):
            params, results = instr.info.signature
            temps = self.save_to_temps(params)
            self.restore_from_temps(temps)
            self.emit_instr(instr)
            result_temp = self.temp(results[0])
            self.emit("tee_local", idx=result_temp)
            self.push_args(temps, params)
            self.push_local(result_temp, results[0])
            spec = self.hook(group_name, (op,), params + results)
            self.call_hook(spec, idx)
            self.release(temps + [result_temp], params + results)
            return
        if group_name == "load":
            self.static.memarg_offsets[loc_key] = instr.memarg.offset
            addr = self.temp(I32)
            self.emit("tee_local", idx=addr)
            self.emit_instr(instr)
            valtype = instr.info.signature[1][0]
            result_temp = self.temp(valtype)
            self.emit("tee_local", idx=result_temp)
            self.push_local(addr, I32)
            self.push_local(result_temp, valtype)
            spec = self.hook("load", (op,), (I32, valtype))
            self.call_hook(spec, idx)
            self.release([addr, result_temp], (I32, valtype))
            return
        if group_name == "store":
            self.static.memarg_offsets[loc_key] = instr.memarg.offset
            types = instr.info.signature[0]  # (addr, value)
            temps = self.save_to_temps(types)
            self.restore_from_temps(temps)
            self.emit_instr(instr)
            self.push_args(temps, types)
            spec = self.hook("store", (op,), types)
            self.call_hook(spec, idx)
            self.release(temps, types)
            return
        if group_name == "memory_size":
            self.emit_instr(instr)
            result_temp = self.temp(I32)
            self.emit("tee_local", idx=result_temp)
            self.push_local(result_temp, I32)
            spec = self.hook("memory_size", (), (I32,))
            self.call_hook(spec, idx)
            self.release([result_temp], (I32,))
            return
        if group_name == "memory_grow":
            delta = self.temp(I32)
            self.emit("tee_local", idx=delta)
            self.emit_instr(instr)
            result_temp = self.temp(I32)
            self.emit("tee_local", idx=result_temp)
            self.push_local(delta, I32)
            self.push_local(result_temp, I32)
            spec = self.hook("memory_grow", (), (I32, I32))
            self.call_hook(spec, idx)
            self.release([delta, result_temp], (I32, I32))
            return
        if group_name == "local":
            valtype = self.typer.local_type(instr.idx)
            self.static.var_indices[loc_key] = instr.idx
            self.emit_instr(instr)
            self.push_local(instr.idx, valtype)
            spec = self.hook("local", (op, valtype), (valtype,))
            self.call_hook(spec, idx)
            return
        if group_name == "global":
            valtype = self.module.global_type(instr.idx).valtype
            self.static.var_indices[loc_key] = instr.idx
            self.emit_instr(instr)
            if valtype is I64:
                saved = self.temp(I64)
                self.emit("get_global", idx=instr.idx)
                self.emit("set_local", idx=saved)
                self.push_local(saved, I64)
                self.release([saved], (I64,))
            else:
                self.emit("get_global", idx=instr.idx)
            spec = self.hook("global", (op, valtype), (valtype,))
            self.call_hook(spec, idx)
            return

        self.emit_instr(instr)  # pragma: no cover - all groups handled

    def _emit_return_hook(self, idx: int) -> None:
        results = self.functype.results
        temps = self.save_to_temps(results)
        self.push_args(temps, results)
        spec = self.hook("return", tuple(results), results)
        self.call_hook(spec, idx)
        self.restore_from_temps(temps)
        self.release(temps, results)

    def _instrument_call(self, idx: int, instr: Instr) -> None:
        if "call" not in self.groups:
            self.emit_instr(instr)
            return
        loc_key = (self.func_idx, idx)
        callee_type = self.module.func_type(instr.idx)
        self.static.call_targets[loc_key] = instr.idx
        params, results = callee_type.params, callee_type.results
        arg_temps = self.save_to_temps(params)
        self.push_args(arg_temps, params)
        pre = self.hook("call_pre", ("direct",) + tuple(params), params)
        self.call_hook(pre, idx)
        self.restore_from_temps(arg_temps)
        self.release(arg_temps, params)
        self.emit_instr(instr)
        self._emit_call_post(idx, results)

    def _instrument_call_indirect(self, idx: int, instr: Instr) -> None:
        if "call" not in self.groups:
            self.emit_instr(instr)
            return
        functype = self.module.types[instr.idx]
        params, results = functype.params, functype.results
        types = params + (I32,)  # table index on top
        temps = self.save_to_temps(types)
        table_temp = temps[-1]
        self.push_local(table_temp, I32)
        self.push_args(temps[:-1], params)
        pre = self.hook("call_pre", ("indirect",) + tuple(params),
                        (I32,) + params)
        self.call_hook(pre, idx)
        self.restore_from_temps(temps)
        self.release(temps, types)
        self.emit_instr(instr)
        self._emit_call_post(idx, results)

    def _emit_call_post(self, idx: int, results: tuple[ValType, ...]) -> None:
        result_temps = self.save_to_temps(results)
        self.push_args(result_temps, results)
        post = self.hook("call_post", tuple(results), results)
        self.call_hook(post, idx)
        self.restore_from_temps(result_temps)
        self.release(result_temps, results)


def instrument_module(module: Module,
                      groups: frozenset[str] | set[str] | None = None,
                      config: InstrumentationConfig | None = None
                      ) -> InstrumentationResult:
    """Instrument ``module`` for the given hook groups.

    Returns a *new* module (the input is not mutated) plus the static info
    the runtime needs. With ``groups=None`` all hook groups are
    instrumented (full instrumentation).
    """
    if config is None:
        config = InstrumentationConfig(
            groups=frozenset(groups) if groups is not None else ALL_GROUPS)
    elif groups is not None:
        config = replace(config, groups=frozenset(groups))
    unknown = config.groups - ALL_GROUPS
    if unknown:
        raise WasmError(f"unknown hook groups: {sorted(unknown)}")

    registry = HookRegistry(with_locations=config.emit_locations)
    static = StaticInfo(module_info=ModuleInfo.from_module(module))
    n_imported = module.num_imported_functions

    if config.parallel_workers > 1:
        lock = Lock()
        def work(item: tuple[int, Function]) -> Function:
            pos, func = item
            return _FuncInstrumenter(module, func, n_imported + pos, registry,
                                     config.groups, static, config, lock).run()
        with ThreadPoolExecutor(max_workers=config.parallel_workers) as pool:
            new_functions = list(pool.map(work, enumerate(module.functions)))
    else:
        new_functions = [
            _FuncInstrumenter(module, func, n_imported + pos, registry,
                              config.groups, static, config).run()
            for pos, func in enumerate(module.functions)
        ]

    hook_specs = registry.hooks
    static.hooks = hook_specs
    num_hooks = len(hook_specs)

    def remap(func_idx: int) -> int:
        if func_idx < 0:  # hook placeholder
            return n_imported + (-func_idx - 1)
        if func_idx < n_imported:
            return func_idx
        return func_idx + num_hooks

    instrumented = Module(name=module.name)
    instrumented.types = list(module.types)
    instrumented.imports = list(module.imports)
    for spec in hook_specs:
        type_idx = instrumented.add_type(spec.functype)
        # insert hook imports after the existing function imports so the
        # original imports keep their indices
        instrumented.imports.append(Import(HOOK_MODULE, spec.name, type_idx))
    for func in new_functions:
        for i, instr in enumerate(func.body):
            if instr.op == "call":
                func.body[i] = replace(instr, idx=remap(instr.idx))
        # type indices are stable: instrumented.types extends module.types
        instrumented.functions.append(func)
    instrumented.tables = list(module.tables)
    instrumented.memories = list(module.memories)
    instrumented.globals = [replace_global(g) for g in module.globals]
    instrumented.exports = [
        Export(e.name, e.kind, remap(e.idx) if e.kind == "func" else e.idx)
        for e in module.exports
    ]
    if module.start is not None:
        instrumented.start = remap(module.start)
    for segment in module.elements:
        instrumented.elements.append(type(segment)(
            offset=list(segment.offset),
            func_idxs=[remap(i) for i in segment.func_idxs]))
    for segment in module.data:
        instrumented.data.append(type(segment)(offset=list(segment.offset),
                                               data=segment.data))
    instrumented.custom_sections = list(module.custom_sections)

    return InstrumentationResult(module=instrumented, info=static)


def replace_global(glob):
    """Shallow-copy a global (init expressions are immutable instrs)."""
    from ..wasm.module import Global
    return Global(type=glob.type, init=list(glob.init))
