"""WebAssembly validation: expression type checking and module validation.

Implements the algorithm of the spec appendix ("Validation Algorithm"):
an abstract operand stack of value types (with an Unknown bottom type for
unreachable code) and a stack of control frames. The instrumenter in
:mod:`repro.core.instrument` drives the same :class:`ExprValidator`
step-by-step to know the concrete types of polymorphic instructions
(``drop``, ``select``) — the paper's §2.4.3 "full type checking during
instrumentation".
"""

from __future__ import annotations

from dataclasses import dataclass

from . import opcodes
from .errors import ValidationError
from .module import Function, Instr, Module
from .types import I32, MAX_PAGES, Limits, MemoryType, TableType, ValType


class _Unknown:
    """Bottom type that unifies with every value type (unreachable code)."""

    def __repr__(self) -> str:
        return "unknown"


UNKNOWN = _Unknown()

StackEntry = ValType | _Unknown


@dataclass
class CtrlFrame:
    """A control frame: one entry of the validator's control stack."""

    kind: str                      # 'function' | 'block' | 'loop' | 'if' | 'else'
    start_types: tuple[ValType, ...]
    end_types: tuple[ValType, ...]
    height: int                    # operand stack height at frame entry
    unreachable: bool = False
    instr_idx: int = -1            # index of the opening instruction (-1 = function)

    @property
    def label_types(self) -> tuple[ValType, ...]:
        """Types a branch to this frame's label must provide."""
        return self.start_types if self.kind == "loop" else self.end_types


class ExprValidator:
    """Type checks one instruction sequence (function body or init expr)."""

    def __init__(self, module: Module, func: Function | None,
                 result_types: tuple[ValType, ...], locals_: list[ValType]):
        self.module = module
        self.func = func
        self.locals = locals_
        self.vals: list[StackEntry] = []
        self.ctrls: list[CtrlFrame] = [
            CtrlFrame("function", (), tuple(result_types), 0)
        ]
        self.instr_idx = -1

    # -- primitive stack operations (spec appendix) ---------------------------

    def _error(self, message: str) -> ValidationError:
        func_idx = None
        if self.func is not None and self.func in self.module.functions:
            func_idx = (self.module.num_imported_functions
                        + self.module.functions.index(self.func))
        return ValidationError(message, func_idx=func_idx, instr_idx=self.instr_idx)

    def push_val(self, valtype: StackEntry) -> None:
        self.vals.append(valtype)

    def pop_val(self, expect: ValType | None = None) -> StackEntry:
        frame = self.ctrls[-1]
        if len(self.vals) == frame.height:
            if frame.unreachable:
                return expect if expect is not None else UNKNOWN
            raise self._error(
                f"operand stack underflow (expected {expect or 'a value'})")
        actual = self.vals.pop()
        if expect is not None and not isinstance(actual, _Unknown) and actual != expect:
            raise self._error(f"type mismatch: expected {expect}, found {actual}")
        return actual

    def pop_vals(self, expects: tuple[ValType, ...]) -> list[StackEntry]:
        return [self.pop_val(t) for t in reversed(expects)][::-1]

    def push_vals(self, types: tuple[ValType, ...]) -> None:
        for valtype in types:
            self.push_val(valtype)

    def peek(self, depth: int = 0) -> StackEntry:
        """Type of the value ``depth`` positions below the stack top.

        In unreachable code, or when peeking below the current frame,
        returns :data:`UNKNOWN`.
        """
        frame = self.ctrls[-1]
        pos = len(self.vals) - 1 - depth
        if pos < frame.height:
            return UNKNOWN
        return self.vals[pos]

    @property
    def unreachable_now(self) -> bool:
        return self.ctrls[-1].unreachable

    def push_ctrl(self, kind: str, start: tuple[ValType, ...],
                  end: tuple[ValType, ...]) -> None:
        self.ctrls.append(CtrlFrame(kind, start, end, len(self.vals),
                                    instr_idx=self.instr_idx))
        self.push_vals(start)

    def pop_ctrl(self) -> CtrlFrame:
        if not self.ctrls:
            raise self._error("control stack underflow")
        frame = self.ctrls[-1]
        self.pop_vals(frame.end_types)
        if len(self.vals) != frame.height:
            raise self._error(
                f"{len(self.vals) - frame.height} superfluous value(s) at end of block")
        self.ctrls.pop()
        return frame

    def mark_unreachable(self) -> None:
        frame = self.ctrls[-1]
        del self.vals[frame.height:]
        frame.unreachable = True

    def label(self, depth: int) -> CtrlFrame:
        if depth >= len(self.ctrls):
            raise self._error(f"branch label {depth} exceeds block nesting "
                              f"{len(self.ctrls) - 1}")
        return self.ctrls[-1 - depth]

    # -- per-instruction typing ------------------------------------------------

    def local_type(self, idx: int) -> ValType:
        if idx >= len(self.locals):
            raise self._error(f"local index {idx} out of range ({len(self.locals)} locals)")
        return self.locals[idx]

    def step(self, instr: Instr) -> None:
        """Validate one instruction, updating the abstract stacks."""
        self.instr_idx += 1
        if not self.ctrls:
            raise self._error("instruction after the function's final end")
        op = opcodes.BY_NAME.get(instr.op)
        if op is None:
            raise self._error(f"unknown instruction {instr.op!r}")

        if op.signature is not None and op.imm not in (opcodes.Imm.LOCAL_IDX,
                                                       opcodes.Imm.GLOBAL_IDX):
            params, results = op.signature
            if op.imm is opcodes.Imm.MEMARG or op.imm is opcodes.Imm.MEM_IDX:
                self._check_memory_exists(instr)
            if op.imm is opcodes.Imm.MEMARG:
                self._check_alignment(instr)
            self.pop_vals(params)
            self.push_vals(results)
            return

        handler = getattr(self, "_step_" + instr.op.replace(".", "_"), None)
        if handler is None:
            raise self._error(f"no validation rule for {instr.op}")  # pragma: no cover
        handler(instr)

    # control ------------------------------------------------------------------

    def _block_types(self, instr: Instr) -> tuple[ValType, ...]:
        return () if instr.blocktype is None else (instr.blocktype,)

    def _step_nop(self, instr: Instr) -> None:
        pass

    def _step_unreachable(self, instr: Instr) -> None:
        self.mark_unreachable()

    def _step_block(self, instr: Instr) -> None:
        self.push_ctrl("block", (), self._block_types(instr))

    def _step_loop(self, instr: Instr) -> None:
        self.push_ctrl("loop", (), self._block_types(instr))

    def _step_if(self, instr: Instr) -> None:
        self.pop_val(I32)
        self.push_ctrl("if", (), self._block_types(instr))

    def _step_else(self, instr: Instr) -> None:
        frame = self.ctrls[-1]
        if frame.kind != "if":
            raise self._error("else without matching if")
        self.pop_ctrl()
        self.push_ctrl("else", (), frame.end_types)

    def _step_end(self, instr: Instr) -> None:
        frame = self.pop_ctrl()
        if frame.kind == "if" and frame.end_types != frame.start_types:
            raise self._error("if with a result type requires an else branch")
        self.push_vals(frame.end_types)

    def _step_br(self, instr: Instr) -> None:
        frame = self.label(instr.label)
        self.pop_vals(frame.label_types)
        self.mark_unreachable()

    def _step_br_if(self, instr: Instr) -> None:
        frame = self.label(instr.label)
        self.pop_val(I32)
        self.pop_vals(frame.label_types)
        self.push_vals(frame.label_types)

    def _step_br_table(self, instr: Instr) -> None:
        default = self.label(instr.br_table.default)
        arity = default.label_types
        for lbl in instr.br_table.labels:
            target = self.label(lbl)
            if target.label_types != arity:
                raise self._error("br_table targets have inconsistent types")
        self.pop_val(I32)
        self.pop_vals(arity)
        self.mark_unreachable()

    def _step_return(self, instr: Instr) -> None:
        self.pop_vals(self.ctrls[0].end_types)
        self.mark_unreachable()

    def _step_call(self, instr: Instr) -> None:
        if instr.idx >= self.module.num_functions:
            raise self._error(f"call to out-of-range function {instr.idx}")
        functype = self.module.func_type(instr.idx)
        self.pop_vals(functype.params)
        self.push_vals(functype.results)

    def _step_call_indirect(self, instr: Instr) -> None:
        if self.module.num_tables == 0:
            raise self._error("call_indirect requires a table")
        if instr.idx >= len(self.module.types):
            raise self._error(f"call_indirect type index {instr.idx} out of range")
        functype = self.module.types[instr.idx]
        self.pop_val(I32)
        self.pop_vals(functype.params)
        self.push_vals(functype.results)

    # parametric -----------------------------------------------------------------

    def _step_drop(self, instr: Instr) -> None:
        self.pop_val()

    def _step_select(self, instr: Instr) -> None:
        self.pop_val(I32)
        first = self.pop_val()
        second = self.pop_val()
        if isinstance(first, _Unknown):
            self.push_val(second)
        elif isinstance(second, _Unknown):
            self.push_val(first)
        elif first != second:
            raise self._error(f"select operands differ: {first} vs {second}")
        else:
            self.push_val(first)

    # variables ---------------------------------------------------------------

    def _step_get_local(self, instr: Instr) -> None:
        self.push_val(self.local_type(instr.idx))

    def _step_set_local(self, instr: Instr) -> None:
        self.pop_val(self.local_type(instr.idx))

    def _step_tee_local(self, instr: Instr) -> None:
        valtype = self.local_type(instr.idx)
        self.pop_val(valtype)
        self.push_val(valtype)

    def _step_get_global(self, instr: Instr) -> None:
        if instr.idx >= self.module.num_globals:
            raise self._error(f"global index {instr.idx} out of range")
        self.push_val(self.module.global_type(instr.idx).valtype)

    def _step_set_global(self, instr: Instr) -> None:
        if instr.idx >= self.module.num_globals:
            raise self._error(f"global index {instr.idx} out of range")
        globaltype = self.module.global_type(instr.idx)
        if not globaltype.mutable:
            raise self._error(f"set_global of immutable global {instr.idx}")
        self.pop_val(globaltype.valtype)

    # memory -----------------------------------------------------------------

    def _check_memory_exists(self, instr: Instr) -> None:
        if self.module.num_memories == 0:
            raise self._error(f"{instr.op} requires a memory")

    _NATURAL_ALIGN = {
        "8": 0, "16": 1, "32": 2,
    }

    def _check_alignment(self, instr: Instr) -> None:
        mnemonic = instr.op
        if mnemonic.endswith(("8_s", "8_u", "store8")):
            natural = 0
        elif mnemonic.endswith(("16_s", "16_u", "store16")):
            natural = 1
        elif mnemonic.endswith(("32_s", "32_u", "store32")) and mnemonic.startswith("i64"):
            natural = 2
        elif mnemonic.startswith(("i32", "f32")):
            natural = 2
        else:
            natural = 3
        if instr.memarg.align > natural:
            raise self._error(
                f"{mnemonic}: alignment 2**{instr.memarg.align} exceeds natural "
                f"alignment 2**{natural}")

    # -- finishing ----------------------------------------------------------------

    def finish(self) -> None:
        if self.ctrls:
            raise self._error(
                f"{len(self.ctrls)} unclosed block(s) at end of expression")


def validate_function(module: Module, func: Function) -> None:
    """Type check one defined function's body."""
    functype = module.types[func.type_idx]
    locals_ = list(functype.params) + list(func.locals)
    validator = ExprValidator(module, func, functype.results, locals_)
    if not func.body or func.body[-1].op != "end":
        raise ValidationError("function body must be terminated by end")
    for instr in func.body:
        validator.step(instr)
    validator.finish()


_CONST_OPS = {"i32.const", "i64.const", "f32.const", "f64.const", "get_global"}


def _validate_const_expr(module: Module, instrs: list[Instr],
                         expect: ValType, what: str) -> None:
    if len(instrs) != 1:
        raise ValidationError(f"{what} initializer must be a single constant instruction")
    instr = instrs[0]
    if instr.op not in _CONST_OPS:
        raise ValidationError(f"{what} initializer {instr.op} is not constant")
    if instr.op == "get_global":
        imported = module.imported_globals()
        if instr.idx >= len(imported):
            raise ValidationError(
                f"{what} initializer get_global must reference an imported global")
        globaltype = imported[instr.idx].desc
        if globaltype.mutable:
            raise ValidationError(f"{what} initializer global must be immutable")
        actual = globaltype.valtype
    else:
        actual = ValType.from_str(instr.op.split(".")[0])
    if actual != expect:
        raise ValidationError(f"{what} initializer has type {actual}, expected {expect}")


def _validate_limits(limits: Limits, hard_cap: int | None, what: str) -> None:
    """Range-check one ``Limits``: min ≤ max, both within the hard cap.

    Without this, a decoded module declaring a huge memory minimum would
    pass validation and only fail at instantiation — with a multi-gigabyte
    allocation attempt (or ``MemoryError``) instead of a clean
    :class:`ValidationError`.
    """
    if limits.maximum is not None and limits.minimum > limits.maximum:
        raise ValidationError(
            f"{what} limits minimum {limits.minimum} exceeds "
            f"maximum {limits.maximum}")
    if hard_cap is not None:
        if limits.minimum > hard_cap:
            raise ValidationError(
                f"{what} limits minimum {limits.minimum} exceeds "
                f"the hard cap of {hard_cap}")
        if limits.maximum is not None and limits.maximum > hard_cap:
            raise ValidationError(
                f"{what} limits maximum {limits.maximum} exceeds "
                f"the hard cap of {hard_cap}")


def validate_module(module: Module) -> None:
    """Validate a whole module (types, imports, bodies, segments, exports)."""
    for imp in module.imports:
        if isinstance(imp.desc, int) and imp.desc >= len(module.types):
            raise ValidationError(
                f"import {imp.module}.{imp.name} references type {imp.desc} "
                f"out of range")
        elif isinstance(imp.desc, MemoryType):
            _validate_limits(imp.desc.limits, MAX_PAGES,
                             f"imported memory {imp.module}.{imp.name}")
        elif isinstance(imp.desc, TableType):
            _validate_limits(imp.desc.limits, None,
                             f"imported table {imp.module}.{imp.name}")
    if module.num_tables > 1:
        raise ValidationError("at most one table is allowed in the MVP")
    if module.num_memories > 1:
        raise ValidationError("at most one memory is allowed in the MVP")
    for memtype in module.memories:
        _validate_limits(memtype.limits, MAX_PAGES, "memory")
    for tabletype in module.tables:
        _validate_limits(tabletype.limits, None, "table")
    for func in module.functions:
        if func.type_idx >= len(module.types):
            raise ValidationError(f"function references type {func.type_idx} out of range")
    for glob in module.globals:
        _validate_const_expr(module, glob.init, glob.type.valtype, "global")
    seen_exports: set[str] = set()
    limits = {
        "func": module.num_functions,
        "table": module.num_tables,
        "memory": module.num_memories,
        "global": module.num_globals,
    }
    for export in module.exports:
        if export.name in seen_exports:
            raise ValidationError(f"duplicate export name {export.name!r}")
        seen_exports.add(export.name)
        if export.idx >= limits[export.kind]:
            raise ValidationError(
                f"export {export.name!r} references {export.kind} {export.idx} "
                f"out of range")
    if module.start is not None:
        if module.start >= module.num_functions:
            raise ValidationError(f"start function {module.start} out of range")
        start_type = module.func_type(module.start)
        if start_type.params or start_type.results:
            raise ValidationError(f"start function must have type [] -> [], got {start_type}")
    for segment in module.elements:
        if module.num_tables == 0:
            raise ValidationError("element segment without a table")
        _validate_const_expr(module, segment.offset, I32, "element segment")
        for func_idx in segment.func_idxs:
            if func_idx >= module.num_functions:
                raise ValidationError(
                    f"element segment references function {func_idx} out of range")
    for segment in module.data:
        if module.num_memories == 0:
            raise ValidationError("data segment without a memory")
        _validate_const_expr(module, segment.offset, I32, "data segment")
    for func in module.functions:
        validate_function(module, func)
