"""LEB128 encoding/decoding: units and roundtrip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.wasm import leb128
from repro.wasm.errors import DecodeError


class TestUnsigned:
    def test_zero(self):
        assert leb128.encode_unsigned(0) == b"\x00"

    def test_single_byte_max(self):
        assert leb128.encode_unsigned(127) == b"\x7f"

    def test_two_bytes(self):
        assert leb128.encode_unsigned(128) == b"\x80\x01"

    def test_known_value(self):
        # canonical example from the DWARF spec
        assert leb128.encode_unsigned(624485) == b"\xe5\x8e\x26"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            leb128.encode_unsigned(-1)

    def test_decode_redundant_encoding(self):
        # non-minimal but in-range encodings are legal
        value, pos = leb128.decode_unsigned(b"\x80\x00", 0)
        assert value == 0 and pos == 2

    def test_decode_overlong_rejected(self):
        with pytest.raises(DecodeError):
            leb128.decode_unsigned(b"\x80\x80\x80\x80\x80\x01", 0, 32)

    def test_decode_out_of_range_rejected(self):
        # 2**32 needs 5 bytes with a high bit set in the last one
        with pytest.raises(DecodeError):
            leb128.decode_unsigned(b"\x80\x80\x80\x80\x10", 0, 32)

    def test_decode_truncated(self):
        with pytest.raises(DecodeError):
            leb128.decode_unsigned(b"\x80", 0)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_roundtrip_u32(self, value):
        encoded = leb128.encode_unsigned(value)
        decoded, pos = leb128.decode_unsigned(encoded, 0, 32)
        assert decoded == value and pos == len(encoded)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_roundtrip_u64(self, value):
        encoded = leb128.encode_unsigned(value)
        decoded, pos = leb128.decode_unsigned(encoded, 0, 64)
        assert decoded == value and pos == len(encoded)


class TestSigned:
    def test_zero(self):
        assert leb128.encode_signed(0) == b"\x00"

    def test_minus_one(self):
        assert leb128.encode_signed(-1) == b"\x7f"

    def test_known_value(self):
        assert leb128.encode_signed(-123456) == b"\xc0\xbb\x78"

    def test_sign_extension_boundary(self):
        # 63 fits in one byte, 64 needs two (sign bit)
        assert len(leb128.encode_signed(63)) == 1
        assert len(leb128.encode_signed(64)) == 2
        assert len(leb128.encode_signed(-64)) == 1
        assert len(leb128.encode_signed(-65)) == 2

    def test_decode_truncated(self):
        with pytest.raises(DecodeError):
            leb128.decode_signed(b"\xff", 0)

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_roundtrip_s32(self, value):
        encoded = leb128.encode_signed(value)
        decoded, pos = leb128.decode_signed(encoded, 0, 32)
        assert decoded == value and pos == len(encoded)

    @given(st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1))
    def test_roundtrip_s64(self, value):
        encoded = leb128.encode_signed(value)
        decoded, pos = leb128.decode_signed(encoded, 0, 64)
        assert decoded == value and pos == len(encoded)

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(DecodeError):
            # encodes 2**31, one past s32 max
            leb128.decode_signed(b"\x80\x80\x80\x80\x08", 0, 32)
