"""Content-addressed artifact cache for the instrumentation service.

Instrumenting a module is a pure function of (module bytes, hook-group
set, engine flags), so the service never has to run the
decode→instrument→encode pipeline twice for the same input: artifacts are
stored on disk under a key derived from exactly those three inputs
(:func:`artifact_key`) and served back on later requests — including
requests from *other* worker processes and later daemon incarnations.

Robustness rules, in order:

* **Atomic writes.** An entry is a payload file plus a metadata sidecar;
  both are written to a temp file in the target directory and
  ``os.replace``d into place, so a killed worker (the supervisor SIGKILLs
  on timeout/OOM) can never leave a half-written entry that a later read
  would trust. The sidecar is written last and is the commit point: a
  payload without its sidecar is invisible.
* **Corruption-tolerant reads.** Every payload is verified against the
  SHA-256 recorded in its sidecar on load; a mismatch (torn write,
  bit rot, a truncated file restored from a bad backup) is treated as a
  miss — the entry is evicted best-effort and the caller recomputes.
  A corrupt cache can cost time, never correctness.
* **Plain files.** No index, no lock file: the key *is* the file name
  (sharded two-level, git-object style), so concurrent readers and
  writers need no coordination beyond the atomic rename.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

#: Schema tag stamped into every entry's metadata sidecar.
CACHE_SCHEMA = "repro.serve-cache/1"


def artifact_key(module_bytes: bytes, groups=None, flags: dict | None = None) -> str:
    """The cache key: sha256(module bytes) × hook-group set × engine flags.

    ``groups`` is an iterable of hook-group names or ``None`` for "all"
    (the two are distinct keys on purpose: "all" tracks whatever
    ``ALL_GROUPS`` currently is). ``flags`` is any JSON-able dict of
    engine/pipeline knobs that change the artifact.
    """
    h = hashlib.sha256()
    h.update(hashlib.sha256(module_bytes).digest())
    h.update(b"\x00")
    if groups is None:
        h.update(b"<all>")
    else:
        h.update(",".join(sorted(groups)).encode("utf-8"))
    h.update(b"\x00")
    h.update(json.dumps(flags or {}, sort_keys=True, default=str).encode("utf-8"))
    return h.hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactCache:
    """On-disk content-addressed store of instrumented-module artifacts.

    ``load``/``store`` are safe to call concurrently from many processes;
    the worst interleaving wastes one recompute. Hit/miss/corruption
    counters are per-process (each worker folds its own into the pool's
    aggregate via the response it returns).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.directory / key[:2]
        return shard / f"{key}.bin", shard / f"{key}.json"

    def load(self, key: str) -> tuple[bytes, dict] | None:
        """Return ``(payload, meta)`` for a verified entry, else ``None``.

        Any failure mode — missing files, unparseable sidecar, payload
        digest mismatch — degrades to a miss; corrupt entries are evicted
        so they are not re-verified (and re-failed) on every request.
        """
        payload_path, meta_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text())
            payload = payload_path.read_bytes()
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (not isinstance(meta, dict)
                or meta.get("schema") != CACHE_SCHEMA
                or hashlib.sha256(payload).hexdigest() != meta.get("payload_sha256")):
            self.corrupt += 1
            self.misses += 1
            self.evict(key)
            return None
        self.hits += 1
        return payload, meta

    def store(self, key: str, payload: bytes, meta: dict | None = None) -> None:
        """Persist one artifact atomically (payload first, sidecar last)."""
        payload_path, meta_path = self._paths(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(meta or {})
        record["schema"] = CACHE_SCHEMA
        record["payload_sha256"] = hashlib.sha256(payload).hexdigest()
        _atomic_write(payload_path, payload)
        _atomic_write(meta_path, json.dumps(record, sort_keys=True).encode("utf-8"))

    def evict(self, key: str) -> None:
        """Best-effort removal of one entry (sidecar first: uncommit)."""
        payload_path, meta_path = self._paths(key)
        for path in (meta_path, payload_path):
            try:
                path.unlink()
            except OSError:
                pass

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt}
