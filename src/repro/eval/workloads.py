"""Uniform workload abstraction for the evaluation harness.

Wraps the PolyBench kernels and the synthetic real-world stand-ins behind a
single interface: a module, an entry point, arguments, and the host imports
the program needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..interp.host import Linker
from ..wasm.module import Module
from ..wasm.types import F64, FuncType
from ..workloads import engine_demo, pdf_toolkit
from ..workloads.polybench import compile_kernel, kernel_names


@dataclass
class Workload:
    """One benchmark program plus how to run it."""

    name: str
    group: str                       # 'polybench' | 'pdf_toolkit' | 'engine_demo'
    module_fn: Callable[[], Module]
    entry: str = "main"
    args: tuple = ()
    needs_print: bool = True

    def module(self) -> Module:
        return self.module_fn()

    def linker(self, sink: list | None = None) -> Linker:
        """A fresh linker with this workload's host imports.

        ``sink`` collects printed values (for output comparison); pass None
        to discard them.
        """
        linker = Linker()
        if self.needs_print:
            if sink is None:
                def printer(args):
                    return None
            else:
                def printer(args):
                    return sink.append(args[0])
            linker.define_function("env", "print_f64", FuncType((F64,), ()),
                                   printer)
        return linker


def polybench_workloads(names: Sequence[str] | None = None,
                        n: int | None = None) -> list[Workload]:
    """The PolyBench workloads (all 30 by default)."""
    selected = list(names) if names is not None else kernel_names()
    return [Workload(name=name, group="polybench",
                     module_fn=(lambda name=name: compile_kernel(name, n)))
            for name in selected]


#: A representative PolyBench subset for the (slow) runtime-overhead sweep.
POLYBENCH_FAST_SUBSET = ["gemm", "jacobi-1d", "trisolv", "durbin",
                         "floyd-warshall", "bicg"]


def realworld_workloads(engine_scale: float = 1.0,
                        pdf_scale: float = 1.0,
                        rounds: int = 3) -> list[Workload]:
    """The two real-world stand-ins (paper: PSPDFKit, Unreal Engine 4)."""
    return [
        Workload(name="pdf_toolkit", group="pdf_toolkit",
                 module_fn=lambda: pdf_toolkit(pdf_scale),
                 args=(rounds,), needs_print=False),
        Workload(name="engine_demo", group="engine_demo",
                 module_fn=lambda: engine_demo(engine_scale),
                 args=(rounds,), needs_print=False),
    ]


def default_workloads() -> list[Workload]:
    return polybench_workloads() + realworld_workloads()
