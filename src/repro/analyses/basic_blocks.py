"""Basic block profiling (paper Table 4, row 2).

A classic profiling analysis: counts how often each function, block, and
loop is entered — useful for finding "hot" code. Only needs the ``begin``
hook (9 LOC in the paper).
"""

from __future__ import annotations

from collections import Counter

from ..core.analysis import Analysis, Location


class BasicBlockProfiler(Analysis):
    """Counts entries per (location, block kind)."""

    def __init__(self):
        self.counts: Counter[tuple[Location, str]] = Counter()

    def begin(self, location, block_type):
        self.counts[(location, block_type)] += 1

    # reporting -----------------------------------------------------------------

    def hottest(self, n: int = 10) -> list[tuple[tuple[Location, str], int]]:
        return self.counts.most_common(n)

    def function_counts(self) -> Counter:
        """How often each function was entered."""
        out: Counter[int] = Counter()
        for (location, block_type), count in self.counts.items():
            if block_type == "function":
                out[location.func] += count
        return out

    def loop_iterations(self) -> Counter:
        """Iteration counts per loop header location."""
        out: Counter[Location] = Counter()
        for (location, block_type), count in self.counts.items():
            if block_type == "loop":
                out[location] += count
        return out
