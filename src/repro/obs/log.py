"""Structured JSONL logging with a bounded in-memory flight recorder.

The service layer needs a durable, greppable event stream — worker kills,
breaker trips, degradation, respawn failures — that exists even when no
:class:`~repro.obs.telemetry.Telemetry` sink is attached. This module is
that stream, in three sinks behind one call:

* **flight recorder** — every record (regardless of level) lands in a
  bounded ring buffer; :meth:`StructuredLogger.tail` returns the recent
  history, which the worker pool dumps into every ``kind: service`` crash
  bundle so each kill ships the events that led up to it;
* **file** — records at or above the threshold are appended as one JSON
  object per line (schema ``repro.log/1``), with simple size-based
  rotation (``path`` → ``path.1`` → … → ``path.N``);
* **stream** — the same records rendered as a short human-readable line.
  Pass the literal string ``"stderr"`` to resolve ``sys.stderr`` at write
  time (so pytest's capture sees it), or any object with ``write``.

The clock is injected (``time.time`` — wall time, since log timestamps are
for correlation with the outside world, unlike span timestamps).
Loggers are cheap and unsynchronized except for a single lock around the
emit path, which the daemon's thread-per-connection model requires.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Callable

LOG_SCHEMA = "repro.log/1"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}

DEFAULT_FLIGHT_CAPACITY = 256


def _level_no(level: str | int) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(f"unknown log level {level!r} "
                         f"(expected one of {sorted(LEVELS)})") from None


class FlightRecorder:
    """A bounded ring buffer of recent log records (dicts).

    Capacity-bounded and allocation-light (one ``deque`` append per
    record); shared between loggers so the daemon and its pool contribute
    to one history.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self._entries: deque[dict] = deque(maxlen=max(1, capacity))

    def record(self, entry: dict) -> None:
        self._entries.append(entry)

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` records (all of them when ``n`` is None)."""
        entries = list(self._entries)
        if n is not None and n >= 0:
            entries = entries[len(entries) - min(n, len(entries)):]
        return entries

    def __len__(self) -> int:
        return len(self._entries)


class StructuredLogger:
    """Leveled JSONL logger backed by a flight recorder.

    Every record is a flat dict: ``{"ts", "level", "logger", "event",
    **fields}``. ``event`` is a stable machine-matchable name (e.g.
    ``serve_worker_killed``); free-form prose goes in a ``msg`` field.
    """

    def __init__(self, name: str = "repro", *,
                 level: str | int = "info",
                 path: str | os.PathLike | None = None,
                 max_bytes: int = 4 * 1024 * 1024,
                 backups: int = 2,
                 stream: object | None = None,
                 recorder: FlightRecorder | None = None,
                 clock: Callable[[], float] = time.time):
        self.name = name
        self.level = _level_no(level)
        self.path = os.fspath(path) if path is not None else None
        self.max_bytes = max_bytes
        self.backups = backups
        self.stream = stream
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.clock = clock
        self._lock = threading.Lock()
        self._file: io.TextIOWrapper | None = None

    # -- emit path -------------------------------------------------------

    def log(self, level: str | int, event: str, **fields) -> dict:
        """Record one event; returns the record dict."""
        level_no = _level_no(level)
        record = {"ts": self.clock(),
                  "level": _LEVEL_NAMES.get(level_no, str(level_no)),
                  "logger": self.name, "event": event}
        record.update(fields)
        with self._lock:
            self.recorder.record(record)
            if level_no >= self.level:
                if self.path is not None:
                    self._write_file(record)
                if self.stream is not None:
                    self._write_stream(record)
        return record

    def debug(self, event: str, **fields) -> dict:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> dict:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> dict:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> dict:
        return self.log("error", event, **fields)

    def tail(self, n: int | None = None) -> list[dict]:
        """Recent records from the flight recorder (see that class)."""
        return self.recorder.tail(n)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- sinks -----------------------------------------------------------

    def _write_file(self, record: dict) -> None:
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, default=str)
        # rotate *before* a write that would overflow, so the active path
        # always exists and always holds the newest records
        if (self.max_bytes and self._file.tell()
                and self._file.tell() + len(line) + 1 > self.max_bytes):
            self._rotate()
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(line + "\n")
        self._file.flush()

    def _rotate(self) -> None:
        self._file.close()
        self._file = None
        for i in range(self.backups, 0, -1):
            older = f"{self.path}.{i}"
            newer = f"{self.path}.{i - 1}" if i > 1 else self.path
            if os.path.exists(newer):
                os.replace(newer, older)

    def _write_stream(self, record: dict) -> None:
        stream = sys.stderr if self.stream == "stderr" else self.stream
        extras = " ".join(f"{k}={_render_field(v)}" for k, v in record.items()
                          if k not in ("ts", "level", "logger", "event", "msg"))
        msg = record.get("msg")
        parts = [f"repro[{record['level']}]", f"{record['logger']}:",
                 str(record["event"])]
        if msg:
            parts.append(f"— {msg}")
        if extras:
            parts.append(extras)
        try:
            stream.write(" ".join(parts) + "\n")
            if hasattr(stream, "flush"):
                stream.flush()
        except (ValueError, OSError):  # closed stream: logging never raises
            pass


def _render_field(value: object) -> str:
    if isinstance(value, str):
        return value if value and " " not in value else json.dumps(value)
    return json.dumps(value, default=str)


# -- flight-log (de)serialization ---------------------------------------------


def flight_to_jsonl(entries: list[dict]) -> str:
    """Render flight-recorder records for a crash bundle: a schema header
    line followed by one record per line."""
    lines = [json.dumps({"schema": LOG_SCHEMA, "entries": len(entries)},
                        sort_keys=True)]
    lines.extend(json.dumps(entry, sort_keys=True, default=str)
                 for entry in entries)
    return "\n".join(lines) + "\n"


def flight_from_jsonl(text: str) -> list[dict]:
    """Inverse of :func:`flight_to_jsonl`; raises ``ValueError`` on a
    malformed or wrong-schema payload (callers map this to WasmError)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty flight log")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != LOG_SCHEMA:
        raise ValueError(f"flight log schema mismatch: {header!r}")
    entries = []
    for line in lines[1:]:
        entry = json.loads(line)
        if not isinstance(entry, dict):
            raise ValueError(f"flight log entry is not an object: {entry!r}")
        entries.append(entry)
    return entries


# -- named default loggers ----------------------------------------------------

_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str = "repro") -> StructuredLogger:
    """Process-wide default logger for ``name``: warnings and errors echo
    to ``sys.stderr`` (resolved at write time), everything lands in its
    flight recorder. Library code uses this when no logger is injected, so
    a bare daemon still records its own kills."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name, level="warning", stream="stderr")
            _loggers[name] = logger
        return logger
