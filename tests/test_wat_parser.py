"""The WAT text-format parser (linear style)."""

import pytest

from repro.interp import Linker, Machine
from repro.wasm import validate_module
from repro.wasm.types import F64, FuncType
from repro.wasm.wat import WatError, parse_wat


def run(text, entry, args=(), linker=None):
    module = parse_wat(text)
    validate_module(module)
    return Machine().instantiate(module, linker).invoke(entry, args)


class TestBasics:
    def test_add(self):
        assert run("""
            (module
              (func $add (export "add") (param $a i32) (param $b i32)
                         (result i32)
                get_local $a
                get_local $b
                i32.add))
        """, "add", (2, 3)) == [5]

    def test_current_spec_mnemonics_accepted(self):
        assert run("""
            (module
              (func (export "f") (param i32) (result i32)
                local.get 0
                i32.const 1
                i32.add))
        """, "f", (9,)) == [10]

    def test_module_name_and_comments(self):
        module = parse_wat("""
            (module $demo
              ;; a line comment
              (; a block comment ;)
              (func (export "f") (result i32) i32.const 7))
        """)
        assert module.name == "demo"
        assert Machine().instantiate(module).invoke("f") == [7]

    def test_numeric_indices(self):
        assert run("""
            (module
              (func $h (param i32) (result i32) get_local 0)
              (func (export "f") (result i32)
                i32.const 5
                call 0))
        """, "f") == [5]


class TestControlFlow:
    def test_blocks_and_named_labels(self):
        assert run("""
            (module
              (func (export "f") (param i32) (result i32)
                (local $r i32)
                block $exit
                  loop $top
                    get_local 0
                    i32.eqz
                    br_if $exit
                    get_local $r
                    get_local 0
                    i32.add
                    set_local $r
                    get_local 0
                    i32.const 1
                    i32.sub
                    set_local 0
                    br $top
                  end
                end
                get_local $r))
        """, "f", (4,)) == [10]

    def test_if_else_with_result(self):
        assert run("""
            (module
              (func (export "f") (param i32) (result i32)
                get_local 0
                if (result i32)
                  i32.const 1
                else
                  i32.const 2
                end))
        """, "f", (0,)) == [2]

    def test_br_table(self):
        text = """
            (module
              (func (export "f") (param i32) (result i32)
                block $b2
                  block $b1
                    block $b0
                      get_local 0
                      br_table $b0 $b1 $b2
                    end
                    i32.const 10
                    return
                  end
                  i32.const 20
                  return
                end
                i32.const 30))
        """
        assert run(text, "f", (0,)) == [10]
        assert run(text, "f", (1,)) == [20]
        assert run(text, "f", (2,)) == [30]


class TestModuleFields:
    def test_memory_data_and_memarg(self):
        assert run("""
            (module
              (memory 1 2)
              (data (i32.const 8) "\\2a\\00\\00\\00")
              (func (export "f") (result i32)
                i32.const 0
                i32.load offset=8))
        """, "f") == [42]

    def test_globals(self):
        module = parse_wat("""
            (module
              (global $g (mut i32) (i32.const 10))
              (func (export "bump") (result i32)
                get_global $g
                i32.const 1
                i32.add
                set_global $g
                get_global $g))
        """)
        validate_module(module)
        instance = Machine().instantiate(module)
        assert instance.invoke("bump") == [11]
        assert instance.invoke("bump") == [12]

    def test_table_elem_call_indirect(self):
        assert run("""
            (module
              (table 2 funcref)
              (func $double (param i32) (result i32)
                get_local 0 i32.const 2 i32.mul)
              (func $negate (param i32) (result i32)
                i32.const 0 get_local 0 i32.sub)
              (elem (i32.const 0) $double $negate)
              (func (export "f") (param i32) (param i32) (result i32)
                get_local 1
                get_local 0
                call_indirect (param i32) (result i32)))
        """, "f", (0, 21)) == [42]

    def test_imports(self):
        text = """
            (module
              (import "env" "print" (func $print (param f64)))
              (func (export "f")
                f64.const 2.5
                call $print))
        """
        printed = []
        linker = Linker().define_function("env", "print",
                                          FuncType((F64,), ()),
                                          lambda args: printed.append(args[0]))
        run(text, "f", linker=linker)
        assert printed == [2.5]

    def test_start_and_separate_export(self):
        module = parse_wat("""
            (module
              (global $g (mut i32) (i32.const 0))
              (func $init i32.const 9 set_global $g)
              (func $get (result i32) get_global $g)
              (export "get" (func $get))
              (start $init))
        """)
        validate_module(module)
        assert Machine().instantiate(module).invoke("get") == [9]


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(WatError, match="unknown instruction"):
            parse_wat('(module (func (export "f") i32.frobnicate))')

    def test_unknown_label(self):
        with pytest.raises(WatError, match="unknown label"):
            parse_wat('(module (func br $nowhere))')

    def test_folded_rejected(self):
        with pytest.raises(WatError, match="folded"):
            parse_wat('(module (func (result i32) (i32.add (i32.const 1) (i32.const 2))))')

    def test_duplicate_names(self):
        with pytest.raises(WatError, match="duplicate"):
            parse_wat("(module (func $f) (func $f))")


class TestIntegrationWithWasabi:
    def test_wat_module_instrumented(self):
        from repro import Analysis, analyze

        module = parse_wat("""
            (module
              (func (export "f") (param i64) (result i64)
                get_local 0
                i64.const 3
                i64.mul))
        """)
        seen = []

        class Watch(Analysis):
            def binary(self, loc, op, a, b, r):
                seen.append((op, a, b, r))

        analyze(module, Watch(), entry="f", args=(1 << 40,))
        assert seen == [("i64.mul", 1 << 40, 3, 3 << 40)]
