"""The MiniC compiler: lexer, parser, type checker, and codegen semantics."""

import pytest

from repro.interp import Machine
from repro.minic import (LexError, ParseError, TypeError_, compile_source,
                         parse, tokenize)
from repro.wasm import validate_module


def run(source, entry="f", args=(), linker=None):
    module = compile_source(source)
    validate_module(module)
    instance = Machine().instantiate(module, linker)
    return instance.invoke(entry, args)


class TestLexer:
    def test_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("var x: i32 = 10;")]
        assert kinds == [("keyword", "var"), ("ident", "x"), ("op", ":"),
                         ("ident", "i32"), ("op", "="), ("int", "10"),
                         ("op", ";"), ("eof", "")]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3L 0x1F 1.5f 1e3")
        assert [t.value for t in tokens[:-1]] == [1, 2.5, 3, 31, 1.5, 1000.0]

    def test_comments_skipped(self):
        tokens = tokenize("1 // line\n /* block\n */ 2")
        assert [t.value for t in tokens[:-1]] == [1, 2]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestParser:
    def test_operator_precedence(self):
        assert run("export func f() -> i32 { return 2 + 3 * 4; }") == [14]
        assert run("export func f() -> i32 { return (2 + 3) * 4; }") == [20]

    def test_associativity(self):
        assert run("export func f() -> i32 { return 10 - 3 - 2; }") == [5]

    def test_comparison_chains_via_logic(self):
        assert run("export func f(x: i32) -> i32 { return x > 1 && x < 5; }",
                   args=(3,)) == [1]

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func f() { return 1 }")

    def test_else_if_chain(self):
        src = """
        export func f(x: i32) -> i32 {
            if (x == 0) { return 10; }
            else if (x == 1) { return 20; }
            else { return 30; }
        }
        """
        assert run(src, args=(0,)) == [10]
        assert run(src, args=(1,)) == [20]
        assert run(src, args=(9,)) == [30]


class TestTypeChecker:
    def test_undefined_variable(self):
        with pytest.raises(TypeError_, match="undefined name"):
            compile_source("export func f() -> i32 { return y; }")

    def test_type_mismatch(self):
        with pytest.raises(TypeError_, match="mismatch"):
            compile_source(
                "export func f(x: f64) -> i32 { return x; }")

    def test_explicit_cast_required_and_works(self):
        assert run("export func f(x: f64) -> i32 { return i32(x); }",
                   args=(3.7,)) == [3]

    def test_literal_contextual_typing(self):
        assert run("export func f() -> f64 { return 1 + 0.5; }") == [1.5]
        assert run("export func f() -> i64 { return 5; }") == [5]

    def test_modulo_requires_ints(self):
        with pytest.raises(TypeError_):
            compile_source("export func f(x: f64) -> f64 { return x % 2.0; }")

    def test_wrong_arg_count(self):
        with pytest.raises(TypeError_, match="arguments"):
            compile_source("""
                func g(a: i32) -> i32 { return a; }
                export func f() -> i32 { return g(1, 2); }
            """)

    def test_missing_return_detected(self):
        with pytest.raises(TypeError_, match="fall off"):
            compile_source("""
                export func f(x: i32) -> i32 {
                    if (x > 0) { return 1; }
                }
            """)

    def test_block_scoping(self):
        with pytest.raises(TypeError_, match="undefined"):
            compile_source("""
                export func f() -> i32 {
                    if (1) { var y: i32 = 1; }
                    return y;
                }
            """)

    def test_shadowing_in_nested_scope(self):
        assert run("""
            export func f() -> i32 {
                var x: i32 = 1;
                { var x: i32 = 2; }
                return x;
            }
        """) == [1]

    def test_duplicate_function(self):
        with pytest.raises(TypeError_, match="duplicate"):
            compile_source("func f() {} func f() {}")

    def test_condition_must_be_i32(self):
        with pytest.raises(TypeError_):
            compile_source("export func f(x: f64) -> i32 { if (x) { return 1; } return 0; }")


class TestCodegenSemantics:
    def test_signed_division(self):
        assert run("export func f(a: i32, b: i32) -> i32 { return a / b; }",
                   args=(-7, 2)) == [0xFFFFFFFD]  # -3

    def test_unsigned_builtins(self):
        assert run("export func f(a: i32, b: i32) -> i32 { return div_u(a, b); }",
                   args=(-1, 2)) == [0x7FFFFFFF]
        assert run("export func f(a: i32, b: i32) -> i32 { return lt_u(a, b); }",
                   args=(-1, 0)) == [0]

    def test_short_circuit_and(self):
        # the right operand would trap if evaluated
        assert run("""
            export func f(x: i32) -> i32 {
                return x != 0 && 10 / x > 1;
            }
        """, args=(0,)) == [0]

    def test_short_circuit_or(self):
        assert run("""
            export func f(x: i32) -> i32 {
                return x == 0 || 10 / x > 100;
            }
        """, args=(0,)) == [1]

    def test_unary_operators(self):
        assert run("export func f(x: i32) -> i32 { return -x; }", args=(5,)) \
            == [0xFFFFFFFB]
        assert run("export func f(x: i32) -> i32 { return !x; }", args=(5,)) == [0]
        assert run("export func f(x: i32) -> i32 { return ~x; }", args=(0,)) \
            == [0xFFFFFFFF]
        assert run("export func f(x: f64) -> f64 { return -x; }", args=(2.5,)) \
            == [-2.5]

    def test_for_loop_with_continue_runs_step(self):
        assert run("""
            export func f() -> i32 {
                var s: i32 = 0;
                var i: i32;
                for (i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        """) == [25]

    def test_nested_loops_break_inner_only(self):
        assert run("""
            export func f() -> i32 {
                var n: i32 = 0;
                var i: i32;
                for (i = 0; i < 3; i = i + 1) {
                    var j: i32;
                    for (j = 0; j < 10; j = j + 1) {
                        if (j == 2) { break; }
                        n = n + 1;
                    }
                }
                return n;
            }
        """) == [6]

    def test_memory_views(self):
        assert run("""
            memory 1;
            export func f() -> i32 {
                mem_i32[10] = 0 - 1;
                mem_u8[100] = 300;     // truncated to 44
                mem_u16[60] = 70000;   // truncated to 4464
                return mem_i32[10] + mem_u8[100] + mem_u16[60];
            }
        """) == [(-1 + (300 & 0xFF) + (70000 & 0xFFFF)) & 0xFFFFFFFF]

    def test_i64_arithmetic(self):
        assert run("""
            export func f(x: i64) -> i64 {
                return (x << 3L) + 1L;
            }
        """, args=(1 << 40,)) == [(1 << 43) + 1]

    def test_f32_precision(self):
        import struct
        expected = struct.unpack("<f", struct.pack("<f", 0.1))[0] * 2
        result = run("export func f(x: f32) -> f64 { return f64(x + x); }",
                     args=(0.1,))
        assert result == [struct.unpack("<f", struct.pack("<f", expected))[0]]

    def test_select_builtin(self):
        assert run("export func f(c: i32) -> f64 { return select(c, 1.5, 2.5); }",
                   args=(1,)) == [1.5]

    def test_float_builtins(self):
        assert run("export func f(x: f64) -> f64 { return max(floor(x), 1.0); }",
                   args=(2.7,)) == [2.0]
        assert run("export func f(x: f64) -> f64 { return copysign(3.0, x); }",
                   args=(-1.0,)) == [-3.0]

    def test_int_builtins(self):
        assert run("export func f(x: i32) -> i32 { return popcnt(x); }",
                   args=(0xFF,)) == [8]
        assert run("export func f(x: i64) -> i64 { return clz(x); }",
                   args=(1,)) == [63]

    def test_globals_and_exported_global(self):
        module = compile_source("""
            export global counter: i32 = 5;
            export func bump() -> i32 { counter = counter + 2; return counter; }
        """)
        instance = Machine().instantiate(module)
        assert instance.invoke("bump") == [7]
        assert instance.exported_global("counter").value == 7

    def test_indirect_calls(self):
        assert run("""
            type unop = func(i32) -> i32;
            func double(x: i32) -> i32 { return x * 2; }
            func square(x: i32) -> i32 { return x * x; }
            table [double, square];
            export func f(which: i32, x: i32) -> i32 {
                return call_indirect[unop](which, x);
            }
        """, args=(1, 5)) == [25]

    def test_imports(self, print_linker):
        result = run("""
            import func print_i32(x: i32);
            export func f() -> i32 { print_i32(11); return 1; }
        """, linker=print_linker)
        assert result == [1]
        assert print_linker.printed == [11]

    def test_expression_statement_drops_value(self):
        # a bare call result is dropped (exercises the drop instruction)
        module = compile_source("""
            func g() -> i32 { return 9; }
            export func f() -> i32 { g(); return 1; }
        """)
        ops = [instr.op for instr in module.functions[1].body]
        assert "drop" in ops
