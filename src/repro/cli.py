"""Command-line interface, mirroring the Wasabi tool's workflow.

The original Wasabi ships a CLI that takes a ``.wasm`` file and produces an
instrumented binary plus generated hook/metadata files. This module offers
the equivalent, plus the usual binary-toolkit conveniences:

  python -m repro instrument app.wasm -o app.instr.wasm --hooks call,return
  python -m repro validate app.wasm
  python -m repro objdump app.wasm            # WAT-style disassembly
  python -m repro compile kernel.mc -o kernel.wasm
  python -m repro run app.wasm main 1 2 --analysis mix
  python -m repro run app.wasm main --fuel 1000000 --timeout 5
  python -m repro run app.wasm main -v --metrics-out m.json --trace-out t.json
  python -m repro run app.wasm main --profile --metrics-out m.json
  python -m repro report m.json               # render a metrics artifact
  python -m repro pgo -o prof.json --fusion-out fusion.json
                                              # record + derive PGO table
  python -m repro run app.wasm main --pgo-profile fusion.json
  python -m repro stats app.wasm              # sizes, sections, instr mix
  python -m repro fuzz --mutants 5000         # fault-injection campaign
  python -m repro fuzz --save-failures DIR --reduce   # bundle + shrink escapes
  python -m repro fuzz --parallel 4 --coverage --corpus-dir corpus/
                                              # sharded, coverage-guided
  python -m repro run app.wasm main 1 2 --record bundle/    # record a run
  python -m repro run app.wasm main --crash-dir crashes/    # bundle on failure
  python -m repro bundle crashes/run         # inspect/verify a crash bundle
  python -m repro replay crashes/run         # reproduce it from the bundle

Service mode (the supervised instrumentation daemon, see repro.serve):

  python -m repro serve --socket /tmp/repro.sock --workers 4 \
      --cache-dir cache/ --crash-dir crashes/
  python -m repro run app.wasm main 1 2 --serve /tmp/repro.sock
  python -m repro instrument app.wasm --serve /tmp/repro.sock
  python -m repro fuzz --parallel 4 --supervise   # crash-isolated shards

Exit codes form a stable failure taxonomy (pinned by tests/test_cli.py):
0 success; 1 other failure (fuzz escapes, unresolved imports, …); 2 usage
error; 3 trap (unreachable, out-of-bounds, call-stack exhaustion); 4
resource exhaustion (fuel/deadline/memory budget); 5 malformed or invalid
module (decode/validate/encode); 6 analysis fault (a hook raised under the
``raise``/``abort`` policy); 7 replay divergence (a replayed run deviated
from its recorded log); 8 worker killed (the service supervisor SIGKILLed
the request: hard timeout, RSS ceiling, or worker crash); 9 breaker open
(the input is quarantined after repeatedly killing workers).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, replace
from pathlib import Path

from .analyses import (BasicBlockProfiler, BranchCoverage, CallGraphAnalysis,
                       CryptominerDetector, InstructionCoverage,
                       InstructionMixAnalysis, MemoryTracer)
from .core import (ALL_GROUPS, ERROR_POLICIES, Analysis, AnalysisSession,
                   instrument_module)
from .interp import (Linker, Machine, Recorder, ResourceLimits,
                     load_crash_bundle, replay_linker, snapshot_instance,
                     write_crash_bundle)
from .interp.snapshot import decode_values, encode_values
from .minic import compile_source
from .obs import Telemetry, maybe_span, render_report
from .wasm import (AnalysisError, BreakerOpen, DecodeError, EncodeError,
                   ReplayDivergence, ResourceExhausted, ServiceError,
                   ServiceUnavailable,
                   SnapshotError, Trap, ValidationError, WasmError,
                   WorkerKilled, decode_module, encode_module, format_module,
                   validate_module)
from .wasm.types import F64, I32, FuncType

# -- exit-status taxonomy (documented in README, pinned by tests/test_cli.py) --

EXIT_OK = 0
#: Generic failure: any WasmError outside the specific classes below.
EXIT_FAILURE = 1
EXIT_USAGE = 2
#: The guest trapped (unreachable, OOB access, stack exhaustion, …).
EXIT_TRAP = 3
#: A run aborted by a ResourceLimits bound (fuel/deadline/memory).
EXIT_RESOURCE_EXHAUSTED = 4
#: The module is malformed or invalid (decode/validate/encode stage).
EXIT_MALFORMED = 5
#: An analysis hook raised under the ``raise``/``abort`` policy.
EXIT_ANALYSIS_FAULT = 6
#: A replayed run diverged from its recorded log.
EXIT_REPLAY_DIVERGENCE = 7
#: The service supervisor killed the request (hard timeout/OOM/crash).
EXIT_WORKER_KILLED = 8
#: The service circuit breaker quarantined this input.
EXIT_BREAKER_OPEN = 9


def exit_status(exc: BaseException) -> int:
    """Map an error to its exit status.

    Order matters: :class:`ReplayDivergence` beats everything (a divergent
    replay may surface any error class); :class:`AnalysisError` is checked
    before :class:`Trap` because :class:`AnalysisAbort` subclasses both
    and the *cause* is the analysis; :class:`ResourceExhausted` is a Trap
    subclass and keeps its own status. The service statuses are disjoint
    from the rest (:class:`ServiceError` subclasses only ``WasmError``);
    :class:`~repro.wasm.ServiceUnavailable` stays a generic failure.
    """
    if isinstance(exc, BreakerOpen):
        return EXIT_BREAKER_OPEN
    if isinstance(exc, WorkerKilled):
        return EXIT_WORKER_KILLED
    if isinstance(exc, ReplayDivergence):
        return EXIT_REPLAY_DIVERGENCE
    if isinstance(exc, AnalysisError):
        return EXIT_ANALYSIS_FAULT
    if isinstance(exc, ResourceExhausted):
        return EXIT_RESOURCE_EXHAUSTED
    if isinstance(exc, Trap):
        return EXIT_TRAP
    if isinstance(exc, (DecodeError, ValidationError, EncodeError)):
        return EXIT_MALFORMED
    return EXIT_FAILURE

ANALYSES = {
    "mix": InstructionMixAnalysis,
    "blocks": BasicBlockProfiler,
    "coverage": InstructionCoverage,
    "branches": BranchCoverage,
    "callgraph": CallGraphAnalysis,
    "cryptominer": CryptominerDetector,
    "memtrace": MemoryTracer,
    "none": Analysis,
}


def _load(path: str):
    return decode_module(Path(path).read_bytes())


def _default_linker(printed: list | None = None) -> Linker:
    """Host imports that MiniC-compiled programs conventionally use."""
    sink = printed if printed is not None else []
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: sink.append(args[0]))
    linker.define_function("env", "print_i32", FuncType((I32,), ()),
                           lambda args: sink.append(args[0]))
    return linker


def _telemetry_from_args(args: argparse.Namespace) -> Telemetry | None:
    """Build the run's telemetry sink when any telemetry flag is set."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)
            or getattr(args, "profile", False)):
        return None
    return Telemetry(profile=bool(getattr(args, "profile", False)))


def _write_artifacts(telemetry: Telemetry | None, args: argparse.Namespace,
                     usage=None) -> None:
    """Write the --metrics-out / --trace-out artifacts, reporting on stderr."""
    if telemetry is None:
        return
    if args.metrics_out:
        path = telemetry.write_metrics(args.metrics_out, usage)
        print(f"repro: metrics written to {path}", file=sys.stderr)
    if args.trace_out:
        path = telemetry.write_trace(args.trace_out)
        print(f"repro: trace written to {path}", file=sys.stderr)


def cmd_instrument(args: argparse.Namespace) -> int:
    if getattr(args, "serve", None):
        return _instrument_via_service(args)
    telemetry = _telemetry_from_args(args)
    with maybe_span(telemetry, "decode", path=args.input):
        module = _load(args.input)
    groups = None
    if args.hooks != "all":
        groups = frozenset(args.hooks.split(","))
        unknown = groups - ALL_GROUPS
        if unknown:
            print(f"unknown hooks: {', '.join(sorted(unknown))}; "
                  f"available: {', '.join(sorted(ALL_GROUPS))}", file=sys.stderr)
            return 2
    with maybe_span(telemetry, "instrument"):
        result = instrument_module(module, groups=groups)
    with maybe_span(telemetry, "encode"):
        raw = encode_module(result.module)
    output = args.output or (Path(args.input).stem + ".instrumented.wasm")
    Path(output).write_bytes(raw)
    original_size = Path(args.input).stat().st_size
    print(f"instrumented {args.input} -> {output}")
    print(f"  hooks generated: {result.hook_count}")
    print(f"  size: {original_size} -> {len(raw)} bytes "
          f"({100 * (len(raw) - original_size) / original_size:+.1f}%)")
    if args.metadata:
        meta = {
            "hooks": [{"name": spec.name, "kind": spec.kind,
                       "params": [t.value for t in spec.wasm_params]}
                      for spec in result.info.hooks],
            "functions": [{"idx": f.idx, "name": f.name,
                           "type": str(f.type), "imported": f.imported}
                          for f in result.info.module_info.functions],
        }
        Path(args.metadata).write_text(json.dumps(meta, indent=2))
        print(f"  metadata: {args.metadata}")
    _write_artifacts(telemetry, args)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        validate_module(_load(args.input))
    except WasmError as exc:
        print(f"{args.input}: INVALID: {exc}", file=sys.stderr)
        return exit_status(exc)  # EXIT_MALFORMED for decode/validate errors
    except OSError as exc:
        print(f"{args.input}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    print(f"{args.input}: ok")
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    print(format_module(_load(args.input)))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile MiniC (``.mc``) or WAT text (``.wat``) to a binary."""
    source = Path(args.input).read_text()
    if args.input.endswith(".wat") or source.lstrip().startswith("(module"):
        from .wasm import parse_wat
        module = parse_wat(source)
    else:
        module = compile_source(source, Path(args.input).stem)
    validate_module(module)
    output = args.output or (Path(args.input).stem + ".wasm")
    raw = encode_module(module)
    Path(output).write_bytes(raw)
    print(f"compiled {args.input} -> {output} ({len(raw)} bytes, "
          f"{module.instruction_count()} instructions)")
    return 0


def _limits_from_args(args: argparse.Namespace) -> ResourceLimits | None:
    limits = None
    wasi_bounds = {
        "max_open_fds": getattr(args, "max_open_fds", None),
        "max_file_bytes": getattr(args, "max_file_bytes", None),
        "max_fs_bytes": getattr(args, "max_fs_bytes", None),
        "max_syscalls": getattr(args, "max_syscalls", None),
    }
    if not (args.fuel is None and args.timeout is None
            and args.max_memory_pages is None
            and all(v is None for v in wasi_bounds.values())):
        limits = ResourceLimits(fuel=args.fuel, deadline_seconds=args.timeout,
                                max_memory_pages=args.max_memory_pages,
                                **wasi_bounds)
    if getattr(args, "verbose", False):
        # -v reports resource usage, which requires the meter even when no
        # bound is set; observe=True meters without bounding anything
        limits = (replace(limits, observe=True) if limits is not None
                  else ResourceLimits(observe=True))
    return limits


def _wasi_from_args(args: argparse.Namespace, module, limits, telemetry,
                    recorder):
    """Build the WASI host context for ``repro run``, or ``None``.

    Auto-enabled when the module imports from ``wasi_snapshot_preview1``;
    ``--wasi`` forces it on (e.g. a module that only *might* call in).
    Guest argv is the module path plus the entry arguments, so WASI
    programs observe the same invocation the CLI performed.
    """
    from .wasi import FaultPlane, WasiContext, module_imports_wasi
    if not getattr(args, "wasi", False) and not module_imports_wasi(module):
        return None
    stdin = b""
    if args.stdin_file is not None:
        stdin = Path(args.stdin_file).read_bytes()
    files: dict[str, bytes] = {}
    if args.fs_dir is not None:
        root = Path(args.fs_dir)
        if not root.is_dir():
            raise OSError(f"--fs-dir {root} is not a directory")
        files = {entry.name: entry.read_bytes()
                 for entry in sorted(root.iterdir()) if entry.is_file()}
    faults = None
    if args.wasi_fault_seed is not None:
        faults = FaultPlane(seed=args.wasi_fault_seed,
                            rate=args.wasi_fault_rate,
                            escalate_rate=args.wasi_escalate_rate)
    return WasiContext(args=[args.input, *args.args], stdin=stdin,
                       files=files, faults=faults, limits=limits,
                       telemetry=telemetry, replay=recorder)


def _normalize_proc_exit(error):
    """``proc_exit(0)`` is a clean guest exit, not a failure."""
    from .wasm.errors import ProcExit
    if isinstance(error, ProcExit) and error.code == 0:
        return None
    return error


def _emit_wasi_streams(wasi) -> None:
    """Write the guest's captured stdout/stderr to the real streams."""
    out = wasi.stdout_bytes()
    if out:
        sys.stdout.buffer.write(out)
        sys.stdout.buffer.flush()
    err = wasi.stderr_bytes()
    if err:
        sys.stderr.buffer.write(err)
        sys.stderr.buffer.flush()


def cmd_run(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    if telemetry is not None and getattr(args, "serve", None):
        # service route: open the trace now so the local decode span joins
        # the same stitched client->daemon->worker tree
        telemetry.tracer.process = "client"
        telemetry.tracer.ensure_trace()
    try:
        with maybe_span(telemetry, "decode", path=args.input):
            module = _load(args.input)
    except WasmError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_status(exc)
    call_args = [float(a) if "." in a else int(a) for a in args.args]
    limits = _limits_from_args(args)
    if getattr(args, "serve", None):
        try:
            wasi = _wasi_from_args(args, module, None, None, None)
        except OSError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_FAILURE
        return _run_via_service(args, call_args, limits, telemetry,
                                wasi_cfg=wasi.config() if wasi else None)
    printed: list = []
    linker = _default_linker(printed)
    recorder = Recorder() if (args.record or args.crash_dir) else None
    try:
        wasi = _wasi_from_args(args, module, limits, telemetry, recorder)
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    if wasi is not None:
        wasi.register(linker)
    if args.pgo_profile is not None:
        # load eagerly for a clean diagnostic (Machine would also resolve a
        # path, but a typo'd path should not read as an engine error)
        from .interp.pgo import load_profile
        try:
            args.pgo_profile = load_profile(args.pgo_profile)
        except (OSError, json.JSONDecodeError, WasmError) as exc:
            print(f"repro: cannot load PGO profile: {exc}", file=sys.stderr)
            return EXIT_FAILURE
    return _run(args, module, call_args, printed, linker, limits, telemetry,
                recorder, wasi=wasi)


def _run_via_service(args: argparse.Namespace, call_args,
                     limits: ResourceLimits | None,
                     telemetry: Telemetry | None = None,
                     wasi_cfg: dict | None = None) -> int:
    """Route ``repro run --serve SOCKET`` through the service daemon.

    With ``--trace-out``, the client's telemetry sink rides along: the
    request carries a trace context, the daemon and worker continue it,
    and the exported artifact is the stitched cross-process trace.
    """
    from .serve import ServeClient
    if args.record or args.crash_dir or args.pgo_profile:
        print("repro: --record/--crash-dir/--pgo-profile cannot combine with "
              "--serve (the daemon owns bundling and engine flags)",
              file=sys.stderr)
        return EXIT_USAGE
    client = ServeClient(args.serve, telemetry=telemetry)
    try:
        response = client.run(
            Path(args.input).read_bytes(), args.entry, call_args,
            analysis=args.analysis, instrument=bool(args.instrument),
            limits=asdict(limits) if limits is not None else None,
            on_analysis_error=args.on_analysis_error,
            request_timeout=args.serve_timeout, wasi=wasi_cfg)
    except (BreakerOpen, WorkerKilled) as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_status(exc)
    except ServiceUnavailable as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    status = _render_service_run(args, call_args, response)
    _write_artifacts(telemetry, args)
    return status


def _render_service_run(args: argparse.Namespace, call_args,
                        response: dict) -> int:
    """Print a service run's response exactly like a local ``repro run``."""
    if response.get("stdout"):
        sys.stdout.buffer.write(response["stdout"])
        sys.stdout.buffer.flush()
    if response.get("stderr"):
        sys.stderr.buffer.write(response["stderr"])
        sys.stderr.buffer.flush()
    if not response.get("ok"):
        error = response.get("error", {})
        detail = f"{error.get('type')}: {error.get('message')}"
        if error.get("kill_class"):
            detail += f" [killed: {error['kill_class']}]"
        print(f"repro: {detail}", file=sys.stderr)
        if response.get("bundle"):
            print(f"repro: crash bundle written to {response['bundle']}",
                  file=sys.stderr)
        return int(response.get("status", EXIT_FAILURE))
    if response.get("analysis_report"):
        print(response["analysis_report"], end="")
    for value in decode_values(response.get("printed", [])):
        print(f"[print] {value}")
    results = decode_values(response.get("results", []))
    print(f"{args.entry}({', '.join(map(str, call_args))}) = {results}")
    if args.verbose:
        usage = response.get("usage", {})
        summary = " ".join(f"{key}={value}"
                           for key, value in sorted(usage.items())
                           if value is not None)
        origin = ("warm instance" if response.get("warm")
                  else "cold instance")
        if not response.get("supervised", True):
            origin += ", UNSUPERVISED (service degraded)"
        print(f"repro: served by pid {response.get('pid')} ({origin})",
              file=sys.stderr)
        if summary:
            print(f"repro: {summary}", file=sys.stderr)
        if response.get("wasi_usage"):
            wasi_summary = " ".join(
                f"{key}={value}"
                for key, value in sorted(response["wasi_usage"].items()))
            print(f"repro: wasi {wasi_summary}", file=sys.stderr)
    return EXIT_OK


def _instrument_via_service(args: argparse.Namespace) -> int:
    """Route ``repro instrument --serve SOCKET`` through the daemon's
    content-addressed artifact cache."""
    from .serve import ServeClient
    groups = None
    if args.hooks != "all":
        groups = sorted(set(args.hooks.split(",")))
    telemetry = _telemetry_from_args(args)
    client = ServeClient(args.serve, telemetry=telemetry)
    try:
        response = client.instrument(Path(args.input).read_bytes(), groups)
    except ServiceUnavailable as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    if not response.get("ok"):
        error = response.get("error", {})
        print(f"repro: {error.get('type')}: {error.get('message')}",
              file=sys.stderr)
        return int(response.get("status", EXIT_FAILURE))
    raw = response["module"]
    output = args.output or (Path(args.input).stem + ".instrumented.wasm")
    Path(output).write_bytes(raw)
    original_size = Path(args.input).stat().st_size
    source = "cache" if response.get("cache_hit") else "worker"
    print(f"instrumented {args.input} -> {output} (service: {source})")
    print(f"  hooks generated: {response.get('hook_count')}")
    print(f"  size: {original_size} -> {len(raw)} bytes "
          f"({100 * (len(raw) - original_size) / original_size:+.1f}%)")
    _write_artifacts(telemetry, args)
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the supervised instrumentation daemon (see repro.serve)."""
    import signal

    from .obs import StructuredLogger
    from .serve import ServeConfig, ServeDaemon, WorkerPool
    telemetry = _telemetry_from_args(args)
    # The scrape surface always has a sink: per-op histograms and folded
    # pool counters must exist even when no --metrics-out flag was given.
    scrape_telemetry = telemetry if telemetry is not None else Telemetry()
    logger = StructuredLogger("repro.serve", level=args.log_level,
                              path=args.log_file, stream="stderr")
    config = ServeConfig(
        workers=args.workers,
        request_timeout=args.request_timeout,
        rss_limit_mb=args.rss_limit_mb if args.rss_limit_mb > 0 else None,
        cache_dir=args.cache_dir,
        crash_dir=args.crash_dir,
        allow_test_ops=args.allow_test_ops)
    pool = WorkerPool(config, telemetry=telemetry, logger=logger).start()
    daemon = ServeDaemon(args.socket, pool, telemetry=scrape_telemetry,
                         logger=logger, metrics_port=args.metrics_port)
    try:
        daemon.start()
    except ServiceError as exc:
        pool.close()
        logger.close()
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    rss = f"{config.rss_limit_mb:g} MiB" if config.rss_limit_mb else "off"
    http = (f", metrics http://127.0.0.1:{daemon.metrics_port}/metrics"
            if daemon.metrics_port is not None else "")
    print(f"repro: serving on {args.socket} ({config.workers} workers, "
          f"timeout {config.request_timeout:g}s, rss ceiling {rss}{http})",
          flush=True)

    def _stop_signal(signum, frame):  # pragma: no cover - signal path
        daemon.stop()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _stop_signal)
        except (OSError, ValueError):  # pragma: no cover - non-main thread
            pass
    try:
        daemon.serve_forever()
    finally:
        daemon.stop()
        stats = pool.stats()
        pool.fold_into_telemetry(scrape_telemetry)
        kills = sum(stats["kills"].values())
        print(f"repro: served {stats['requests_total']} requests "
              f"({kills} kills, {stats['worker_restarts']} restarts, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['warm_hits']} warm hits)", file=sys.stderr)
        _write_artifacts(telemetry, args)
        logger.close()
    return EXIT_OK


def _render_top(payload: dict, previous: dict | None = None,
                interval: float = 2.0) -> str:
    """One ``repro top`` frame, rendered from a ``stats`` op response.

    Pure: takes this poll's payload (and the previous one, for req/s
    deltas) and returns the screenful. Tested without a live daemon.
    """
    stats = payload.get("stats", {})
    daemon = payload.get("daemon", {})
    lines = []
    uptime = daemon.get("uptime_seconds", 0.0)
    lines.append(f"repro serve — {daemon.get('socket', '?')}  "
                 f"pid {daemon.get('pid', '?')}  up {uptime:,.0f}s")
    total = stats.get("requests_total", 0)
    rate = ""
    if previous is not None and interval > 0:
        delta = total - previous.get("stats", {}).get("requests_total", 0)
        rate = f"  ({delta / interval:.1f} req/s)"
    lines.append(f"requests: {total}{rate}   "
                 f"failed: {stats.get('requests_failed', 0)}   "
                 f"retried: {stats.get('requests_retried', 0)}")
    lines.append(f"workers:  {stats.get('workers_live', 0)} live / "
                 f"{stats.get('workers_idle', 0)} idle   "
                 f"queue: {stats.get('queue_depth', 0)}   "
                 f"restarts: {stats.get('worker_restarts', 0)}   "
                 f"spawned: {stats.get('workers_spawned', 0)}")
    kills = stats.get("kills", {})
    lines.append(f"kills:    "
                 + "  ".join(f"{kind}={kills.get(kind, 0)}"
                             for kind in ("timeout", "oom", "crash")))
    lines.append(f"breaker:  {stats.get('breaker_open', 0)} open   "
                 f"trips: {stats.get('breaker_trips', 0)}")
    lines.append(f"cache:    {stats.get('cache_hits', 0)} hits / "
                 f"{stats.get('cache_misses', 0)} misses / "
                 f"{stats.get('cache_evictions', 0)} evictions   "
                 f"warm: {stats.get('warm_hits', 0)}/"
                 f"{stats.get('warm_misses', 0)}")
    if stats.get("degraded"):
        lines.append("state:    DEGRADED (unsupervised in-process execution)")
    ops = daemon.get("ops", {})
    if ops:
        lines.append("")
        lines.append(f"  {'op':<12} {'count':>8} {'mean':>10} "
                     f"{'p50':>10} {'p95':>10}  outcomes")
        for op in sorted(ops):
            row = ops[op]
            outcomes = " ".join(
                f"{k}={v}" for k, v in sorted(row.get("outcomes", {}).items()))
            lines.append(
                f"  {op:<12} {row.get('count', 0):>8} "
                f"{row.get('mean_seconds', 0.0) * 1e3:>8.2f}ms "
                f"{row.get('p50_seconds', 0.0) * 1e3:>8.2f}ms "
                f"{row.get('p95_seconds', 0.0) * 1e3:>8.2f}ms  {outcomes}")
    return "\n".join(lines)


def _daemon_down(socket_path: str) -> int:
    """The ``repro top`` no-daemon outcome: one clean line, nonzero exit.

    Connection-refused against a monitoring command is an expected state
    (the daemon simply is not up), not a transport stack trace — so the
    message is a single diagnostic line, not the client's retry report.
    """
    print(f"repro: daemon not running at {socket_path}", file=sys.stderr)
    return EXIT_FAILURE


def cmd_top(args: argparse.Namespace) -> int:
    """Live (or one-shot) view of a running daemon's ``stats`` surface."""
    from .serve import ServeClient
    client = ServeClient(args.socket, retries=0)
    try:
        payload = client.stats()
    except ServiceUnavailable:
        return _daemon_down(args.socket)
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    if args.once:
        print(_render_top(payload))
        return EXIT_OK
    previous = None
    try:
        while True:
            print("\x1b[2J\x1b[H" + _render_top(payload, previous,
                                                args.interval), flush=True)
            previous = payload
            time.sleep(args.interval)
            try:
                payload = client.stats()
            except ServiceUnavailable:
                return _daemon_down(args.socket)
    except KeyboardInterrupt:
        return EXIT_OK


def _report_analysis(analysis: Analysis) -> None:
    if isinstance(analysis, InstructionMixAnalysis):
        print(analysis.report())
    elif isinstance(analysis, CryptominerDetector):
        print(f"signature fraction: {analysis.signature_fraction:.2%}; "
              f"suspicious: {analysis.is_suspicious()}")
    elif isinstance(analysis, MemoryTracer):
        print(f"{len(analysis.trace)} accesses, "
              f"{analysis.unique_addresses()} unique addresses")
    elif isinstance(analysis, BasicBlockProfiler):
        for (loc, kind), count in analysis.hottest(10):
            print(f"  {kind:<9} {loc}: {count}")


def _error_info(error: WasmError | None) -> dict | None:
    """The manifest's error record: class, message, and (when the error
    carries one) the guest Location and faulting hook name."""
    if error is None:
        return None
    info = {"type": type(error).__name__, "message": str(error)}
    location = getattr(error, "location", None)
    if location is not None:
        info["location"] = str(location)
    hook = getattr(error, "hook_name", None)
    if hook is not None:
        info["hook"] = hook
    return info


def _run(args: argparse.Namespace, module, call_args, printed, linker,
         limits: ResourceLimits | None, telemetry: Telemetry | None,
         recorder: Recorder | None = None, wasi=None) -> int:
    analysis = None
    pgo_profile = getattr(args, "pgo_profile", None)
    if args.analysis == "none" and not args.instrument:
        machine = Machine(limits=limits, telemetry=telemetry, replay=recorder,
                          pgo_profile=pgo_profile)
        instance = machine.instantiate(module, linker)
        session = None
    elif pgo_profile is not None:
        # a PGO table needs machine construction flags, so the session
        # gets a pre-built machine instead of building its own
        analysis = ANALYSES[args.analysis]()
        machine = Machine(limits=limits, telemetry=telemetry, replay=recorder,
                          pgo_profile=pgo_profile)
        session = AnalysisSession(module, analysis, linker=linker,
                                  machine=machine,
                                  on_analysis_error=args.on_analysis_error,
                                  telemetry=telemetry)
        instance = session.instance
    else:
        analysis = ANALYSES[args.analysis]()
        session = AnalysisSession(module, analysis, linker=linker,
                                  limits=limits,
                                  on_analysis_error=args.on_analysis_error,
                                  telemetry=telemetry, replay=recorder)
        machine, instance = session.machine, session.instance
    if wasi is not None:
        wasi.bind_memory(instance)
    # the pre-invocation state snapshot anchoring a recorded bundle
    pre = snapshot_instance(instance) if recorder is not None else None
    error: WasmError | None = None
    result = None
    try:
        result = instance.invoke(args.entry, call_args)
    except WasmError as exc:
        error = exc
    usage = machine.resource_usage() if session is None \
        else session.resource_usage()

    if recorder is not None:
        target = args.record or (args.crash_dir and error is not None
                                 and str(Path(args.crash_dir)
                                         / Path(args.input).stem))
        if target:
            manifest = {
                "kind": "invoke",
                "invocations": [{"export": args.entry,
                                 "args": encode_values(call_args)}],
                "engine": {"predecode": machine.predecode,
                           "specialize_hooks": machine.specialize_hooks},
                "limits": asdict(limits) if limits is not None else None,
                "analysis": args.analysis,
                "instrument": bool(args.instrument),
                "on_analysis_error": args.on_analysis_error,
                "error": _error_info(error),
                "metrics": usage.as_dict(),
            }
            if wasi is not None:
                # the replay path rebuilds an equivalent context from this
                manifest["wasi"] = wasi.config()
            if error is None:
                manifest["results"] = encode_values(result)
            # post-invocation state, for the bit-identical replay check
            post = snapshot_instance(instance)
            manifest["post"] = {
                "memory_digest": (post.memory or {}).get("digest"),
                "globals": encode_values(post.globals_),
            }
            write_crash_bundle(target, Path(args.input).read_bytes(), manifest,
                               snapshot=pre, recorder=recorder)
            print(f"repro: crash bundle written to {target}", file=sys.stderr)

    graceful_exit = False
    if wasi is not None:
        _emit_wasi_streams(wasi)
        # the bundle manifest above keeps the raw ProcExit (replay must see
        # the identical outcome); the CLI surface treats proc_exit(0) as a
        # clean exit with no return value
        normalized = _normalize_proc_exit(error)
        graceful_exit = normalized is None and error is not None
        error = normalized

    if error is not None:
        if isinstance(error, ResourceExhausted):
            print(f"repro: resource limit hit: {error}", file=sys.stderr)
        else:
            print(f"repro: {type(error).__name__}: {error}", file=sys.stderr)
        _write_artifacts(telemetry, args, usage)
        return exit_status(error)

    if analysis is not None:
        _report_analysis(analysis)
    for value in printed:
        print(f"[print] {value}")
    shown = "proc_exit(0)" if graceful_exit else result
    print(f"{args.entry}({', '.join(map(str, call_args))}) = {shown}")
    if args.verbose:
        print(f"repro: {usage.summary()}", file=sys.stderr)
        if wasi is not None:
            wasi_summary = " ".join(f"{key}={value}" for key, value
                                    in sorted(wasi.usage().items()))
            print(f"repro: wasi {wasi_summary}", file=sys.stderr)
    _write_artifacts(telemetry, args, usage)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the seeded fault-injection campaign (see repro.eval.faultinject).

    Plain invocations keep the PR-3 serial harness; any of --parallel,
    --coverage, --corpus-dir, or --time-budget routes through the
    campaign engine in repro.eval.fuzz (sharding, corpus evolution,
    signature dedup + auto-reduced bundles). Both paths exit EXIT_FAILURE
    on escapes per the unified 0..7 taxonomy.
    """
    from .eval.faultinject import run_campaign

    engines: tuple[bool, ...] = (True, False)
    if args.engine == "predecode":
        engines = (True,)
    elif args.engine == "legacy":
        engines = (False,)
    telemetry = _telemetry_from_args(args)

    if (args.parallel > 1 or args.coverage or args.corpus_dir is not None
            or args.time_budget is not None or args.supervise):
        from .eval.fuzz import (FuzzConfig, fold_into_telemetry,
                                run_fuzz_campaign)
        config = FuzzConfig(mutants=args.mutants, seed=args.seed,
                            parallel=args.parallel, coverage=args.coverage,
                            execute=not args.no_execute, engines=engines,
                            corpus_dir=args.corpus_dir,
                            save_failures=args.save_failures,
                            time_budget=args.time_budget,
                            supervised=args.supervise,
                            shard_timeout=args.shard_timeout,
                            shard_rss_limit_mb=args.shard_rss_limit_mb,
                            wasi=args.wasi_faults)
        with maybe_span(telemetry, "fuzz_campaign", mutants=args.mutants,
                        seed=args.seed, parallel=args.parallel,
                        coverage=args.coverage):
            result = run_fuzz_campaign(config)
        fold_into_telemetry(result, telemetry)
        print(result.summary())
        for sig in result.new_signatures:
            print(f"repro: new signature {sig}", file=sys.stderr)
        for failure in result.escapes:
            print(f"ESCAPE {failure}", file=sys.stderr)
        for bundle in result.bundles:
            print(f"repro: bundle {bundle}", file=sys.stderr)
        if result.shards_killed:
            print(f"repro: {result.shards_killed} supervised shard(s) "
                  f"killed (deadline/RSS/crash); their mutant blocks are "
                  f"regenerable from the cursor", file=sys.stderr)
        if result.interrupted:
            print("repro: interrupted; completed shards merged"
                  + (" and corpus cursor saved" if args.corpus_dir else ""),
                  file=sys.stderr)
        _write_artifacts(telemetry, args)
        return (EXIT_OK if result.ok and not result.interrupted
                else EXIT_FAILURE)

    with maybe_span(telemetry, "fuzz_campaign", mutants=args.mutants,
                    seed=args.seed):
        result = run_campaign(mutants=args.mutants, seed=args.seed,
                              execute=not args.no_execute, engines=engines,
                              save_failures=args.save_failures,
                              wasi=args.wasi_faults)
    if telemetry is not None:
        registry = telemetry.registry
        for stage, count in sorted(result.rejected_at.items()):
            registry.counter("repro_fuzz_rejections_total",
                             labels={"stage": stage},
                             help="mutants rejected per pipeline stage").set(count)
        registry.counter("repro_fuzz_survivors_total",
                         help="mutants surviving the whole pipeline").set(
            result.survived)
        registry.counter("repro_fuzz_escapes_total",
                         help="non-WasmError pipeline escapes").set(
            len(result.failures))
        for failure in result.failures:
            telemetry.event("fuzz_escape", detail=str(failure))
    print(result.summary())
    for failure in result.failures:
        print(f"ESCAPE {failure}", file=sys.stderr)
    if args.save_failures and result.failures:
        print(f"repro: {len(result.failures)} crash bundles written under "
              f"{args.save_failures}", file=sys.stderr)
        if args.reduce:
            from .eval.reduce import reduce_bundle
            for failure in result.failures:
                bundle_dir = (Path(args.save_failures)
                              / f"{failure.corpus_name}-{failure.index}")
                reduction = reduce_bundle(load_crash_bundle(bundle_dir),
                                          execute=not args.no_execute,
                                          engines=engines)
                print(f"repro: {bundle_dir.name}: {reduction.summary()}",
                      file=sys.stderr)
    _write_artifacts(telemetry, args)
    return EXIT_OK if result.ok else EXIT_FAILURE


def cmd_bundle(args: argparse.Namespace) -> int:
    """Inspect (and verify the integrity of) a crash bundle directory."""
    try:
        bundle = load_crash_bundle(args.bundle)
    except (WasmError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return exit_status(exc) if isinstance(exc, WasmError) else EXIT_FAILURE
    manifest = bundle.manifest
    print(f"{bundle.path}: {manifest.get('kind', '?')} crash bundle")
    print(f"  module: {len(bundle.module_bytes)} bytes{_stream_info(bundle)}")
    error = manifest.get("error")
    if error:
        where = f" at {error['location']}" if error.get("location") else ""
        stage = f" [{error['stage']}]" if error.get("stage") else ""
        print(f"  error{stage}: {error.get('type')}: "
              f"{error.get('message')}{where}")
    else:
        print("  error: none (recorded run succeeded)")
    if manifest.get("invocations"):
        for inv in manifest["invocations"]:
            call_args = decode_values(inv.get("args", []))
            print(f"  invoke: {inv['export']}({', '.join(map(str, call_args))})")
    if manifest.get("fuzz"):
        fz = manifest["fuzz"]
        print(f"  fuzz: seed={fz.get('seed')} corpus={fz.get('corpus')} "
              f"index={fz.get('index')} recipe={fz.get('recipe')}")
    if manifest.get("reduction"):
        red = manifest["reduction"]
        print(f"  reduced: {red['original_size']} -> {red['reduced_size']} "
              f"bytes ({red['tests']} pipeline runs)")
    if bundle.snapshot is not None:
        memory = bundle.snapshot.memory
        pages = len(memory["pages"]) if memory else 0
        size = memory["size_pages"] if memory else 0
        print(f"  snapshot: {size} pages ({pages} non-zero), "
              f"{len(bundle.snapshot.globals_)} globals")
    if bundle.log is not None:
        from collections import Counter
        kinds = Counter(entry["kind"] for entry in bundle.log)
        detail = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        print(f"  replay log: {len(bundle.log)} entries ({detail or 'empty'})")
    if bundle.flight is not None:
        last = bundle.flight[-1] if bundle.flight else None
        tail = (f" (last: [{last.get('level')}] {last.get('event')})"
                if last else "")
        print(f"  flight log: {len(bundle.flight)} entries{tail}")
    if args.verify:
        problems = _verify_bundle(bundle)
        if problems:
            for problem in problems:
                print(f"  VERIFY FAILED: {problem}", file=sys.stderr)
            return EXIT_FAILURE
        print("  verify: ok")
    return 0


def _stream_info(bundle) -> str:
    """Decoded-stream triage for bundles whose module still decodes."""
    from .interp.predecode import stream_summary
    try:
        summary = stream_summary(decode_module(bundle.module_bytes))
    except WasmError:
        return " (does not decode)"
    extras = [f"{summary['instructions']} instrs",
              f"{summary['host_call_sites']} host call sites"]
    if summary["hook_sites"]:
        extras.append(f"{summary['hook_sites']} hook sites")
    if summary["raising"]:
        extras.append(f"{summary['raising']} undecodable instrs")
    return f" ({', '.join(extras)})"


def _verify_bundle(bundle) -> list[str]:
    """Integrity checks on a loaded bundle (content, not reproduction)."""
    import hashlib

    from .wasm.types import PAGE_SIZE

    problems = []
    if bundle.manifest.get("kind") == "pipeline":
        # pipeline bundles hold intentionally broken binaries; nothing to
        # decode. Invoke bundles must decode cleanly.
        pass
    else:
        try:
            decode_module(bundle.module_bytes)
        except WasmError as exc:
            problems.append(f"module does not decode: {exc}")
    snap = bundle.snapshot
    if snap is not None and snap.memory is not None:
        data = bytearray(snap.memory["size_pages"] * PAGE_SIZE)
        try:
            for idx, chunk in snap.memory["pages"].items():
                data[idx * PAGE_SIZE:idx * PAGE_SIZE + len(chunk)] = chunk
        except (IndexError, ValueError) as exc:
            problems.append(f"snapshot pages malformed: {exc}")
        else:
            digest = hashlib.sha256(bytes(data)).hexdigest()
            if digest != snap.memory["digest"]:
                problems.append(
                    f"snapshot memory digest mismatch: stored "
                    f"{snap.memory['digest'][:12]}…, computed {digest[:12]}…")
    return problems


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a crash bundle and compare against its recorded outcome."""
    try:
        bundle = load_crash_bundle(args.bundle)
    except (WasmError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return exit_status(exc) if isinstance(exc, WasmError) else EXIT_FAILURE
    if bundle.manifest.get("kind") == "pipeline":
        return _replay_pipeline_bundle(args, bundle)
    if bundle.manifest.get("kind") == "service":
        return _replay_service_bundle(args, bundle)
    return _replay_invoke_bundle(args, bundle)


def _replay_service_bundle(args: argparse.Namespace, bundle) -> int:
    """Service bundles replay by re-running the killed request one-shot
    under a fresh supervisor: reproduction means the same kill class."""
    from .serve import ServeConfig, WorkerPool

    service = bundle.manifest.get("service", {})
    recorded = (bundle.manifest.get("error", {}).get("kill_class")
                or service.get("kill_class", "?"))
    request = dict(service.get("request", {}))
    request["module"] = bundle.module_bytes
    config = ServeConfig(
        workers=1, max_retries=0,
        breaker_threshold=10 ** 9,  # the replay must not self-quarantine
        request_timeout=float(service.get("request_timeout") or 30.0),
        rss_limit_mb=service.get("rss_limit_mb"),
        allow_test_ops=request.get("kind") == "__test__")
    pool = WorkerPool(config).start()
    try:
        response = pool.submit(request)
    except WorkerKilled as exc:
        if exc.kill_class == recorded:
            print(f"{bundle.path}: reproduced: worker killed "
                  f"[{exc.kill_class}]")
            return EXIT_OK
        print(f"{bundle.path}: DIVERGED", file=sys.stderr)
        print(f"  recorded: worker killed [{recorded}]", file=sys.stderr)
        print(f"  live:     worker killed [{exc.kill_class}]", file=sys.stderr)
        return EXIT_REPLAY_DIVERGENCE
    finally:
        pool.close()
    if response.get("ok"):
        live = "request completed"
    else:
        error = response.get("error", {})
        live = f"failed cleanly: {error.get('type')}: {error.get('message')}"
    print(f"{bundle.path}: DIVERGED", file=sys.stderr)
    print(f"  recorded: worker killed [{recorded}]", file=sys.stderr)
    print(f"  live:     {live}", file=sys.stderr)
    return EXIT_REPLAY_DIVERGENCE


def _replay_pipeline_bundle(args: argparse.Namespace, bundle) -> int:
    """Pipeline bundles re-run deterministically from bytes alone."""
    from .eval.faultinject import replay_failure_bundle

    reproduced, live = replay_failure_bundle(bundle)
    recorded = bundle.error
    if reproduced:
        print(f"{bundle.path}: reproduced: {live}")
        return 0
    print(f"{bundle.path}: DIVERGED", file=sys.stderr)
    print(f"  recorded: {recorded.get('outcome', 'escape')} at "
          f"{recorded.get('stage')}: {recorded.get('type')}: "
          f"{recorded.get('message')}", file=sys.stderr)
    print(f"  live:     {live}", file=sys.stderr)
    return EXIT_REPLAY_DIVERGENCE


def _replay_invoke_bundle(args: argparse.Namespace, bundle) -> int:
    """Reconstruct the recorded run: same module, limits, analysis, and
    host-boundary log; optionally a different engine (``--engine``)."""
    manifest = bundle.manifest
    try:
        module = decode_module(bundle.module_bytes)
    except WasmError as exc:
        # invoke bundles record modules that decoded when written; one that
        # no longer does is bundle damage, reported taxonomically
        print(f"repro: {bundle.path}: bundle module does not decode: {exc}",
              file=sys.stderr)
        return exit_status(exc)
    engine = manifest.get("engine", {})
    predecode = engine.get("predecode")
    if args.engine == "predecode":
        predecode = True
    elif args.engine == "legacy":
        predecode = False
    limits = None
    if manifest.get("limits") is not None:
        limits = ResourceLimits(**manifest["limits"])
    replayer = bundle.replayer()
    if replayer is None:
        print(f"repro: {bundle.path} has no replay log", file=sys.stderr)
        return EXIT_FAILURE
    linker = replay_linker(module)
    wasi_ctx = None
    if manifest.get("wasi") is not None:
        # WASI syscalls replay through the context (the log's wasi_call
        # entries re-apply recorded memory writes), not through the
        # generic host-call placeholders — register over them
        from .wasi import WasiContext
        wasi_ctx = WasiContext.from_config(manifest["wasi"], replay=replayer)
        wasi_ctx.register(linker)

    analysis_name = manifest.get("analysis", "none")
    machine = Machine(predecode=predecode,
                      specialize_hooks=engine.get("specialize_hooks"),
                      limits=limits, replay=replayer)
    try:
        if analysis_name == "none" and not manifest.get("instrument"):
            instance = machine.instantiate(module, linker)
        else:
            session = AnalysisSession(
                module, ANALYSES[analysis_name](), linker=linker,
                machine=machine,
                on_analysis_error=manifest.get("on_analysis_error", "raise"))
            instance = session.instance
        if bundle.snapshot is not None:
            instance.restore(bundle.snapshot)
        if wasi_ctx is not None:
            wasi_ctx.bind_memory(instance)
        error: WasmError | None = None
        results = None
        for inv in manifest.get("invocations", []):
            try:
                results = instance.invoke(inv["export"],
                                          decode_values(inv.get("args", [])))
            except ReplayDivergence:
                raise
            except WasmError as exc:
                error = exc
                break
        replayer.finish()
    except ReplayDivergence as div:
        print(f"{bundle.path}: DIVERGED: {div}", file=sys.stderr)
        return EXIT_REPLAY_DIVERGENCE
    except SnapshotError as exc:
        # a corrupted snapshot is a broken bundle, not a divergence
        print(f"repro: {bundle.path}: {exc}", file=sys.stderr)
        return EXIT_FAILURE

    mismatches = _compare_outcome(manifest, error, results, instance)
    if not mismatches:
        outcome = manifest.get("error")
        what = (f"{outcome['type']}: {outcome['message']}" if outcome
                else f"results {results!r}")
        print(f"{bundle.path}: reproduced: {what}")
        return 0
    print(f"{bundle.path}: DIVERGED", file=sys.stderr)
    for mismatch in mismatches:
        print(f"  {mismatch}", file=sys.stderr)
    return EXIT_REPLAY_DIVERGENCE


def _compare_outcome(manifest: dict, error: WasmError | None, results,
                     instance) -> list[str]:
    """Replay acceptance: identical error class + message + Location (or
    identical results), and bit-identical post-invocation state."""
    mismatches = []
    recorded = manifest.get("error")
    live = _error_info(error)
    if recorded is None and live is not None:
        mismatches.append(f"recorded success, live failed: "
                          f"{live['type']}: {live['message']}")
    elif recorded is not None and live is None:
        mismatches.append(f"recorded {recorded['type']}: "
                          f"{recorded['message']}, live succeeded")
    elif recorded is not None:
        for key in ("type", "message", "location", "hook"):
            if recorded.get(key) != live.get(key):
                mismatches.append(f"error {key}: recorded "
                                  f"{recorded.get(key)!r}, live {live.get(key)!r}")
    elif "results" in manifest and encode_values(results or []) != manifest["results"]:
        mismatches.append(f"results: recorded "
                          f"{decode_values(manifest['results'])!r}, "
                          f"live {results!r}")
    post = manifest.get("post")
    if post:
        live_post = snapshot_instance(instance)
        live_digest = (live_post.memory or {}).get("digest")
        if live_digest != post.get("memory_digest"):
            mismatches.append("post-state memory digest differs")
        if encode_values(live_post.globals_) != post.get("globals", []):
            mismatches.append("post-state globals differ")
    return mismatches


def cmd_report(args: argparse.Namespace) -> int:
    """Render a --metrics-out JSON artifact as a human-readable summary."""
    try:
        payload = json.loads(Path(args.input).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro: cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    try:
        print(render_report(payload, top=args.top))
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_pgo(args: argparse.Namespace) -> int:
    """Record a corpus profile and derive the PGO fusion table.

    Runs the standard corpus (PolyBench fast subset + the synthetic
    real-world stand-ins) on a profiling machine — unfused, unquickened
    streams, so pair counts are exact and deterministic — then selects the
    superinstruction table and writes both artifacts.
    """
    from .interp.pgo import (fusion_table_payload, record_corpus_profile,
                             unfused_hot_pairs, write_profile)
    names = args.workloads.split(",") if args.workloads else None
    profile = record_corpus_profile(
        polybench_names=names, n=args.n,
        include_realworld=not args.no_realworld)
    write_profile(profile, args.out)
    print(f"repro: profile written to {args.out} "
          f"({profile['total_instructions']} instructions, "
          f"{profile['total_pairs']} pairs over "
          f"{len(profile['corpus'])} workloads)")
    table = fusion_table_payload(profile, min_share=args.min_share,
                                 max_pairs=args.max_pairs)
    if args.fusion_out:
        write_profile(table, args.fusion_out)
        print(f"repro: fusion table written to {args.fusion_out}")
    print(f"derived fusion table ({len(table['pairs'])} pairs, "
          f"min share {args.min_share:.1%}):")
    for first, second, share in table["pairs"]:
        print(f"  {first:<16} ; {second:<16} {share:>7.2%}")
    skipped = [row for row in unfused_hot_pairs(profile, top=args.top)
               if not row[4]]
    if skipped:
        print("hottest pairs with no fusion rule:")
        for first, second, count, share, _ in skipped:
            print(f"  {first:<16} ; {second:<16} {share:>7.2%}")
    return EXIT_OK


def cmd_stats(args: argparse.Namespace) -> int:
    module = _load(args.input)
    size = Path(args.input).stat().st_size
    print(f"{args.input}: {size} bytes")
    print(f"  types: {len(module.types)}")
    print(f"  imports: {len(module.imports)} "
          f"({module.num_imported_functions} functions)")
    print(f"  functions: {len(module.functions)} defined")
    print(f"  instructions: {module.instruction_count()}")
    print(f"  exports: {', '.join(e.name for e in module.exports) or '-'}")
    from collections import Counter
    groups = Counter(i.info.group.value for _, _, i in module.iter_instructions()
                     if i.info.group)
    print("  static instruction mix:")
    for group, count in groups.most_common(8):
        print(f"    {group:<12} {count}")
    return 0


def _add_telemetry_flags(p: argparse.ArgumentParser,
                         profile: bool = True) -> None:
    """The shared --metrics-out/--trace-out/--profile telemetry flags."""
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write run metrics (.json, or .prom for Prometheus "
                        "text exposition)")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write pipeline spans (.json Chrome trace-event "
                        "format for Perfetto, or .jsonl for span-per-line)")
    if profile:
        p.add_argument("--profile", action="store_true",
                       help="attach the engine self-profiler (pre-decoded "
                            "engine only; report with `repro report`)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Wasabi (reproduction) WebAssembly toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instrument", help="instrument a .wasm binary")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument("--hooks", default="all",
                   help="comma-separated hook groups (default: all)")
    p.add_argument("--metadata", help="write hook/function metadata JSON")
    p.add_argument("--serve", metavar="SOCKET", default=None,
                   help="instrument via the service daemon at this unix "
                        "socket (content-addressed artifact cache)")
    _add_telemetry_flags(p, profile=False)
    p.set_defaults(fn=cmd_instrument, profile=False)

    p = sub.add_parser("validate", help="type check a .wasm binary")
    p.add_argument("input")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("objdump", help="disassemble to WAT-style text")
    p.add_argument("input")
    p.set_defaults(fn=cmd_objdump)

    p = sub.add_parser("compile", help="compile MiniC source to .wasm")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="run an exported function")
    p.add_argument("input")
    p.add_argument("entry")
    p.add_argument("args", nargs="*")
    p.add_argument("--analysis", choices=sorted(ANALYSES), default="none")
    p.add_argument("--instrument", action="store_true",
                   help="instrument even without an analysis")
    p.add_argument("--fuel", type=int, default=None,
                   help="abort after this many metered events "
                        "(taken branches + calls)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget per invocation")
    p.add_argument("--max-memory-pages", type=int, default=None,
                   help="cap linear memory at this many 64 KiB pages")
    p.add_argument("--wasi", action="store_true",
                   help="provide the WASI-preview1 subset host module "
                        "(auto-enabled when the module imports from "
                        "wasi_snapshot_preview1)")
    p.add_argument("--stdin-file", metavar="PATH", default=None,
                   help="file whose bytes back the guest's WASI stdin (fd 0)")
    p.add_argument("--fs-dir", metavar="DIR", default=None,
                   help="directory whose top-level files seed the guest's "
                        "in-memory WASI filesystem (preopen fd 3)")
    p.add_argument("--wasi-fault-seed", type=int, default=None,
                   metavar="SEED",
                   help="inject deterministic host-boundary faults (errno "
                        "failures, short reads/writes, clock skew) from "
                        "this seed")
    p.add_argument("--wasi-fault-rate", type=float, default=0.05,
                   metavar="RATE",
                   help="per-syscall fault probability under "
                        "--wasi-fault-seed (default: 0.05)")
    p.add_argument("--wasi-escalate-rate", type=float, default=0.0,
                   metavar="RATE",
                   help="probability a fired fault escalates to the hard "
                        "WasiExhausted tier instead of an errno "
                        "(default: 0)")
    p.add_argument("--max-open-fds", type=int, default=None,
                   help="cap concurrently open WASI file descriptors "
                        "(EMFILE past the bound)")
    p.add_argument("--max-file-bytes", type=int, default=None,
                   help="cap any single WASI file's size (short write, "
                        "then ENOSPC)")
    p.add_argument("--max-fs-bytes", type=int, default=None,
                   help="cap total bytes across the WASI filesystem "
                        "(short write, then ENOSPC)")
    p.add_argument("--max-syscalls", type=int, default=None,
                   help="hard budget of WASI syscalls per run "
                        "(WasiExhausted past the bound)")
    p.add_argument("--on-analysis-error", choices=ERROR_POLICIES,
                   default="raise",
                   help="policy when an analysis hook raises (default: raise)")
    p.add_argument("--record", metavar="DIR", default=None,
                   help="record the run (snapshot + host-boundary log) as a "
                        "crash bundle at DIR, whether or not it fails")
    p.add_argument("--crash-dir", metavar="DIR", default=None,
                   help="on trap/fault, write a crash bundle under DIR")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="report resource usage (fuel, peak pages, peak call "
                        "depth) on stderr after the run")
    p.add_argument("--pgo-profile", metavar="PATH", default=None,
                   help="fuse superinstructions from this recorded "
                        "repro.profile/1 or repro.fusion/1 artifact "
                        "(see `repro pgo`) instead of the built-in set")
    p.add_argument("--serve", metavar="SOCKET", default=None,
                   help="execute via the service daemon at this unix socket "
                        "(crash-isolated, hard-deadline supervised)")
    p.add_argument("--serve-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="hard supervised deadline for this request "
                        "(default: the daemon's --request-timeout)")
    _add_telemetry_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("report",
                       help="render a --metrics-out JSON artifact for humans")
    p.add_argument("input", help="metrics artifact written by --metrics-out")
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranking section (default: 10)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("pgo", help="record a corpus profile and derive the "
                                   "superinstruction fusion table")
    p.add_argument("-o", "--out", default="pgo_profile.json",
                   help="where to write the repro.profile/1 artifact "
                        "(default: pgo_profile.json)")
    p.add_argument("--fusion-out", metavar="PATH", default=None,
                   help="also write the derived repro.fusion/1 table")
    p.add_argument("--workloads", metavar="NAMES", default=None,
                   help="comma-separated PolyBench kernels (default: the "
                        "fast subset)")
    p.add_argument("--n", type=int, default=None,
                   help="PolyBench problem size override")
    p.add_argument("--no-realworld", action="store_true",
                   help="skip the synthetic real-world workloads")
    p.add_argument("--min-share", type=float, default=0.005,
                   help="keep pairs covering at least this share of all "
                        "recorded pairs (default: 0.005)")
    p.add_argument("--max-pairs", type=int, default=None,
                   help="cap the derived table at this many pairs")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the no-rule ranking (default: 10)")
    p.set_defaults(fn=cmd_pgo)

    p = sub.add_parser("stats", help="summarize a .wasm binary")
    p.add_argument("input")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("fuzz", help="seeded fault-injection campaign over "
                                    "the decode/validate/instrument pipeline")
    p.add_argument("--mutants", type=int, default=5000)
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--engine", choices=("both", "predecode", "legacy"),
                   default="both",
                   help="engine(s) for the execute stage (default: both)")
    p.add_argument("--save-failures", metavar="DIR", default=None,
                   help="write a crash bundle per surviving mutant under DIR")
    p.add_argument("--reduce", action="store_true",
                   help="ddmin-reduce each saved crash bundle in place "
                        "(requires --save-failures)")
    p.add_argument("--no-execute", action="store_true",
                   help="skip executing statically valid mutants")
    p.add_argument("--wasi-faults", action="store_true",
                   help="widen the corpus with WASI-preview1 workloads; "
                        "their mutants execute against an injected-fault "
                        "host module (fault seed derived from the mutant "
                        "bytes)")
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="shard the campaign across N worker processes")
    p.add_argument("--coverage", action="store_true",
                   help="coverage-guided corpus evolution over the toolkit's "
                        "own pipeline edges")
    p.add_argument("--corpus-dir", metavar="DIR", default=None,
                   help="resumable on-disk corpus; new-signature bundles go "
                        "under DIR/signatures")
    p.add_argument("--time-budget", type=float, default=None, metavar="SECS",
                   help="stop scheduling new rounds after SECS of wall-clock")
    p.add_argument("--supervise", action="store_true",
                   help="run campaign shards in supervised service workers "
                        "(hard deadlines + RSS ceiling per shard)")
    p.add_argument("--shard-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="hard wall-clock deadline per supervised shard "
                        "(default: 120)")
    p.add_argument("--shard-rss-limit-mb", type=float, default=2048.0,
                   metavar="MB",
                   help="RSS ceiling per supervised shard (default: 2048; "
                        "0 disables)")
    _add_telemetry_flags(p, profile=False)
    p.set_defaults(fn=cmd_fuzz, profile=False)

    p = sub.add_parser("serve", help="run the supervised instrumentation "
                                     "daemon over a unix socket")
    p.add_argument("--socket", default="/tmp/repro-serve.sock",
                   help="unix socket path (default: /tmp/repro-serve.sock)")
    p.add_argument("--workers", type=int, default=2,
                   help="supervised worker subprocesses (default: 2; "
                        "0 forces the degraded in-process mode)")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="hard wall-clock deadline per request before the "
                        "worker is SIGKILLed (default: 30)")
    p.add_argument("--rss-limit-mb", type=float, default=1024.0, metavar="MB",
                   help="RSS ceiling per worker before SIGKILL "
                        "(default: 1024; 0 disables)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="content-addressed artifact cache directory")
    p.add_argument("--crash-dir", metavar="DIR", default=None,
                   help="write a replayable service bundle per killed "
                        "request under DIR")
    p.add_argument("--allow-test-ops", action="store_true",
                   help="honor __test__ fault-injection requests (CI smoke "
                        "and tests only)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="also serve GET /metrics (Prometheus text) and "
                        "GET /stats (JSON) over HTTP on 127.0.0.1:PORT "
                        "(0 picks an ephemeral port)")
    p.add_argument("--log-file", metavar="PATH", default=None,
                   help="append structured JSONL logs (repro.log/1) here, "
                        "with size-based rotation")
    p.add_argument("--log-level", default="info",
                   choices=("debug", "info", "warning", "error"),
                   help="minimum level written to --log-file and echoed to "
                        "stderr (default: info); the in-memory flight "
                        "recorder always captures everything")
    _add_telemetry_flags(p, profile=False)
    p.set_defaults(fn=cmd_serve, profile=False)

    p = sub.add_parser("top", help="live view of a running daemon's stats "
                                   "(poll the service's `stats` op)")
    p.add_argument("--socket", default="/tmp/repro-serve.sock",
                   help="unix socket path (default: /tmp/repro-serve.sock)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="seconds between polls (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="print the raw stats response as JSON and exit")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("bundle", help="inspect a crash bundle directory")
    p.add_argument("bundle", help="crash bundle directory")
    p.add_argument("--verify", action="store_true",
                   help="check bundle integrity (module decodes, snapshot "
                        "digest matches)")
    p.set_defaults(fn=cmd_bundle)

    p = sub.add_parser("replay", help="re-execute a crash bundle and check "
                                      "it reproduces the recorded outcome")
    p.add_argument("bundle", help="crash bundle directory")
    p.add_argument("--engine", choices=("recorded", "predecode", "legacy"),
                   default="recorded",
                   help="interpreter engine to replay on (default: the one "
                        "that recorded the bundle)")
    p.set_defaults(fn=cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
