"""Per-instruction instrumentation behaviour, following the paper's Table 3.

Each test builds a tiny program containing one instruction class, runs it
under an event-recording analysis, and checks both that the program result
is unchanged and that the expected hook events (with correct values and
locations) were observed.
"""

import pytest

from repro.core import Analysis, analyze
from repro.core.analysis import Location
from repro.minic import compile_source
from repro.wasm import validate_module
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import BrTable
from repro.wasm.types import F64, I32, I64


class Recorder(Analysis):
    """Records every hook invocation as a tuple."""

    def __init__(self):
        self.events = []

    def const_(self, loc, value): self.events.append(("const", loc, value))
    def drop(self, loc, value): self.events.append(("drop", loc, value))
    def select(self, loc, cond, first, second):
        self.events.append(("select", loc, cond, first, second))
    def unary(self, loc, op, inp, res): self.events.append(("unary", op, inp, res))
    def binary(self, loc, op, a, b, r): self.events.append(("binary", op, a, b, r))
    def local(self, loc, op, idx, val): self.events.append(("local", op, idx, val))
    def global_(self, loc, op, idx, val): self.events.append(("global", op, idx, val))
    def load(self, loc, op, memarg, val):
        self.events.append(("load", op, memarg.addr, memarg.offset, val))
    def store(self, loc, op, memarg, val):
        self.events.append(("store", op, memarg.addr, memarg.offset, val))
    def memory_size(self, loc, size): self.events.append(("memory_size", size))
    def memory_grow(self, loc, delta, prev):
        self.events.append(("memory_grow", delta, prev))
    def call_pre(self, loc, func, args, tbl):
        self.events.append(("call_pre", func, tuple(args), tbl))
    def call_post(self, loc, results):
        self.events.append(("call_post", tuple(results)))
    def return_(self, loc, results): self.events.append(("return", tuple(results)))
    def br(self, loc, target): self.events.append(("br", loc, target))
    def br_if(self, loc, target, cond):
        self.events.append(("br_if", loc, target.location, cond))
    def br_table(self, loc, table, default, idx):
        self.events.append(("br_table", idx))
    def if_(self, loc, cond): self.events.append(("if", cond))
    def begin(self, loc, kind): self.events.append(("begin", kind, loc))
    def end(self, loc, kind, begin): self.events.append(("end", kind, loc, begin))
    def nop(self, loc): self.events.append(("nop", loc))
    def unreachable(self, loc): self.events.append(("unreachable", loc))

    def of_kind(self, *kinds):
        return [e for e in self.events if e[0] in kinds]


def run(module, entry, args=(), linker=None):
    recorder = Recorder()
    session = analyze(module, recorder, linker=linker)
    result = session.invoke(entry, args)
    validate_module(session.result.module)
    return result, recorder, session


class TestRow1Const:
    def test_const_value_and_location(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(-7)
        fb.finish()
        result, rec, _ = run(builder.build(), "f")
        assert result == [0xFFFFFFF9]
        consts = rec.of_kind("const")
        assert consts == [("const", Location(0, 0), -7)]

    def test_f64_const(self):
        builder = ModuleBuilder()
        fb = builder.function((), (F64,), export="f")
        fb.f64_const(2.5)
        fb.finish()
        _, rec, _ = run(builder.build(), "f")
        assert rec.of_kind("const") == [("const", Location(0, 0), 2.5)]

    def test_i64_const_split_and_rejoined(self):
        """Table 3 row 6: i64 crosses the host boundary as two i32 halves."""
        value = -(1 << 62) + 12345
        builder = ModuleBuilder()
        fb = builder.function((), (I64,), export="f")
        fb.i64_const(value)
        fb.finish()
        _, rec, _ = run(builder.build(), "f")
        assert rec.of_kind("const") == [("const", Location(0, 0), value)]


class TestRow2GeneralInstructions:
    def test_unary_inputs_and_results(self):
        module = compile_source("export func f(x: f64) -> f64 { return sqrt(x); }")
        result, rec, _ = run(module, "f", [16.0])
        assert result == [4.0]
        assert ("unary", "f64.sqrt", 16.0, 4.0) in rec.events

    def test_binary_inputs_and_results(self):
        module = compile_source("export func f(a: i32, b: i32) -> i32 { return a * b; }")
        result, rec, _ = run(module, "f", [6, -7])
        assert result == [(-42) & 0xFFFFFFFF]
        assert ("binary", "i32.mul", 6, -7, -42) in rec.events

    def test_i64_binary(self):
        module = compile_source(
            "export func f(a: i64, b: i64) -> i64 { return a + b; }")
        _, rec, _ = run(module, "f", [1 << 40, 5])
        assert ("binary", "i64.add", 1 << 40, 5, (1 << 40) + 5) in rec.events

    def test_load_store_with_address_and_offset(self):
        builder = ModuleBuilder()
        builder.add_memory(1)
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(8)
        fb.i32_const(77)
        fb.store("i32.store", offset=4)
        fb.i32_const(8)
        fb.load("i32.load", offset=4)
        fb.finish()
        result, rec, _ = run(builder.build(), "f")
        assert result == [77]
        assert ("store", "i32.store", 8, 4, 77) in rec.events
        assert ("load", "i32.load", 8, 4, 77) in rec.events

    def test_memory_grow_and_size(self):
        builder = ModuleBuilder()
        builder.add_memory(1, 5)
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(2)
        fb.emit("memory.grow")
        fb.emit("drop")
        fb.emit("memory.size")
        fb.finish()
        result, rec, _ = run(builder.build(), "f")
        assert result == [3]
        assert ("memory_grow", 2, 1) in rec.events
        assert ("memory_size", 3) in rec.events


class TestRow3Calls:
    def test_direct_call_pre_and_post(self, fib_module):
        result, rec, _ = run(fib_module, "fib", [5])
        assert result == [5]
        pres = rec.of_kind("call_pre")
        posts = rec.of_kind("call_post")
        assert len(pres) == len(posts)  # balanced
        assert pres[0] == ("call_pre", 0, (4,), None)

    def test_call_args_of_all_types(self):
        module = compile_source("""
            func helper(a: i32, b: i64, c: f32, d: f64) -> f64 {
                return f64(a) + f64(b) + f64(c) + d;
            }
            export func f() -> f64 {
                return helper(1, 2L, 1.5f, 0.25);
            }
        """)
        result, rec, _ = run(module, "f")
        assert result == [4.75]
        assert ("call_pre", 0, (1, 2, 1.5, 0.25), None) in rec.events
        assert ("call_post", (4.75,)) in rec.events

    def test_indirect_call_resolves_table_index(self):
        module = compile_source("""
            type op = func(i32) -> i32;
            func inc(x: i32) -> i32 { return x + 1; }
            func dec(x: i32) -> i32 { return x - 1; }
            table [inc, dec];
            export func f(which: i32, x: i32) -> i32 {
                return call_indirect[op](which, x);
            }
        """)
        result, rec, _ = run(module, "f", [1, 10])
        assert result == [9]
        pres = rec.of_kind("call_pre")
        # func index 1 is `dec` (0=inc), resolved through the live table
        assert pres == [("call_pre", 1, (10,), 1)]

    def test_host_calls_also_hooked(self, print_linker):
        module = compile_source("""
            import func print_f64(x: f64);
            export func f() { print_f64(3.5); }
        """)
        _, rec, _ = run(module, "f", linker=print_linker)
        assert ("call_pre", 0, (3.5,), None) in rec.events
        assert print_linker.printed == [3.5]

    def test_return_hook_explicit_and_implicit(self):
        module = compile_source("""
            func implicit() -> i32 { var x: i32 = 3; if (x > 10) { return 0; } return x; }
            export func f() -> i32 { return implicit(); }
        """)
        result, rec, _ = run(module, "f")
        assert result == [3]
        returns = rec.of_kind("return")
        assert ("return", (3,)) in returns


class TestRow4Polymorphic:
    def test_drop_of_each_type(self):
        builder = ModuleBuilder()
        fb = builder.function((), (), export="f")
        for const_op, value in [("i32.const", 1), ("i64.const", 1 << 50),
                                ("f32.const", 0.5), ("f64.const", 2.5)]:
            fb.emit(const_op, value=value)
            fb.emit("drop")
        fb.finish()
        _, rec, _ = run(builder.build(), "f")
        drops = rec.of_kind("drop")
        assert [d[2] for d in drops] == [1, 1 << 50, 0.5, 2.5]

    def test_select_reports_condition_and_operands(self):
        module = compile_source(
            "export func f(c: i32) -> f64 { return select(c, 1.5, 2.5); }")
        result, rec, _ = run(module, "f", [0])
        assert result == [2.5]
        assert ("select", Location(0, 3), False, 1.5, 2.5) in rec.of_kind("select")


class TestRow5ControlFlow:
    def test_br_resolved_target(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.block()           # idx 0
        fb.loop()            # idx 1
        fb.br(1)             # idx 2 -> resolves past block end (idx 4+1)
        fb.end()             # idx 3
        fb.end()             # idx 4
        fb.i32_const(9)      # idx 5
        fb.finish()
        result, rec, _ = run(builder.build(), "f")
        assert result == [9]
        brs = rec.of_kind("br")
        assert len(brs) == 1
        target = brs[0][2]
        assert target.label == 1
        assert target.location == Location(0, 5)

    def test_begin_end_balanced(self, fib_module):
        _, rec, _ = run(fib_module, "fib", [6])
        begins = rec.of_kind("begin")
        ends = rec.of_kind("end")
        assert len(begins) == len(ends)
        # every end's begin_location matches an observed begin
        begin_locs = {(e[2], e[1]) for e in begins}
        for _, kind, _loc, begin in ends:
            if kind != "function":
                assert (begin, kind) in begin_locs

    def test_loop_begin_fires_every_iteration(self):
        module = compile_source("""
            export func f(n: i32) -> i32 {
                var i: i32 = 0;
                while (i < n) { i = i + 1; }
                return i;
            }
        """)
        _, rec, _ = run(module, "f", [4])
        loop_begins = [e for e in rec.of_kind("begin") if e[1] == "loop"]
        # the loop header is re-entered on each of the 4 iterations + entry
        assert len(loop_begins) == 5

    def test_end_hooks_fire_on_branch_out(self):
        """§2.4.5: branching out of nested blocks calls their end hooks."""
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.block()
        fb.block()
        fb.block()
        fb.i32_const(1)
        fb.br_if(2)          # jumps out of all three blocks
        fb.end()
        fb.end()
        fb.end()
        fb.i32_const(3)
        fb.finish()
        _, rec, _ = run(builder.build(), "f")
        ends = [e for e in rec.of_kind("end") if e[1] == "block"]
        assert len(ends) == 3

    def test_end_hooks_not_fired_when_br_if_not_taken(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.block()
        fb.i32_const(0)
        fb.br_if(0)
        fb.end()
        fb.i32_const(3)
        fb.finish()
        _, rec, _ = run(builder.build(), "f")
        ends = [e for e in rec.of_kind("end") if e[1] == "block"]
        assert len(ends) == 1  # only the natural end, not a branch-out end

    def test_br_table_ends_fired_at_runtime(self):
        """§2.4.5: which blocks a br_table leaves is only known at runtime."""
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="f")
        fb.block()           # outer
        fb.block()           # inner
        fb.get_local(0)
        fb.emit("br_table", br_table=BrTable((0, 1), 1))
        fb.end()
        fb.end()
        fb.i32_const(5)
        fb.finish()
        module = builder.build()
        # index 0: leaves only the inner block
        _, rec0, _ = run(module, "f", [0])
        assert len([e for e in rec0.of_kind("end") if e[1] == "block"]) == 2
        # index 1: leaves both blocks via the branch (outer end fires once
        # from the branch; the natural path after the target is skipped)
        _, rec1, _ = run(module, "f", [1])
        assert len([e for e in rec1.of_kind("end") if e[1] == "block"]) == 2
        assert rec1.of_kind("br_table") == [("br_table", 1)]

    def test_if_hook_and_else_blocks(self):
        module = compile_source("""
            export func f(c: i32) -> i32 {
                if (c > 0) { return 1; } else { return 2; }
            }
        """)
        _, rec, _ = run(module, "f", [5])
        assert ("if", True) in rec.events
        kinds = [e[1] for e in rec.of_kind("begin")]
        assert "if" in kinds and "else" not in kinds
        _, rec2, _ = run(module, "f", [-5])
        kinds2 = [e[1] for e in rec2.of_kind("begin")]
        assert "else" in kinds2 and "if" not in kinds2


class TestLocalsGlobals:
    def test_local_ops_reported(self):
        module = compile_source("""
            export func f(x: i32) -> i32 {
                var y: i32 = x + 1;
                return y;
            }
        """)
        _, rec, _ = run(module, "f", [10])
        locals_ = rec.of_kind("local")
        assert ("local", "get_local", 0, 10) in locals_
        assert ("local", "set_local", 1, 11) in locals_
        assert ("local", "get_local", 1, 11) in locals_

    def test_global_ops_reported(self):
        module = compile_source("""
            global g: i64 = 5;
            export func f() -> i64 {
                g = g + 1;
                return g;
            }
        """)
        _, rec, _ = run(module, "f")
        globals_ = rec.of_kind("global")
        assert ("global", "get_global", 0, 5) in globals_
        assert ("global", "set_global", 0, 6) in globals_


class TestNopUnreachable:
    def test_nop(self):
        module = compile_source("export func f() { nop(); }")
        _, rec, _ = run(module, "f")
        assert len(rec.of_kind("nop")) == 1

    def test_unreachable_hook_fires_before_trap(self):
        from repro.wasm.errors import Trap
        module = compile_source("export func f() { unreachable(); }")
        recorder = Recorder()
        session = analyze(module, recorder)
        with pytest.raises(Trap):
            session.invoke("f")
        assert len(recorder.of_kind("unreachable")) == 1
