"""Automatic test-case reduction for crashing inputs (delta debugging).

A fuzz campaign hands triage a mutant of a few hundred bytes whose
interesting property — the pipeline stage it breaks and the error class it
raises — usually depends on a handful of them. This module shrinks such
inputs with ddmin-style delta debugging (Zeller & Hildebrandt, "Simplifying
and Isolating Failure-Inducing Input"): repeatedly try removing chunks of
the input at progressively finer granularity, keeping any candidate that
still reproduces the failure *signature* (stage + outcome + error class;
messages are allowed to drift, since byte offsets embedded in them change
under deletion).

Two reducers share the algorithm:

* :func:`reduce_failure` — shrink a crashing binary's *bytes*;
* :func:`reduce_invocations` — shrink an *invocation sequence* (the list of
  export calls recorded in an invoke crash bundle) while the failure
  persists.

Both are deterministic: the same input and predicate always produce the
same reduced output, so a reduced crash bundle replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .faultinject import Classification, classify

#: Default budget of predicate evaluations per reduction. Each test runs
#: the full pipeline on a candidate, so this bounds reduction latency; the
#: algorithm degrades gracefully (keeps its best-so-far) when exhausted.
DEFAULT_MAX_TESTS = 2000


@dataclass
class Reduction:
    """Result of one reduction run."""

    original_size: int
    reduced_size: int
    signature: tuple
    tests: int

    @property
    def ratio(self) -> float:
        """Fraction of the original removed (0.0 = nothing, 1.0 = all)."""
        if not self.original_size:
            return 0.0
        return 1.0 - self.reduced_size / self.original_size

    def summary(self) -> str:
        return (f"reduced {self.original_size} -> {self.reduced_size} "
                f"({self.ratio:.0%} smaller, {self.tests} pipeline runs)")


def _ddmin(items: Sequence, predicate: Callable[[Sequence], bool],
           max_tests: int) -> tuple[Sequence, int]:
    """Complement-based ddmin over any sliceable sequence.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the failure; ``items`` itself is assumed to. Returns the
    1-minimal-ish reduced sequence and the number of predicate calls.
    """
    tests = 0
    n = 2
    while len(items) >= 2 and tests < max_tests:
        shrunk = False
        for i in range(n):
            lo = len(items) * i // n
            hi = len(items) * (i + 1) // n
            if lo == hi:
                continue
            candidate = items[:lo] + items[hi:]
            tests += 1
            if predicate(candidate):
                # removing this chunk keeps the failure: restart from the
                # reduced input at comparable granularity
                items = candidate
                n = max(n - 1, 2)
                shrunk = True
                break
            if tests >= max_tests:
                break
        if not shrunk:
            if n >= len(items):
                break  # single-element granularity and nothing removable
            n = min(n * 2, len(items))
    return items, tests


def reduce_bytes(data: bytes, predicate: Callable[[bytes], bool],
                 max_tests: int = DEFAULT_MAX_TESTS) -> tuple[bytes, int]:
    """ddmin over a byte string with an arbitrary predicate."""
    if not predicate(data):
        raise ValueError("input does not satisfy the predicate to begin with")
    return _ddmin(data, predicate, max_tests)


def reduce_failure(binary: bytes,
                   target: Classification | None = None,
                   execute: bool = True,
                   engines: tuple[bool, ...] = (True, False),
                   max_tests: int = DEFAULT_MAX_TESTS,
                   ) -> tuple[bytes, Reduction]:
    """Shrink a failing binary while preserving its failure signature.

    ``target`` defaults to classifying ``binary`` first; it must be a
    failing classification (outcome ``rejected`` or ``escape``) — reducing
    a passing input is meaningless. Returns the reduced bytes and the
    :class:`Reduction` record.
    """
    if target is None:
        target = classify(binary, execute=execute, engines=engines)
    if target.outcome == "pass":
        raise ValueError("refusing to reduce a passing input "
                         "(no failure signature to preserve)")
    signature = target.signature

    def still_fails(candidate: bytes) -> bool:
        return classify(candidate, execute=execute,
                        engines=engines).signature == signature

    reduced, tests = _ddmin(binary, still_fails, max_tests)
    return bytes(reduced), Reduction(original_size=len(binary),
                                     reduced_size=len(reduced),
                                     signature=signature, tests=tests)


def reduce_invocations(invocations: list,
                       predicate: Callable[[list], bool],
                       max_tests: int = DEFAULT_MAX_TESTS,
                       ) -> tuple[list, Reduction]:
    """Shrink an invocation sequence while ``predicate`` keeps failing.

    ``predicate`` receives a candidate subsequence of the recorded
    ``{"export": ..., "args": [...]}`` invocation dicts and returns True
    when replaying it still reproduces the failure.
    """
    if not predicate(invocations):
        raise ValueError("invocation sequence does not reproduce the failure")
    reduced, tests = _ddmin(list(invocations), predicate, max_tests)
    return list(reduced), Reduction(original_size=len(invocations),
                                    reduced_size=len(reduced),
                                    signature=("invocations",), tests=tests)


def reduce_bundle(bundle, execute: bool = True,
                  engines: tuple[bool, ...] = (True, False),
                  max_tests: int = DEFAULT_MAX_TESTS) -> Reduction:
    """Reduce a pipeline crash bundle in place.

    Shrinks the bundle's module bytes against the manifest's recorded
    stage/outcome/error class, rewrites ``module.wasm``, and records the
    reduction (original size, reduced size, pipeline runs) in the
    manifest. The reduced bundle replays exactly like the original:
    ``repro replay`` compares stage and error class, which the predicate
    preserved by construction.
    """
    import json

    error = bundle.manifest.get("error", {})
    target = Classification(stage=error.get("stage"),
                            outcome=error.get("outcome", "escape"),
                            exc_type=error.get("type"),
                            message=error.get("message"))
    reduced, reduction = reduce_failure(bundle.module_bytes, target=target,
                                        execute=execute, engines=engines,
                                        max_tests=max_tests)
    (bundle.path / "module.wasm").write_bytes(reduced)
    bundle.module_bytes = reduced
    bundle.manifest["reduction"] = {
        "original_size": reduction.original_size,
        "reduced_size": reduction.reduced_size,
        "tests": reduction.tests,
    }
    (bundle.path / "manifest.json").write_text(
        json.dumps(bundle.manifest, indent=2, default=str) + "\n")
    return reduction
