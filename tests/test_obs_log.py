"""Structured logging and the flight recorder (repro.obs.log).

The contract the service layer leans on:

* every record lands in the bounded flight recorder regardless of level —
  the ring is the crash-bundle black box, the level only gates the
  file/stream sinks;
* the file sink is one JSON object per line (schema ``repro.log/1``) with
  size-based rotation;
* the stream sink renders a short human-readable line, resolving the
  literal ``"stderr"`` at write time so pytest capture works;
* ``flight_to_jsonl``/``flight_from_jsonl`` round-trip the ring into the
  bundle file format, rejecting corrupt payloads loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (LOG_SCHEMA, FlightRecorder, StructuredLogger,
                       flight_from_jsonl, flight_to_jsonl, get_logger)
from repro.obs.log import LEVELS


class TestFlightRecorder:
    def test_bounded_ring(self):
        ring = FlightRecorder(capacity=3)
        for i in range(10):
            ring.record({"event": f"e{i}"})
        assert len(ring) == 3
        assert [e["event"] for e in ring.tail()] == ["e7", "e8", "e9"]

    def test_tail_n(self):
        ring = FlightRecorder(capacity=8)
        for i in range(5):
            ring.record({"event": f"e{i}"})
        assert [e["event"] for e in ring.tail(2)] == ["e3", "e4"]
        assert len(ring.tail(100)) == 5
        assert ring.tail(0) == []


class TestStructuredLogger:
    def test_levels_gate_sinks_but_not_ring(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger("t", level="warning", path=path)
        logger.debug("below")
        logger.info("also_below")
        logger.warning("at_threshold")
        logger.error("above")
        # the ring saw everything
        assert [e["event"] for e in logger.tail()] == [
            "below", "also_below", "at_threshold", "above"]
        # the file only saw warning+
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [e["event"] for e in lines] == ["at_threshold", "above"]
        logger.close()

    def test_record_shape_and_injected_clock(self):
        ticks = iter([100.5, 101.0])
        logger = StructuredLogger("shape", clock=lambda: next(ticks))
        record = logger.info("worker_killed", worker=3, kill_class="oom")
        assert record == {"ts": 100.5, "level": "info", "logger": "shape",
                          "event": "worker_killed", "worker": 3,
                          "kill_class": "oom"}
        assert logger.error("next")["ts"] == 101.0

    def test_unknown_level_rejected(self):
        logger = StructuredLogger("t")
        with pytest.raises(ValueError, match="unknown log level"):
            logger.log("loud", "event")

    def test_file_is_jsonl_sorted_keys(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger("t", level="debug", path=path)
        logger.info("b_event", zeta=1, alpha=2)
        logger.close()
        line = path.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_rotation(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger("t", level="debug", path=path,
                                  max_bytes=200, backups=2)
        for i in range(40):
            logger.info("filler", n=i, pad="x" * 40)
        logger.close()
        assert path.exists()
        assert (tmp_path / "log.jsonl.1").exists()
        assert (tmp_path / "log.jsonl.2").exists()
        assert not (tmp_path / "log.jsonl.3").exists()
        # every surviving line is still valid JSON
        for name in ("log.jsonl", "log.jsonl.1", "log.jsonl.2"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_stderr_resolved_at_write_time(self, capsys):
        logger = StructuredLogger("echo", level="warning", stream="stderr")
        logger.warning("serve_worker_killed", msg="deadline blown",
                       worker=1, kill_class="timeout")
        err = capsys.readouterr().err
        assert "repro[warning] echo: serve_worker_killed" in err
        assert "deadline blown" in err
        assert "kill_class=timeout" in err

    def test_stream_below_level_is_silent(self, capsys):
        logger = StructuredLogger("quiet", level="error", stream="stderr")
        logger.info("chatter")
        assert capsys.readouterr().err == ""

    def test_shared_recorder(self):
        ring = FlightRecorder(capacity=16)
        a = StructuredLogger("a", recorder=ring)
        b = StructuredLogger("b", recorder=ring)
        a.info("from_a")
        b.info("from_b")
        assert [e["logger"] for e in ring.tail()] == ["a", "b"]

    def test_get_logger_is_singleton_per_name(self):
        assert get_logger("repro.test-x") is get_logger("repro.test-x")
        assert get_logger("repro.test-x") is not get_logger("repro.test-y")


class TestFlightSerialization:
    def test_round_trip(self):
        entries = [{"ts": 1.0, "level": "info", "logger": "t",
                    "event": "spawn", "worker": 0},
                   {"ts": 2.0, "level": "warning", "logger": "t",
                    "event": "kill", "kill_class": "oom"}]
        text = flight_to_jsonl(entries)
        header = json.loads(text.splitlines()[0])
        assert header == {"schema": LOG_SCHEMA, "entries": 2}
        assert flight_from_jsonl(text) == entries

    def test_empty_round_trip(self):
        assert flight_from_jsonl(flight_to_jsonl([])) == []

    def test_rejects_empty_text(self):
        with pytest.raises(ValueError, match="empty flight log"):
            flight_from_jsonl("")

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            flight_from_jsonl('{"schema": "not-a-log/9"}\n')

    def test_rejects_non_object_entry(self):
        text = flight_to_jsonl([]) + "[1, 2, 3]\n"
        with pytest.raises(ValueError, match="not an object"):
            flight_from_jsonl(text)

    def test_rejects_garbage(self):
        with pytest.raises((ValueError, json.JSONDecodeError)):
            flight_from_jsonl("not json at all\n")


def test_level_table_is_ordered():
    assert (LEVELS["debug"] < LEVELS["info"]
            < LEVELS["warning"] < LEVELS["error"])
