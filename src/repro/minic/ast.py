"""Abstract syntax tree of MiniC.

MiniC is the small C-like language this reproduction uses in place of the
paper's emscripten-compiled C: statically typed over WebAssembly's four
value types, with explicit casts, linear-memory "arrays" (``mem_f64[i]``),
and direct access to a function table for indirect calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..wasm.types import ValType


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------

@dataclass
class Expr(Node):
    #: filled in by the type checker; None means void
    type: ValType | None = None


@dataclass
class IntLiteral(Expr):
    value: int = 0
    suffix: str | None = None  # 'L' forces i64


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    suffix: str | None = None  # 'f' forces f32


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    op: str = ""            # '-', '!', '~'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class IndirectCall(Expr):
    """``call_indirect[typename](index_expr, args...)``"""

    typename: str = ""
    index: Expr | None = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class MemAccess(Expr):
    """``mem_T[index]`` — element ``index`` of a typed view of linear memory."""

    view: str = ""          # 'i32' | 'i64' | 'f32' | 'f64' | 'u8' | 'u16'
    index: Expr | None = None


@dataclass
class Cast(Expr):
    """``T(expr)`` — explicit numeric conversion with C semantics."""

    target: ValType | None = None
    operand: Expr | None = None


@dataclass
class Select(Expr):
    """``select(cond, a, b)`` — maps to the ``select`` instruction."""

    condition: Expr | None = None
    if_true: Expr | None = None
    if_false: Expr | None = None


@dataclass
class Builtin(Expr):
    """Intrinsics: sqrt, abs, min, max, floor, ceil, nearest, trunc,
    copysign, clz, ctz, popcnt, rotl, rotr, memory_size, memory_grow,
    nop, unreachable, and the unsigned operators div_u/rem_u/shr_u/lt_u…"""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ---------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    valtype: ValType | None = None
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Name | MemAccess | None = None
    value: Expr | None = None


@dataclass
class If(Stmt):
    condition: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    condition: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


# -- top-level ------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    valtype: ValType | None = None


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    result: ValType | None = None
    body: list[Stmt] = field(default_factory=list)
    exported: bool = False
    imported: bool = False
    import_module: str = "env"


@dataclass
class GlobalDecl(Node):
    name: str = ""
    valtype: ValType | None = None
    init: Expr | None = None
    exported: bool = False


@dataclass
class TypeDecl(Node):
    """``type name = func(T, ...) -> T;`` for indirect-call signatures."""

    name: str = ""
    params: list[ValType] = field(default_factory=list)
    result: ValType | None = None


@dataclass
class TableDecl(Node):
    """``table [f, g, h];`` — the function table, in declaration order."""

    entries: list[str] = field(default_factory=list)


@dataclass
class MemoryDecl(Node):
    pages: int = 1


@dataclass
class Program(Node):
    functions: list[FuncDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    types: list[TypeDecl] = field(default_factory=list)
    table: TableDecl | None = None
    memory: MemoryDecl | None = None
    start: str | None = None
