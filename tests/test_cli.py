"""The command-line interface: instrument / validate / compile / run / stats,
plus the exit-status taxonomy and the record/replay/bundle verbs."""

import json

import pytest

from repro.cli import (EXIT_ANALYSIS_FAULT, EXIT_MALFORMED,
                       EXIT_REPLAY_DIVERGENCE, EXIT_RESOURCE_EXHAUSTED,
                       EXIT_TRAP, exit_status, main)
from repro.wasm import (AnalysisAbort, AnalysisError, DecodeError,
                        FuelExhausted, ReplayDivergence, Trap, ValidationError,
                        WasmError, decode_module, encode_module, parse_wat)


@pytest.fixture
def wasm_file(tmp_path, fib_module):
    path = tmp_path / "fib.wasm"
    path.write_bytes(encode_module(fib_module))
    return path


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        import func print_f64(x: f64);
        export func main(n: i32) -> f64 {
            var s: f64 = 0.0;
            var i: i32;
            for (i = 0; i < n; i = i + 1) { s = s + f64(i) * 0.5; }
            print_f64(s);
            return s;
        }
    """)
    return path


class TestInstrument:
    def test_basic(self, wasm_file, tmp_path, capsys):
        out = tmp_path / "out.wasm"
        code = main(["instrument", str(wasm_file), "-o", str(out)])
        assert code == 0
        module = decode_module(out.read_bytes())
        assert module.num_imported_functions > 0  # hooks imported
        assert "hooks generated" in capsys.readouterr().out

    def test_selective(self, wasm_file, tmp_path):
        out_all = tmp_path / "all.wasm"
        out_call = tmp_path / "call.wasm"
        main(["instrument", str(wasm_file), "-o", str(out_all)])
        main(["instrument", str(wasm_file), "-o", str(out_call),
              "--hooks", "call,return"])
        assert out_call.stat().st_size < out_all.stat().st_size

    def test_unknown_hook(self, wasm_file, tmp_path, capsys):
        assert main(["instrument", str(wasm_file), "--hooks", "bogus"]) == 2
        assert "unknown hooks" in capsys.readouterr().err

    def test_metadata(self, wasm_file, tmp_path):
        out = tmp_path / "out.wasm"
        meta = tmp_path / "meta.json"
        main(["instrument", str(wasm_file), "-o", str(out),
              "--metadata", str(meta)])
        data = json.loads(meta.read_text())
        assert data["hooks"] and data["functions"]
        assert data["functions"][0]["name"] == "fib"


class TestValidate:
    def test_valid(self, wasm_file, capsys):
        assert main(["validate", str(wasm_file)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.wasm"
        bad.write_bytes(b"\x00asm\x01\x00\x00\x00\x63\x01\x00")
        assert main(["validate", str(bad)]) == EXIT_MALFORMED
        assert "INVALID" in capsys.readouterr().err


class TestObjdumpAndStats:
    def test_objdump(self, wasm_file, capsys):
        assert main(["objdump", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert "(module" in out and "get_local" in out

    def test_stats(self, wasm_file, capsys):
        assert main(["stats", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert "instructions:" in out and "fib" in out


class TestCompileAndRun:
    def test_compile(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        assert main(["compile", str(minic_file), "-o", str(out)]) == 0
        decode_module(out.read_bytes())

    def test_run_uninstrumented(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "5"]) == 0
        output = capsys.readouterr().out
        assert "main(5) = [5.0]" in output
        assert "[print] 5.0" in output

    def test_run_with_analysis(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "5", "--analysis", "mix"]) == 0
        output = capsys.readouterr().out
        assert "instruction mix:" in output
        assert "f64.add" in output

    def test_run_cryptominer_analysis(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "3",
                     "--analysis", "cryptominer"]) == 0
        assert "suspicious: False" in capsys.readouterr().out

    def test_roundtrip_instrument_then_run(self, minic_file, tmp_path, capsys):
        """Instrumented binaries written to disk are self-contained except
        for their hook imports — running them requires the runtime, so the
        CLI run command instruments in-process instead."""
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "4", "--analysis", "blocks"]) == 0
        assert "loop" in capsys.readouterr().out


# a module that calls env.print_i32 once, then traps OOB when passed >= 65533
TRAP_WAT = """
(module
  (import "env" "print_i32" (func $p (param i32)))
  (memory 1)
  (func (export "boom") (param i32) (result i32)
    local.get 0
    call $p
    local.get 0
    i32.const 70000
    i32.store
    local.get 0)
)
"""


@pytest.fixture
def trap_file(tmp_path):
    path = tmp_path / "boom.wasm"
    path.write_bytes(encode_module(parse_wat(TRAP_WAT)))
    return path


class TestExitTaxonomy:
    """The documented exit-status classes, pinned."""

    def test_exit_status_classification(self):
        assert exit_status(Trap("x")) == EXIT_TRAP
        assert exit_status(FuelExhausted("x")) == EXIT_RESOURCE_EXHAUSTED
        assert exit_status(DecodeError("x")) == EXIT_MALFORMED
        assert exit_status(ValidationError("x")) == EXIT_MALFORMED
        assert exit_status(AnalysisError("x")) == EXIT_ANALYSIS_FAULT
        # AnalysisAbort subclasses both AnalysisError and Trap; the
        # analysis classification must win
        assert exit_status(AnalysisAbort("x")) == EXIT_ANALYSIS_FAULT
        assert exit_status(ReplayDivergence("x")) == EXIT_REPLAY_DIVERGENCE
        assert exit_status(WasmError("x")) == 1

    def test_trap_exits_3(self, trap_file, capsys):
        assert main(["run", str(trap_file), "boom", "70000"]) == EXIT_TRAP
        assert "out of bounds" in capsys.readouterr().err

    def test_fuel_exhaustion_exits_4(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        code = main(["run", str(out), "main", "100000", "--fuel", "10"])
        assert code == EXIT_RESOURCE_EXHAUSTED
        assert "resource limit hit" in capsys.readouterr().err

    def test_malformed_run_input_exits_5(self, tmp_path, capsys):
        bad = tmp_path / "bad.wasm"
        bad.write_bytes(b"not wasm at all")
        assert main(["run", str(bad), "main"]) == EXIT_MALFORMED


class TestRecordReplay:
    def test_record_then_replay_both_engines(self, trap_file, tmp_path,
                                             capsys):
        bundle = tmp_path / "bundle"
        assert main(["run", str(trap_file), "boom", "7",
                     "--record", str(bundle)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle)]) == 0
        assert "reproduced" in capsys.readouterr().out
        assert main(["replay", str(bundle), "--engine", "legacy"]) == 0
        assert main(["replay", str(bundle), "--engine", "predecode"]) == 0

    def test_crash_dir_written_only_on_failure(self, trap_file, tmp_path,
                                               capsys):
        crashes = tmp_path / "crashes"
        assert main(["run", str(trap_file), "boom", "7",
                     "--crash-dir", str(crashes)]) == 0
        assert not crashes.exists()
        assert main(["run", str(trap_file), "boom", "70000",
                     "--crash-dir", str(crashes)]) == EXIT_TRAP
        assert (crashes / "boom" / "manifest.json").is_file()

    def test_crash_bundle_replays_trap_cross_engine(self, trap_file, tmp_path,
                                                    capsys):
        crashes = tmp_path / "crashes"
        main(["run", str(trap_file), "boom", "70000",
              "--crash-dir", str(crashes)])
        capsys.readouterr()
        assert main(["replay", str(crashes / "boom"),
                     "--engine", "legacy"]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out and "out of bounds" in out

    def test_perturbed_log_diverges(self, trap_file, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        main(["run", str(trap_file), "boom", "70000", "--record", str(bundle)])
        log = bundle / "replay.jsonl"
        lines = log.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["args"] = [99]
        lines[1] = json.dumps(entry)
        log.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["replay", str(bundle)]) == EXIT_REPLAY_DIVERGENCE
        assert "DIVERGED" in capsys.readouterr().err

    def test_bundle_inspect_and_verify(self, trap_file, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        main(["run", str(trap_file), "boom", "70000", "--record", str(bundle)])
        capsys.readouterr()
        assert main(["bundle", str(bundle), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "invoke crash bundle" in out
        assert "verify: ok" in out

    def test_bundle_on_missing_directory(self, tmp_path, capsys):
        assert main(["bundle", str(tmp_path / "nope")]) == 1
        assert "not a crash bundle" in capsys.readouterr().err

    def test_record_with_analysis(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        bundle = tmp_path / "bundle"
        assert main(["run", str(out), "main", "5", "--analysis", "mix",
                     "--record", str(bundle)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle)]) == 0
        assert "reproduced" in capsys.readouterr().out


class TestFuzzBundles:
    def test_save_failures_flag_accepted(self, tmp_path, capsys):
        # the seeded campaign has no escapes; the flag must still parse and
        # the directory stays absent (bundles are only written on escapes)
        failures = tmp_path / "failures"
        assert main(["fuzz", "--mutants", "30", "--seed", "20260806",
                     "--save-failures", str(failures), "--reduce"]) == 0
        assert not failures.exists()
