"""Shared numeric helpers: two's-complement conversions and IEEE-754 bit casts.

Used by the binary encoder/decoder and by the interpreter's value semantics.
"""

from __future__ import annotations

import math
import struct


def to_unsigned(value: int, bits: int) -> int:
    """Map an integer into the unsigned two's-complement range [0, 2**bits)."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int) -> int:
    """Map an integer into the signed two's-complement range [-2**(bits-1), 2**(bits-1))."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def f32_round(x: float) -> float:
    """Round a Python float (binary64) to the nearest binary32 value.

    Values beyond the binary32 range overflow to ±infinity, as IEEE-754
    round-to-nearest prescribes (struct.pack raises instead of rounding).
    """
    try:
        return struct.unpack("<f", struct.pack("<f", x))[0]
    except OverflowError:
        return math.copysign(math.inf, x)


def f32_bits(x: float) -> int:
    """The IEEE-754 binary32 bit pattern of ``x`` as an unsigned 32-bit int."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def f32_from_bits(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def f64_bits(x: float) -> int:
    """The IEEE-754 binary64 bit pattern of ``x`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def f64_from_bits(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def is_canonical_nan(x: float) -> bool:
    return math.isnan(x)
