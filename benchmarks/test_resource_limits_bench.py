"""Resource-limits overhead floor: metering must be pay-as-you-go.

Two claims are pinned here, on the Figure 9 PolyBench fast subset:

1. **Disabled limits are (near-)free.** A machine built without
   ``ResourceLimits`` runs the exact interpreter loops with a single
   hoisted ``meter is not None`` test at each taken branch. The test
   measures that guard's cost directly (timeit differencing) and
   multiplies by the exact number of guarded events per run (the meter
   itself counts them as ``fuel_spent``), yielding a deterministic
   upper-bound estimate of the disabled-path overhead. Floor: <= 2%.

2. **Active metering is cheap.** With generous fuel + deadline budgets
   (never hit), the metered run stays within 1.5x of the unmetered run.

Results are recorded in ``benchmarks/results/BENCH_limits.json``.
"""

from __future__ import annotations

import json
import statistics
import time
import timeit

from repro.eval import POLYBENCH_FAST_SUBSET, polybench_workloads
from repro.interp import Machine, ResourceLimits
from repro.wasm import FuelExhausted

from conftest import full_run

#: budgets chosen so no Fig. 9 workload ever hits them
GENEROUS = ResourceLimits(fuel=10**12, deadline_seconds=3600.0)


def _guard_cost_seconds() -> float:
    """Per-event cost of the disabled-path guard, ``meter is not None``.

    Measured as the difference between a timeit loop running the guard
    and one running ``pass``, so timeit's own loop overhead cancels out.
    """
    n = 2_000_000
    guarded = min(timeit.repeat("if meter is not None: pass",
                                globals={"meter": None},
                                number=n, repeat=7)) / n
    empty = min(timeit.repeat("pass", number=n, repeat=7)) / n
    return max(guarded - empty, 0.0)


def _time_workload(workload, limits, repeats):
    """Best-of-``repeats`` invoke time; also the per-run metered events."""
    module = workload.module()
    best, events = float("inf"), 0
    for _ in range(repeats):
        machine = Machine(limits=limits)
        instance = machine.instantiate(module, workload.linker())
        start = time.perf_counter()
        instance.invoke(workload.entry, workload.args)
        best = min(best, time.perf_counter() - start)
        if limits is not None:
            events = machine.resource_usage().fuel_spent
    return best, events


def test_limits_overhead(benchmark, results_dir):
    repeats = 5 if full_run() else 3
    guard_s = _guard_cost_seconds()
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)

    rows = []
    for workload in workloads:
        off_seconds, _ = _time_workload(workload, None, repeats)
        metered_seconds, events = _time_workload(workload, GENEROUS, repeats)
        disabled_overhead = events * guard_s / off_seconds
        rows.append({
            "name": workload.name,
            "off_seconds": off_seconds,
            "metered_seconds": metered_seconds,
            "metered_overhead": metered_seconds / off_seconds,
            "metered_events": events,
            "disabled_overhead": disabled_overhead,
        })

    payload = {
        "guard_ns": guard_s * 1e9,
        "workloads": rows,
        "geomean_metered_overhead": statistics.geometric_mean(
            r["metered_overhead"] for r in rows),
        "max_disabled_overhead": max(r["disabled_overhead"] for r in rows),
    }
    path = results_dir / "BENCH_limits.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(f"{r['name']:16s} off={r['off_seconds']:.4f}s "
              f"metered={r['metered_overhead']:.3f}x "
              f"events={r['metered_events']} "
              f"disabled~{r['disabled_overhead']:.5%}")
    print(f"guard cost {payload['guard_ns']:.2f} ns/event; "
          f"geomean metered {payload['geomean_metered_overhead']:.3f}x; "
          f"max disabled {payload['max_disabled_overhead']:.4%} "
          f"[recorded in {path}]")

    # (1) the ISSUE floor: disabled-limits path costs <= 2% on every kernel
    assert payload["max_disabled_overhead"] <= 0.02, payload
    # (2) metering itself stays cheap even when armed
    assert payload["geomean_metered_overhead"] <= 1.5, payload

    # the pytest-benchmark number: metered gemm on the predecoded engine
    gemm = polybench_workloads(["gemm"])[0]
    benchmark.pedantic(lambda: _time_workload(gemm, GENEROUS, 1),
                       rounds=1, iterations=1)


def test_metering_bites_on_bench_path(results_dir):
    """The same bench harness traps when a budget actually binds —
    guarding against a silently dead meter making claim (2) vacuous."""
    gemm = polybench_workloads(["gemm"])[0]
    module = gemm.module()
    for predecode in (True, False):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(fuel=100))
        instance = machine.instantiate(module, gemm.linker())
        try:
            instance.invoke(gemm.entry, gemm.args)
        except FuelExhausted:
            continue
        raise AssertionError(
            f"fuel budget never bound on gemm (predecode={predecode})")
