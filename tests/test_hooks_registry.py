"""On-demand monomorphization of low-level hooks (paper §2.4.3)."""

from repro.core.hooks import HookRegistry, eager_hook_count, split_i64
from repro.wasm.types import F32, F64, I32, I64


class TestSplitI64:
    def test_i64_becomes_two_i32(self):
        assert split_i64((I64,)) == (I32, I32)

    def test_mixed(self):
        assert split_i64((I32, I64, F64)) == (I32, I32, I32, F64)

    def test_empty(self):
        assert split_i64(()) == ()


class TestOnDemandMonomorphization:
    def test_same_key_returns_same_hook(self):
        registry = HookRegistry()
        a = registry.get_or_create("drop", (I32,), (I32,))
        b = registry.get_or_create("drop", (I32,), (I32,))
        assert a is b
        assert len(registry) == 1

    def test_different_types_different_hooks(self):
        registry = HookRegistry()
        registry.get_or_create("drop", (I32,), (I32,))
        registry.get_or_create("drop", (F64,), (F64,))
        assert len(registry) == 2

    def test_indices_are_dense(self):
        registry = HookRegistry()
        specs = [registry.get_or_create("const", (t,), (t,))
                 for t in (I32, I64, F32, F64)]
        assert [s.index for s in specs] == [0, 1, 2, 3]

    def test_call_hooks_monomorphized_per_signature(self):
        registry = HookRegistry()
        registry.get_or_create("call_pre", ("direct", I32), (I32,))
        registry.get_or_create("call_pre", ("direct", I32, F64), (I32, F64))
        registry.get_or_create("call_pre", ("direct", I32), (I32,))
        assert len(registry) == 2

    def test_location_params_appended(self):
        registry = HookRegistry()
        spec = registry.get_or_create("binary", ("i64.add",), (I64, I64, I64))
        # 3 i64 -> 6 i32, + 2 location i32
        assert spec.wasm_params == (I32,) * 8

    def test_no_location_variant(self):
        registry = HookRegistry(with_locations=False)
        spec = registry.get_or_create("br", (), ())
        assert spec.wasm_params == ()

    def test_names_stable_and_unique(self):
        registry = HookRegistry()
        names = set()
        registry.get_or_create("unary", ("f32.convert_s/i32",), (I32, F32))
        registry.get_or_create("local", ("get_local", I32), (I32,))
        registry.get_or_create("begin", ("loop",), ())
        registry.get_or_create("call_pre", ("indirect", F64), (I32, F64))
        for spec in registry.hooks:
            assert spec.name not in names
            names.add(spec.name)
            # import names must be identifier-ish (no '.' or '/')
            assert "." not in spec.name and "/" not in spec.name


class TestEagerCount:
    def test_matches_paper_arithmetic(self):
        # §2.4.3: hooks for calls with up to 10 params -> 4^10 variants
        assert eager_hook_count(10) > 4 ** 10
        # §4.5: the UE4 binary has a call with 22 args -> ~1.7e13 eager hooks
        assert eager_hook_count(22) > 1.7e13
