"""PolyBench solvers: cholesky, durbin, gramschmidt, lu, ludcmp, trisolv."""

from __future__ import annotations

from .common import register


def _spd_matrix_init(n: int, a: int) -> str:
    """Initialize a symmetric positive-definite matrix at base ``a``
    (PolyBench's standard trick: B = A*A' with diagonally dominant A)."""
    b = a + n * n
    return f"""
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j <= i; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = f64(0 - (j % {n})) / {float(n)} + 1.0;
        }}
        for (j = i + 1; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = 0.0;
        }}
        mem_f64[{a} + i*{n} + i] = 1.0;
    }}
    // B = A * A^T, then copy back (makes A positive semi-definite)
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            var acc: f64 = 0.0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + mem_f64[{a} + i*{n} + k] * mem_f64[{a} + j*{n} + k];
            }}
            mem_f64[{b} + i*{n} + j] = acc;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = mem_f64[{b} + i*{n} + j];
        }}
    }}
"""


@register("cholesky", "linear-algebra/solvers", 10)
def cholesky(n: int) -> str:
    a = 0
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    {_spd_matrix_init(n, a)}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < i; j = j + 1) {{
            for (k = 0; k < j; k = k + 1) {{
                mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j]
                    - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + j*{n} + k];
            }}
            mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j] / mem_f64[{a} + j*{n} + j];
        }}
        for (k = 0; k < i; k = k + 1) {{
            mem_f64[{a} + i*{n} + i] = mem_f64[{a} + i*{n} + i]
                - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + i*{n} + k];
        }}
        mem_f64[{a} + i*{n} + i] = sqrt(mem_f64[{a} + i*{n} + i]);
        print_f64(mem_f64[{a} + i*{n} + i]);
    }}
    var result: f64 = checksum_f64({a}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("durbin", "linear-algebra/solvers", 12)
def durbin(n: int) -> str:
    r, y, z = 0, n, 2 * n
    return f"""
memory 2;

export func main() -> f64 {{
    var i: i32; var k: i32;
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{r} + i] = f64({n} + 1 - i);
    }}
    mem_f64[{y}] = 0.0 - mem_f64[{r}];
    var beta: f64 = 1.0;
    var alpha: f64 = 0.0 - mem_f64[{r}];
    for (k = 1; k < {n}; k = k + 1) {{
        beta = (1.0 - alpha * alpha) * beta;
        var summ: f64 = 0.0;
        for (i = 0; i < k; i = i + 1) {{
            summ = summ + mem_f64[{r} + k - i - 1] * mem_f64[{y} + i];
        }}
        alpha = 0.0 - (mem_f64[{r} + k] + summ) / beta;
        for (i = 0; i < k; i = i + 1) {{
            mem_f64[{z} + i] = mem_f64[{y} + i] + alpha * mem_f64[{y} + k - i - 1];
        }}
        for (i = 0; i < k; i = i + 1) {{
            mem_f64[{y} + i] = mem_f64[{z} + i];
        }}
        mem_f64[{y} + k] = alpha;
        print_f64(alpha);
    }}
    var result: f64 = checksum_f64({y}, {n});
    print_f64(result);
    return result;
}}
"""


@register("gramschmidt", "linear-algebra/solvers", 10)
def gramschmidt(n: int) -> str:
    a, r, q = 0, n * n, 2 * n * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            mem_f64[{a} + i*{n} + j] = (f64((i*j) % {n}) / {float(n)}) * 100.0 + 10.0;
            mem_f64[{q} + i*{n} + j] = 0.0;
            mem_f64[{r} + i*{n} + j] = 0.0;
        }}
    }}
    for (k = 0; k < {n}; k = k + 1) {{
        var nrm: f64 = 0.0;
        for (i = 0; i < {n}; i = i + 1) {{
            nrm = nrm + mem_f64[{a} + i*{n} + k] * mem_f64[{a} + i*{n} + k];
        }}
        mem_f64[{r} + k*{n} + k] = sqrt(nrm);
        for (i = 0; i < {n}; i = i + 1) {{
            mem_f64[{q} + i*{n} + k] = mem_f64[{a} + i*{n} + k] / mem_f64[{r} + k*{n} + k];
        }}
        for (j = k + 1; j < {n}; j = j + 1) {{
            mem_f64[{r} + k*{n} + j] = 0.0;
            for (i = 0; i < {n}; i = i + 1) {{
                mem_f64[{r} + k*{n} + j] = mem_f64[{r} + k*{n} + j]
                    + mem_f64[{q} + i*{n} + k] * mem_f64[{a} + i*{n} + j];
            }}
            for (i = 0; i < {n}; i = i + 1) {{
                mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j]
                    - mem_f64[{q} + i*{n} + k] * mem_f64[{r} + k*{n} + j];
            }}
        }}
        print_f64(mem_f64[{r} + k*{n} + k]);
    }}
    var result: f64 = checksum_f64({r}, {n * n}) + checksum_f64({q}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("lu", "linear-algebra/solvers", 10)
def lu(n: int) -> str:
    a = 0
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    {_spd_matrix_init(n, a)}
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < i; j = j + 1) {{
            for (k = 0; k < j; k = k + 1) {{
                mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j]
                    - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + k*{n} + j];
            }}
            mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j] / mem_f64[{a} + j*{n} + j];
        }}
        for (j = i; j < {n}; j = j + 1) {{
            for (k = 0; k < i; k = k + 1) {{
                mem_f64[{a} + i*{n} + j] = mem_f64[{a} + i*{n} + j]
                    - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + k*{n} + j];
            }}
        }}
    }}
    var result: f64 = checksum_f64({a}, {n * n});
    print_f64(result);
    return result;
}}
"""


@register("ludcmp", "linear-algebra/solvers", 10)
def ludcmp(n: int) -> str:
    a, b, x, y = 0, 2 * n * n, 2 * n * n + n, 2 * n * n + 2 * n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32; var k: i32;
    {_spd_matrix_init(n, a)}
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{b} + i] = (f64(i) + 1.0) / fn / 2.0 + 4.0;
    }}
    // LU decomposition
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < i; j = j + 1) {{
            var w: f64 = mem_f64[{a} + i*{n} + j];
            for (k = 0; k < j; k = k + 1) {{
                w = w - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + k*{n} + j];
            }}
            mem_f64[{a} + i*{n} + j] = w / mem_f64[{a} + j*{n} + j];
        }}
        for (j = i; j < {n}; j = j + 1) {{
            var w: f64 = mem_f64[{a} + i*{n} + j];
            for (k = 0; k < i; k = k + 1) {{
                w = w - mem_f64[{a} + i*{n} + k] * mem_f64[{a} + k*{n} + j];
            }}
            mem_f64[{a} + i*{n} + j] = w;
        }}
    }}
    // forward substitution
    for (i = 0; i < {n}; i = i + 1) {{
        var w: f64 = mem_f64[{b} + i];
        for (j = 0; j < i; j = j + 1) {{
            w = w - mem_f64[{a} + i*{n} + j] * mem_f64[{y} + j];
        }}
        mem_f64[{y} + i] = w;
    }}
    // back substitution
    for (i = {n} - 1; i >= 0; i = i - 1) {{
        var w: f64 = mem_f64[{y} + i];
        for (j = i + 1; j < {n}; j = j + 1) {{
            w = w - mem_f64[{a} + i*{n} + j] * mem_f64[{x} + j];
        }}
        mem_f64[{x} + i] = w / mem_f64[{a} + i*{n} + i];
    }}
    var result: f64 = checksum_f64({x}, {n});
    print_f64(result);
    return result;
}}
"""


@register("trisolv", "linear-algebra/solvers", 12)
def trisolv(n: int) -> str:
    l, x, b = 0, n * n, n * n + n
    return f"""
memory 4;

export func main() -> f64 {{
    var i: i32; var j: i32;
    var fn: f64 = {float(n)};
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x} + i] = 0.0 - 999.0;
        mem_f64[{b} + i] = f64(i);
        for (j = 0; j <= i; j = j + 1) {{
            mem_f64[{l} + i*{n} + j] = f64(i + {n} - j + 1) * 2.0 / fn;
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        mem_f64[{x} + i] = mem_f64[{b} + i];
        for (j = 0; j < i; j = j + 1) {{
            mem_f64[{x} + i] = mem_f64[{x} + i] - mem_f64[{l} + i*{n} + j] * mem_f64[{x} + j];
        }}
        mem_f64[{x} + i] = mem_f64[{x} + i] / mem_f64[{l} + i*{n} + i];
        print_f64(mem_f64[{x} + i]);
    }}
    var result: f64 = checksum_f64({x}, {n});
    print_f64(result);
    return result;
}}
"""
