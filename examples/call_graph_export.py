"""Dynamic call graph extraction (paper §4.2), including indirect calls.

Runs the large synthetic "engine" binary under the call-graph analysis,
then mines the graph with networkx: reachability from main, dynamically
dead functions, indirect-call resolution, and a DOT export for rendering.

Run:  python examples/call_graph_export.py
"""

import networkx as nx

from repro import analyze
from repro.analyses import CallGraphAnalysis
from repro.workloads import engine_demo


def main():
    module = engine_demo()
    analysis = CallGraphAnalysis()
    session = analyze(module, analysis)
    session.invoke("main", [2])

    info = session.module_info
    graph = analysis.graph(info)
    print(f"observed {graph.number_of_nodes()} functions, "
          f"{graph.number_of_edges()} call edges "
          f"({len(analysis.indirect_call_sites())} indirect)")

    main_idx = next(f.idx for f in info.functions if "main" in f.export_names)
    reachable = analysis.reachable_from(main_idx)
    dead = analysis.dynamically_dead(info, roots=[main_idx])
    print(f"reachable from main: {len(reachable)} functions")
    print(f"dynamically dead (this run): {len(dead)} functions")

    # deepest dynamic call chain observed
    dag_nodes = [n for n in graph if n in reachable]
    depth = nx.dag_longest_path_length(
        nx.DiGraph((u, v) for u, v, _ in graph.edges(keys=True)
                   if u in reachable and v in reachable and u != v))
    print(f"longest acyclic call chain: {depth}")

    hottest = sorted(graph.edges(data=True),
                     key=lambda e: -e[2]["count"])[:5]
    print("hottest call edges:")
    for caller, callee, data in hottest:
        kind = "indirect" if data["indirect"] else "direct"
        print(f"  {info.func_name(caller)} -> {info.func_name(callee)} "
              f"({kind}, {data['count']} calls)")

    dot_lines = ["digraph calls {"]
    for caller, callee, data in graph.edges(data=True):
        style = " [style=dashed]" if data["indirect"] else ""
        dot_lines.append(
            f'  "{info.func_name(caller)}" -> "{info.func_name(callee)}"{style};')
    dot_lines.append("}")
    dot = "\n".join(dot_lines)
    path = "call_graph.dot"
    with open(path, "w") as f:
        f.write(dot)
    print(f"\nwrote {len(graph.edges())} edges to {path}")


if __name__ == "__main__":
    main()
