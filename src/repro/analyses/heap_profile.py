"""Heap / memory-usage profiling (extension in the spirit of §4.2).

Tracks ``memory.grow``/``memory.size`` plus the working set of touched
addresses — the kind of memory profiler the paper says Wasabi's
memory-behaviour preservation enables ("useful, e.g., to implement memory
profilers", §1). Reports peak memory, grow events, undefined reads (loads
from bytes never stored to by the program — data segments can be
pre-registered), and the written working set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analysis import Analysis, Location
from .shadow import ShadowMemory, access_width


@dataclass
class GrowEvent:
    location: Location
    delta_pages: int
    previous_pages: int

    @property
    def failed(self) -> bool:
        return self.previous_pages == 0xFFFFFFFF


class HeapProfiler(Analysis):
    """Memory profiler: grow events, working set, undefined reads."""

    def __init__(self, initial_data: list[tuple[int, int]] | None = None):
        #: addresses initialized by data segments: list of (offset, length)
        self.defined = ShadowMemory(default=False, merge=lambda a, b: a or b)
        for offset, length in initial_data or []:
            self.defined.write(offset, length, True)
        self.grow_events: list[GrowEvent] = []
        self.undefined_reads: list[tuple[Location, str, int]] = []
        self.bytes_read = 0
        self.bytes_written = 0
        self.peak_pages = 0

    def load(self, location, op, memarg, value):
        addr = memarg.addr + memarg.offset
        width = access_width(op)
        self.bytes_read += width
        if not self.defined.read(addr, width):
            self.undefined_reads.append((location, op, addr))

    def store(self, location, op, memarg, value):
        addr = memarg.addr + memarg.offset
        width = access_width(op)
        self.bytes_written += width
        self.defined.write(addr, width, True)

    def memory_grow(self, location, delta, previous):
        self.grow_events.append(GrowEvent(location, delta, previous))
        if previous != 0xFFFFFFFF:
            self.peak_pages = max(self.peak_pages, previous + delta)

    def memory_size(self, location, current_size_pages):
        self.peak_pages = max(self.peak_pages, current_size_pages)

    # -- reporting -----------------------------------------------------------

    def working_set_bytes(self) -> int:
        """Bytes the program actually wrote."""
        return self.defined.shadowed_bytes()

    def written_regions(self) -> list[tuple[int, int]]:
        return [(start, length) for start, length, _ in self.defined.regions()]

    def failed_grows(self) -> list[GrowEvent]:
        return [event for event in self.grow_events if event.failed]
