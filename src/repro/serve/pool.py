"""The supervised worker pool: scheduling, retries, breaker, degradation.

Sits between the daemon (or any in-process caller) and the per-worker
supervisors:

* **Crash isolation.** Every request exclusively owns one worker for its
  duration, so a SIGKILLed worker can never take another in-flight
  request with it. Killed slots are respawned in the background with
  exponential backoff + jitter while the remaining workers keep serving.
* **Retry policy.** A request whose worker *crashed* is retried on a
  fresh worker (``max_retries``); timeout and OOM kills are not retried —
  they deterministically burn their budget again.
* **Circuit breaker.** Kills are counted per input digest; an input that
  kills workers ``breaker_threshold`` times is quarantined for the pool's
  lifetime and refused fail-fast with
  :class:`~repro.wasm.errors.BreakerOpen`.
* **Crash bundles, not stack traces.** When configured with a
  ``crash_dir``, every kill writes a replayable service crash bundle
  (``kind: service`` — ``repro replay`` re-runs it one-shot supervised
  and checks the kill class reproduces).
* **Graceful degradation.** If no worker can be spawned (or the pool is
  configured with zero workers), the pool transparently falls back to
  in-process execution through the same :class:`RequestHandler` — with
  supervision disabled-but-reported: responses carry
  ``supervised: false`` and telemetry records the reason.
* **Structured logging.** Every lifecycle event (kill, breaker trip,
  degradation, respawn failure) goes through a
  :class:`~repro.obs.log.StructuredLogger` — the module default when none
  is injected — so a bare pool with no telemetry sink still records its
  own kills, and the logger's flight-recorder tail is dumped into every
  service crash bundle.

All public methods are thread-safe; the daemon serves each connection
from its own thread directly into :meth:`submit`.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time

from ..obs.log import get_logger
from ..wasm.errors import BreakerOpen, WorkerKilled
from .supervisor import (KillReport, ServeConfig, WorkerSupervisor,
                         rss_monitoring_available)

#: Log level per pool event kind (everything else logs at ``info``).
_EVENT_LEVELS = {
    "serve_worker_killed": "warning",
    "serve_breaker_open": "warning",
    "serve_degraded": "error",
    "serve_respawn_failed": "warning",
    "serve_worker_slot_abandoned": "error",
    "serve_rss_monitoring_unavailable": "warning",
}


class WorkerPool:
    """Routes requests onto supervised workers (or the degraded fallback)."""

    def __init__(self, config: ServeConfig | None = None, telemetry=None,
                 logger=None):
        self.config = config if config is not None else ServeConfig()
        self.telemetry = telemetry
        self.logger = logger if logger is not None else get_logger("repro.serve")
        self._free: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._next_worker_id = 0
        self._closed = False
        self.degraded = False
        self.degraded_reason: str | None = None
        self._handler = None  # the in-process degraded executor
        #: input digest -> kill count (breaker accounting)
        self._kill_counts: dict[str, int] = {}
        self._quarantined: set[str] = set()
        # aggregate counters (folded into telemetry on demand)
        self.requests_total = 0
        self.retries_total = 0
        self.worker_restarts = 0
        self.kills: dict[str, int] = {"timeout": 0, "oom": 0, "crash": 0}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.warm_hits = 0
        self.workers_spawned = 0
        self.bundles: list[str] = []
        self._workers_live = 0
        self._waiting = 0  # requests currently blocked on a free worker

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the configured workers; degrade (don't fail) when none can."""
        if self.config.workers < 1:
            self._enter_degraded("configured with zero workers")
            return self
        spawned = 0
        first_error: Exception | None = None
        for _ in range(self.config.workers):
            try:
                self._free.put(self._spawn_worker())
                spawned += 1
            except Exception as exc:
                first_error = first_error or exc
        self._workers_live = spawned
        if spawned == 0:
            self._enter_degraded(
                f"worker pool failed to start: {first_error}")
        elif not rss_monitoring_available() and self.config.rss_limit_mb:
            self._event("serve_rss_monitoring_unavailable",
                        detail="no /proc; RSS ceiling not enforced")
        return self

    def _spawn_worker(self) -> WorkerSupervisor:
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        supervisor = WorkerSupervisor(worker_id, self.config)
        supervisor.start()
        with self._lock:
            self.workers_spawned += 1
        return supervisor

    def _enter_degraded(self, reason: str) -> None:
        from .worker import RequestHandler
        self.degraded = True
        self.degraded_reason = reason
        self._handler = RequestHandler(
            cache_dir=self.config.cache_dir,
            allow_test_ops=self.config.allow_test_ops)
        self._event("serve_degraded", reason=reason)

    def close(self) -> None:
        """Stop every worker. Safe to call more than once."""
        self._closed = True
        while True:
            try:
                supervisor = self._free.get_nowait()
            except queue.Empty:
                break
            supervisor.shutdown()

    # -- the request path ------------------------------------------------------

    @staticmethod
    def request_digest(request: dict) -> str | None:
        """The breaker key: sha256 of the module bytes (or the payload's
        repr for module-less requests like fuzz shards / test ops)."""
        module = request.get("module")
        if isinstance(module, (bytes, bytearray)):
            return hashlib.sha256(bytes(module)).hexdigest()
        if request.get("kind") == "__test__":
            basis = repr(sorted((k, v) for k, v in request.items()
                                if isinstance(v, (str, int, float, bool))))
            return hashlib.sha256(basis.encode("utf-8")).hexdigest()
        return None

    def submit(self, request: dict, timeout: float | None = None,
               tracer=None) -> dict:
        """Execute one request; returns the worker's response dict.

        Raises :class:`BreakerOpen` for quarantined inputs and
        :class:`WorkerKilled` (carrying ``kill_class`` and the bundle path
        when one was written) when supervision had to kill the request.
        ``tracer`` (optional) records queue-wait and supervised-execute
        spans for the cross-process trace; when ``None`` the request path
        is exactly as before.
        """
        if self._closed:
            raise WorkerKilled("pool is closed", kill_class="crash")
        digest = self.request_digest(request)
        with self._lock:
            self.requests_total += 1
            if digest is not None and digest in self._quarantined:
                raise BreakerOpen(
                    f"input {digest[:12]}… is quarantined: it killed a "
                    f"worker {self._kill_counts.get(digest, 0)} times")
        if self.degraded:
            response = self._handler.handle(request)
            response["supervised"] = False
            self._fold_response(response)
            return response

        attempts = 0
        while True:
            waited_from = tracer.clock() if tracer is not None else 0.0
            with self._lock:
                self._waiting += 1
            try:
                supervisor = self._acquire()
            finally:
                with self._lock:
                    self._waiting -= 1
            if tracer is not None:
                now = tracer.clock()
                tracer.record("queue_wait", waited_from, now - waited_from)
                executed_from = now
            outcome = supervisor.submit(
                request, timeout=timeout,
                rss_limit_mb=request.get("rss_limit_mb", ...))
            if tracer is not None:
                tracer.record("supervised_execute", executed_from,
                              tracer.clock() - executed_from,
                              worker=supervisor.worker_id, attempt=attempts,
                              killed=isinstance(outcome, KillReport))
            if not isinstance(outcome, KillReport):
                self._release(supervisor)
                outcome["supervised"] = True
                self._fold_response(outcome)
                return outcome
            bundle = self._record_kill(request, digest, outcome,
                                       timeout=timeout)
            self._respawn_async()
            if (outcome.kill_class == "crash"
                    and attempts < self.config.max_retries
                    and (digest is None or digest not in self._quarantined)):
                attempts += 1
                with self._lock:
                    self.retries_total += 1
                continue
            error = WorkerKilled(outcome.describe(),
                                 kill_class=outcome.kill_class)
            error.bundle = bundle
            error.report = outcome
            raise error

    def _acquire(self) -> WorkerSupervisor:
        """Take a free worker, waiting while all are busy or respawning."""
        while True:
            try:
                supervisor = self._free.get(timeout=1.0)
            except queue.Empty:
                with self._lock:
                    alive = self._workers_live
                if alive <= 0 and not self.degraded:
                    self._enter_degraded(
                        "every worker slot was lost and could not respawn")
                if self.degraded:
                    raise WorkerKilled(
                        "no workers available (pool degraded mid-request)",
                        kill_class="crash")
                continue
            if supervisor.alive:
                return supervisor
            with self._lock:
                self._workers_live -= 1
            self._respawn_async()

    def _release(self, supervisor: WorkerSupervisor) -> None:
        recycle_after = self.config.recycle_after
        if (recycle_after is not None
                and supervisor.requests_served >= recycle_after):
            supervisor.shutdown()
            with self._lock:
                self._workers_live -= 1
            self._respawn_async()
            return
        self._free.put(supervisor)

    # -- kills, bundles, breaker ----------------------------------------------

    def _record_kill(self, request: dict, digest: str | None,
                     report: KillReport,
                     timeout: float | None = None) -> str | None:
        with self._lock:
            self._workers_live -= 1
            self.kills[report.kill_class] = (
                self.kills.get(report.kill_class, 0) + 1)
            if digest is not None:
                count = self._kill_counts.get(digest, 0) + 1
                self._kill_counts[digest] = count
                if count >= self.config.breaker_threshold:
                    self._quarantined.add(digest)
        self._event("serve_worker_killed", kill_class=report.kill_class,
                    detail=report.detail, digest=digest and digest[:12],
                    elapsed=round(report.elapsed, 3))
        if digest is not None and digest in self._quarantined:
            self._event("serve_breaker_open", digest=digest[:12])
        bundle = self._write_service_bundle(request, digest, report,
                                            timeout=timeout)
        if bundle is not None:
            with self._lock:
                self.bundles.append(bundle)
        return bundle

    def _write_service_bundle(self, request: dict, digest: str | None,
                              report: KillReport,
                              timeout: float | None = None) -> str | None:
        """Persist a killed request as a replayable ``kind: service`` bundle."""
        if self.config.crash_dir is None:
            return None
        module = request.get("module")
        if not isinstance(module, (bytes, bytearray)):
            return None
        from pathlib import Path

        from ..interp.replay import write_crash_bundle
        sanitized = {key: value for key, value in request.items()
                     if key != "module"
                     and isinstance(value, (str, int, float, bool, list,
                                            dict, type(None)))}
        manifest = {
            "kind": "service",
            "error": {"type": "WorkerKilled", "message": report.describe(),
                      "kill_class": report.kill_class},
            "service": {
                "kill_class": report.kill_class,
                "detail": report.detail,
                "elapsed": round(report.elapsed, 4),
                "rss_mb": report.rss_mb,
                "request": sanitized,
                "request_timeout": (timeout if timeout is not None
                                    else self.config.request_timeout),
                "rss_limit_mb": self.config.rss_limit_mb,
            },
        }
        name = f"{(digest or 'request')[:12]}-{report.kill_class}"
        target = Path(self.config.crash_dir) / name
        flight = self.logger.tail() if self.logger is not None else None
        try:
            write_crash_bundle(target, bytes(module), manifest, flight=flight)
        except OSError:
            return None
        return str(target)

    # -- respawn ----------------------------------------------------------------

    def _respawn_async(self) -> None:
        if self._closed:
            return
        thread = threading.Thread(target=self._respawn, daemon=True,
                                  name="repro-serve-respawn")
        thread.start()

    def _respawn(self) -> None:
        config = self.config
        for attempt in range(config.max_respawn_attempts):
            if self._closed:
                return
            time.sleep(config.backoff_delay(attempt))
            try:
                supervisor = self._spawn_worker()
            except Exception as exc:
                self._event("serve_respawn_failed", attempt=attempt,
                            detail=str(exc))
                continue
            with self._lock:
                self.worker_restarts += 1
                self._workers_live += 1
            self._free.put(supervisor)
            return
        self._event("serve_worker_slot_abandoned",
                    attempts=config.max_respawn_attempts)

    # -- stats & telemetry -------------------------------------------------------

    def _fold_response(self, response: dict) -> None:
        with self._lock:
            if response.get("cache_hit") is True:
                self.cache_hits += 1
            elif response.get("cache_hit") is False:
                self.cache_misses += 1
            if response.get("warm"):
                self.warm_hits += 1
            evicted = response.get("cache_evicted")
            if evicted:
                self.cache_evictions += int(evicted)

    def _event(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.event(kind, **fields)
        if self.logger is not None:
            self.logger.log(_EVENT_LEVELS.get(kind, "info"), kind, **fields)

    def stats(self) -> dict:
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "retries_total": self.retries_total,
                "worker_restarts": self.worker_restarts,
                "workers_live": self._workers_live,
                "workers_spawned": self.workers_spawned,
                "workers_idle": self._free.qsize(),
                "queue_depth": self._waiting,
                "kills": dict(self.kills),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "warm_hits": self.warm_hits,
                "breaker_open": len(self._quarantined),
                "quarantined": sorted(d[:12] for d in self._quarantined),
                "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "bundles": list(self.bundles),
            }

    def fold_into_telemetry(self, telemetry=None) -> None:
        """Publish pool counters on a :class:`repro.obs.Telemetry` sink."""
        telemetry = telemetry if telemetry is not None else self.telemetry
        if telemetry is None:
            return
        stats = self.stats()
        registry = telemetry.registry
        registry.counter("repro_serve_requests_total",
                         help="requests accepted by the pool").set(
            stats["requests_total"])
        registry.counter("repro_serve_retries_total",
                         help="crash-class in-request retries").set(
            stats["retries_total"])
        registry.counter("repro_serve_worker_restarts_total",
                         help="workers respawned after a kill or recycle").set(
            stats["worker_restarts"])
        for kill_class, count in sorted(stats["kills"].items()):
            registry.counter("repro_serve_kills_total",
                             labels={"class": kill_class},
                             help="supervised kills per taxonomy class").set(
                count)
        registry.counter("repro_serve_workers_spawned_total",
                         help="worker subprocesses ever spawned").set(
            stats["workers_spawned"])
        registry.counter("repro_serve_cache_hits_total",
                         help="artifact-cache hits").set(stats["cache_hits"])
        registry.counter("repro_serve_cache_misses_total",
                         help="artifact-cache misses").set(
            stats["cache_misses"])
        registry.counter("repro_serve_cache_evictions_total",
                         help="corrupt artifact-cache entries evicted").set(
            stats["cache_evictions"])
        registry.counter("repro_serve_warm_hits_total",
                         help="runs served from a warm-started instance").set(
            stats["warm_hits"])
        registry.gauge("repro_serve_workers_live",
                       help="worker subprocesses currently alive").set(
            stats["workers_live"])
        registry.gauge("repro_serve_queue_depth",
                       help="requests waiting for a free worker").set(
            stats["queue_depth"])
        registry.gauge("repro_serve_breaker_open",
                       help="inputs currently quarantined").set(
            stats["breaker_open"])
        registry.gauge("repro_serve_degraded",
                       help="1 when running unsupervised in-process").set(
            1 if stats["degraded"] else 0)
