"""Module model (index spaces, names, type interning) and builder API."""

import pytest

from repro.wasm import (Instr, Module, WasmError, format_body, format_module,
                        validate_module)
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import MemArg, check_instr
from repro.wasm.types import F64, I32, I64, FuncType, GlobalType


class TestIndexSpaces:
    def test_imported_functions_come_first(self):
        builder = ModuleBuilder()
        imported = builder.import_function("env", "f", FuncType((), ()))
        fb = builder.function((), (), name="g")
        fb.finish()
        module = builder.build()
        assert imported == 0
        assert fb.func_idx == 1
        assert module.num_imported_functions == 1
        assert module.num_functions == 2
        assert module.function_at(0) is None
        assert module.function_at(1).name == "g"

    def test_func_type_lookup(self):
        builder = ModuleBuilder()
        builder.import_function("env", "f", FuncType((I64,), (F64,)))
        fb = builder.function((I32,), (I32,))
        fb.get_local(0)
        fb.finish()
        module = builder.build()
        assert module.func_type(0) == FuncType((I64,), (F64,))
        assert module.func_type(1) == FuncType((I32,), (I32,))
        with pytest.raises(WasmError):
            module.func_type(2)

    def test_func_name_fallbacks(self):
        builder = ModuleBuilder()
        builder.import_function("imports", "callme", FuncType((), ()))
        named = builder.function((), (), name="has_name")
        named.finish()
        exported = builder.function((), (), export="exported_name")
        exported.finish()
        anonymous = builder.function((), ())
        anonymous.finish()
        module = builder.build()
        assert module.func_name(0) == "imports.callme"
        assert module.func_name(1) == "has_name"
        assert module.func_name(2) == "exported_name"
        assert module.func_name(3) == "func_3"

    def test_global_type_lookup_with_imports(self):
        builder = ModuleBuilder()
        builder.import_global("env", "g0", GlobalType(I64, mutable=False))
        builder.add_global(F64, mutable=True, init=1.0)
        module = builder.build()
        assert module.global_type(0) == GlobalType(I64, mutable=False)
        assert module.global_type(1) == GlobalType(F64, mutable=True)

    def test_type_interning_deduplicates(self):
        module = Module()
        a = module.add_type(FuncType((I32,), (I32,)))
        b = module.add_type(FuncType((I32,), (I32,)))
        c = module.add_type(FuncType((I64,), (I32,)))
        assert a == b != c
        assert len(module.types) == 2

    def test_iter_instructions(self):
        builder = ModuleBuilder()
        builder.import_function("env", "f", FuncType((), ()))
        fb = builder.function((), ())
        fb.emit("nop")
        fb.finish()
        module = builder.build()
        triples = list(module.iter_instructions())
        assert triples[0][:2] == (1, 0)  # defined funcs start after imports
        assert module.instruction_count() == 2  # nop + end


class TestInstrChecks:
    def test_unknown_mnemonic(self):
        with pytest.raises(WasmError, match="unknown instruction"):
            check_instr(Instr("i32.frobnicate"))

    def test_missing_immediate(self):
        with pytest.raises(WasmError, match="missing"):
            check_instr(Instr("call"))
        check_instr(Instr("call", idx=0))

    def test_str_rendering(self):
        assert str(Instr("i32.const", value=5)) == "i32.const 5"
        assert "offset=8" in str(Instr("f64.load", memarg=MemArg(3, 8)))


class TestBuilderErrors:
    def test_import_after_define_rejected(self):
        builder = ModuleBuilder()
        fb = builder.function((), ())
        fb.finish()
        with pytest.raises(WasmError, match="imports must"):
            builder.import_function("env", "late", FuncType((), ()))

    def test_double_finish_rejected(self):
        builder = ModuleBuilder()
        fb = builder.function((), ())
        fb.finish()
        with pytest.raises(WasmError):
            fb.finish()

    def test_emit_after_finish_rejected(self):
        builder = ModuleBuilder()
        fb = builder.function((), ())
        fb.finish()
        with pytest.raises(WasmError):
            fb.emit("nop")

    def test_unbalanced_blocks_rejected(self):
        builder = ModuleBuilder()
        fb = builder.function((), ())
        fb.block()
        with pytest.raises(WasmError, match="unbalanced"):
            fb.finish()

    def test_explicit_end_accepted(self):
        builder = ModuleBuilder()
        fb = builder.function((), ())
        fb.emit("nop")
        fb.end()  # closes the implicit function block explicitly
        fb.finish()
        validate_module(builder.build())

    def test_local_types(self):
        builder = ModuleBuilder()
        fb = builder.function((I32, F64), ())
        local = fb.add_local(I64)
        assert fb.num_params == 2
        assert local == 2
        assert fb.local_type(0) is I32
        assert fb.local_type(1) is F64
        assert fb.local_type(2) is I64


class TestTextFormat:
    def test_block_indentation(self):
        body = [Instr("block"), Instr("nop"), Instr("end"), Instr("end")]
        text = format_body(body)
        lines = text.splitlines()
        assert lines[0].strip() == "block"
        assert lines[1].startswith("    ")  # nop indented inside the block

    def test_module_rendering(self, fib_module):
        text = format_module(fib_module)
        assert "(module $fib" in text
        assert '(export "fib"' in text
        assert "call 0" in text

    def test_if_else_indentation(self):
        body = [Instr("if"), Instr("nop"), Instr("else"), Instr("nop"),
                Instr("end"), Instr("end")]
        lines = format_body(body).splitlines()
        if_depth = len(lines[0]) - len(lines[0].lstrip())
        else_depth = len(lines[2]) - len(lines[2].lstrip())
        assert if_depth == else_depth
