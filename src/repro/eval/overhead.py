"""RQ5: runtime overhead per hook group (paper Figure 9).

Runs each workload uninstrumented and once per instrumentation
configuration (each hook group alone, plus all hooks), with empty
analyses attached — measuring the cost of the instrumentation machinery
itself, exactly as the paper (and Jalangi's / RoadRunner's empty-analysis
baselines) do.

Timing goes through :func:`repro.obs.spans.measure` (one span per measured
repeat, one injected clock), so sweeps are deterministic under a fake
``clock=`` and can surrender their raw spans via ``tracer=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.session import AnalysisSession
from ..interp.machine import Machine
from ..obs.spans import Tracer, measure
from .hooks_matrix import FIGURE_GROUPS, make_full_analysis, make_group_analysis
from .workloads import Workload


@dataclass
class OverheadReport:
    name: str
    config: str
    baseline_seconds: float
    instrumented_seconds: float

    @property
    def relative_runtime(self) -> float:
        """1.0x = no overhead (the paper's y-axis)."""
        if self.baseline_seconds == 0:
            return float("inf")
        return self.instrumented_seconds / self.baseline_seconds


def _time_run(invoke, repeats: int, name: str = "bench_invoke",
              clock: Callable[[], float] | None = None,
              tracer: Tracer | None = None,
              attrs: dict | None = None) -> float:
    """Best-of-``repeats`` through the shared span measurement path."""
    return min(measure(invoke, repeats, name=name, tracer=tracer,
                       clock=clock, attrs=attrs))


def baseline_runtime(workload: Workload, repeats: int = 3,
                     predecode: bool | None = None,
                     clock: Callable[[], float] | None = None,
                     tracer: Tracer | None = None) -> float:
    """Uninstrumented runtime; ``predecode`` selects the engine
    (None = the :envvar:`REPRO_PREDECODE` default)."""
    machine = Machine(predecode=predecode)
    instance = machine.instantiate(workload.module(), workload.linker())
    return _time_run(lambda: instance.invoke(workload.entry, workload.args),
                     repeats, name="baseline_invoke", clock=clock,
                     tracer=tracer, attrs={"workload": workload.name})


def instrumented_runtime(workload: Workload, config: str,
                         repeats: int = 3,
                         predecode: bool | None = None,
                         specialize: bool | None = None,
                         clock: Callable[[], float] | None = None,
                         tracer: Tracer | None = None) -> float:
    """Instrumented runtime under one hook configuration.

    ``specialize`` selects the hook-dispatch strategy of the pre-decoding
    engine: per-call-site ``OP_HOOK`` dispatchers (True, the default) or the
    generic host-call path (False); None = the
    :envvar:`REPRO_SPECIALIZE_HOOKS` default.
    """
    if config == "all":
        analysis = make_full_analysis()
        groups = None
    else:
        analysis = make_group_analysis(config)
        groups = frozenset({config})
    session = AnalysisSession(workload.module(), analysis,
                              linker=workload.linker(), groups=groups,
                              machine=Machine(predecode=predecode,
                                              specialize_hooks=specialize))
    return _time_run(lambda: session.invoke(workload.entry, workload.args),
                     repeats, name="instrumented_invoke", clock=clock,
                     tracer=tracer,
                     attrs={"workload": workload.name, "config": config})


def overhead_sweep(workload: Workload, configs: list[str] | None = None,
                   repeats: int = 3, include_all: bool = True,
                   predecode: bool | None = None,
                   specialize: bool | None = None,
                   clock: Callable[[], float] | None = None,
                   tracer: Tracer | None = None) -> list[OverheadReport]:
    """Relative runtime for every hook group (Figure 9's x-axis)."""
    baseline = baseline_runtime(workload, repeats, predecode=predecode,
                                clock=clock, tracer=tracer)
    reports = []
    for config in (configs or FIGURE_GROUPS):
        elapsed = instrumented_runtime(workload, config, repeats,
                                       predecode=predecode,
                                       specialize=specialize,
                                       clock=clock, tracer=tracer)
        reports.append(OverheadReport(workload.name, config, baseline, elapsed))
    if include_all:
        elapsed = instrumented_runtime(workload, "all", repeats,
                                       predecode=predecode,
                                       specialize=specialize,
                                       clock=clock, tracer=tracer)
        reports.append(OverheadReport(workload.name, "all", baseline, elapsed))
    return reports


def _geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def hook_dispatch_payload(workloads: list[Workload],
                          configs: list[str] | None = None,
                          repeats: int = 3) -> dict:
    """Before/after comparison of the two hook-dispatch strategies.

    For each workload and hook configuration, measures the relative runtime
    under generic dispatch ("before": every event parses locations and hits
    per-site dicts) and under call-site-specialized ``OP_HOOK`` dispatch
    ("after"), both on the pre-decoding engine against the same
    uninstrumented baseline. The improvement metric is the ratio of *pure
    hook overheads* ``(R_before - 1) / (R_after - 1)``, which isolates the
    dispatch cost from the interpreter's own runtime; the JSON payload backs
    ``BENCH_hooks.json`` and the CI hook-overhead floor.
    """
    configs = list(configs or (FIGURE_GROUPS + ["all"]))
    per_workload: list[dict] = []
    by_config: dict[str, dict[str, list[float]]] = {
        config: {"generic": [], "specialized": []} for config in configs}
    for workload in workloads:
        baseline = baseline_runtime(workload, repeats)
        entry: dict = {"name": workload.name, "baseline_seconds": baseline,
                       "configs": {}}
        for config in configs:
            generic = instrumented_runtime(workload, config, repeats,
                                           specialize=False)
            specialized = instrumented_runtime(workload, config, repeats,
                                               specialize=True)
            generic_rel = generic / baseline
            specialized_rel = specialized / baseline
            by_config[config]["generic"].append(generic_rel)
            by_config[config]["specialized"].append(specialized_rel)
            entry["configs"][config] = {
                "generic_relative": generic_rel,
                "specialized_relative": specialized_rel,
            }
        per_workload.append(entry)

    groups: dict[str, dict[str, float]] = {}
    for config in configs:
        generic_gm = _geomean(by_config[config]["generic"])
        specialized_gm = _geomean(by_config[config]["specialized"])
        improvements = [
            (before - 1.0) / (after - 1.0)
            for before, after in zip(by_config[config]["generic"],
                                     by_config[config]["specialized"])
            if after > 1.0 and before > 1.0]
        groups[config] = {
            "generic_overhead": generic_gm,
            "specialized_overhead": specialized_gm,
            "overhead_improvement": (_geomean(improvements)
                                     if improvements else float("nan")),
        }
    return {
        "metric": "relative runtime vs uninstrumented predecoded baseline; "
                  "overhead_improvement = geomean (generic-1)/(specialized-1)",
        "repeats": repeats,
        "workloads": per_workload,
        "groups": groups,
        "geomean_improvement_all": groups["all"]["overhead_improvement"]
        if "all" in groups else float("nan"),
    }
