"""In-memory representation of WebAssembly modules.

Function bodies are *flat* instruction sequences with explicit ``block`` /
``loop`` / ``if`` / ``else`` / ``end`` markers, exactly as in the binary
format. This matches how Wasabi's instrumenter works: it walks the flat
stream while maintaining an abstract control stack (paper §2.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Union

from . import opcodes
from .errors import WasmError
from .types import FuncType, GlobalType, MemoryType, TableType, ValType


@dataclass(frozen=True)
class MemArg:
    """Alignment hint and constant offset of a load/store instruction."""

    align: int = 0
    offset: int = 0


@dataclass(frozen=True)
class BrTable:
    """Immediate of a ``br_table``: a vector of labels plus the default."""

    labels: tuple[int, ...]
    default: int

    def __post_init__(self):
        object.__setattr__(self, "labels", tuple(self.labels))


#: Block types in the MVP: either no result or exactly one value type.
BlockType = Union[ValType, None]


@dataclass(frozen=True)
class Instr:
    """A single instruction: mnemonic plus (at most one) immediate.

    Only the field matching the opcode's immediate kind is meaningful; the
    constructor helpers below and :func:`check_instr` keep this consistent.
    """

    op: str
    value: int | float | None = None          # const immediates
    idx: int | None = None                    # func/type/local/global index
    label: int | None = None                  # br / br_if
    br_table: BrTable | None = None           # br_table
    memarg: MemArg | None = None              # loads / stores
    blocktype: BlockType = None               # block / loop / if

    @property
    def info(self) -> opcodes.OpInfo:
        return opcodes.BY_NAME[self.op]

    def __str__(self) -> str:
        parts = [self.op]
        if self.value is not None:
            parts.append(repr(self.value))
        if self.idx is not None:
            parts.append(str(self.idx))
        if self.label is not None:
            parts.append(str(self.label))
        if self.br_table is not None:
            parts.append(" ".join(map(str, self.br_table.labels))
                         + f" default={self.br_table.default}")
        if self.memarg is not None and (self.memarg.offset or self.memarg.align):
            parts.append(f"offset={self.memarg.offset} align={self.memarg.align}")
        if self.blocktype is not None:
            parts.append(f"(result {self.blocktype})")
        return " ".join(parts)


def check_instr(instr: Instr) -> None:
    """Validate that an instruction carries the immediate its opcode needs."""
    op = opcodes.BY_NAME.get(instr.op)
    if op is None:
        raise WasmError(f"unknown instruction mnemonic {instr.op!r}")
    imm = op.imm
    needs = {
        opcodes.Imm.NONE: (),
        opcodes.Imm.BLOCKTYPE: (),
        opcodes.Imm.LABEL: ("label",),
        opcodes.Imm.BR_TABLE: ("br_table",),
        opcodes.Imm.FUNC_IDX: ("idx",),
        opcodes.Imm.TYPE_IDX: ("idx",),
        opcodes.Imm.LOCAL_IDX: ("idx",),
        opcodes.Imm.GLOBAL_IDX: ("idx",),
        opcodes.Imm.MEMARG: ("memarg",),
        opcodes.Imm.MEM_IDX: (),
        opcodes.Imm.CONST_I32: ("value",),
        opcodes.Imm.CONST_I64: ("value",),
        opcodes.Imm.CONST_F32: ("value",),
        opcodes.Imm.CONST_F64: ("value",),
    }[imm]
    for field_name in needs:
        if getattr(instr, field_name) is None:
            raise WasmError(f"instruction {instr.op} is missing its {field_name} immediate")


@dataclass
class Import:
    """An import: ``module.name`` with a description of what is imported."""

    module: str
    name: str
    #: One of: an index into ``Module.types`` (function import), or a
    #: :class:`TableType` / :class:`MemoryType` / :class:`GlobalType`.
    desc: int | TableType | MemoryType | GlobalType


@dataclass
class Export:
    """An export, identified by kind ('func' | 'table' | 'memory' | 'global')."""

    name: str
    kind: str
    idx: int


@dataclass
class Function:
    """A function defined in the module (not imported).

    ``type_idx`` indexes ``Module.types``; ``locals`` lists the types of the
    declared (non-parameter) locals; ``body`` is a flat instruction sequence
    *including* the terminating ``end``.
    """

    type_idx: int
    locals: list[ValType] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)
    name: str | None = None


@dataclass
class Global:
    """A global variable with a constant initializer expression."""

    type: GlobalType
    init: list[Instr] = field(default_factory=list)


@dataclass
class ElemSegment:
    """An (active) element segment initializing the table with function indices."""

    offset: list[Instr] = field(default_factory=list)
    func_idxs: list[int] = field(default_factory=list)


@dataclass
class DataSegment:
    """An (active) data segment initializing linear memory."""

    offset: list[Instr] = field(default_factory=list)
    data: bytes = b""


@dataclass
class CustomSection:
    """An uninterpreted custom section (other than the name section)."""

    name: str
    payload: bytes


@dataclass
class Module:
    """A WebAssembly module, mirroring the section structure of the format."""

    types: list[FuncType] = field(default_factory=list)
    imports: list[Import] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    tables: list[TableType] = field(default_factory=list)
    memories: list[MemoryType] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    start: int | None = None
    elements: list[ElemSegment] = field(default_factory=list)
    data: list[DataSegment] = field(default_factory=list)
    custom_sections: list[CustomSection] = field(default_factory=list)
    name: str | None = None

    # -- type management ----------------------------------------------------

    def add_type(self, functype: FuncType) -> int:
        """Intern a function type, returning its index (deduplicated)."""
        for i, existing in enumerate(self.types):
            if existing == functype:
                return i
        self.types.append(functype)
        return len(self.types) - 1

    # -- index spaces ---------------------------------------------------------
    # Imported entities come first in each index space, then module-defined
    # ones, as mandated by the spec.

    def imported_functions(self) -> list[Import]:
        return [imp for imp in self.imports if isinstance(imp.desc, int)]

    def imported_globals(self) -> list[Import]:
        return [imp for imp in self.imports if isinstance(imp.desc, GlobalType)]

    def imported_tables(self) -> list[Import]:
        return [imp for imp in self.imports if isinstance(imp.desc, TableType)]

    def imported_memories(self) -> list[Import]:
        return [imp for imp in self.imports if isinstance(imp.desc, MemoryType)]

    @property
    def num_imported_functions(self) -> int:
        return len(self.imported_functions())

    @property
    def num_functions(self) -> int:
        """Size of the function index space (imports + defined)."""
        return self.num_imported_functions + len(self.functions)

    def func_type(self, func_idx: int) -> FuncType:
        """Function type of any function index (imported or defined)."""
        n_imported = self.num_imported_functions
        if func_idx < n_imported:
            type_idx = self.imported_functions()[func_idx].desc
            assert isinstance(type_idx, int)
        else:
            defined = func_idx - n_imported
            if defined >= len(self.functions):
                raise WasmError(f"function index {func_idx} out of range")
            type_idx = self.functions[defined].type_idx
        return self.types[type_idx]

    def function_at(self, func_idx: int) -> Function | None:
        """The defined :class:`Function` at ``func_idx``, or None if imported."""
        n_imported = self.num_imported_functions
        if func_idx < n_imported:
            return None
        return self.functions[func_idx - n_imported]

    def func_name(self, func_idx: int) -> str:
        """Best-effort human-readable name for a function index."""
        n_imported = self.num_imported_functions
        if func_idx < n_imported:
            imp = self.imported_functions()[func_idx]
            return f"{imp.module}.{imp.name}"
        func = self.functions[func_idx - n_imported]
        if func.name:
            return func.name
        for export in self.exports:
            if export.kind == "func" and export.idx == func_idx:
                return export.name
        return f"func_{func_idx}"

    def global_type(self, global_idx: int) -> GlobalType:
        imported = self.imported_globals()
        if global_idx < len(imported):
            desc = imported[global_idx].desc
            assert isinstance(desc, GlobalType)
            return desc
        defined = global_idx - len(imported)
        if defined >= len(self.globals):
            raise WasmError(f"global index {global_idx} out of range")
        return self.globals[defined].type

    @property
    def num_globals(self) -> int:
        return len(self.imported_globals()) + len(self.globals)

    @property
    def num_tables(self) -> int:
        return len(self.imported_tables()) + len(self.tables)

    @property
    def num_memories(self) -> int:
        return len(self.imported_memories()) + len(self.memories)

    # -- convenience ----------------------------------------------------------

    def export_of(self, kind: str, name: str) -> Export:
        for export in self.exports:
            if export.kind == kind and export.name == name:
                return export
        raise WasmError(f"no {kind} export named {name!r}")

    def iter_instructions(self) -> Iterator[tuple[int, int, Instr]]:
        """Yield ``(func_idx, instr_idx, instr)`` over all defined bodies."""
        n_imported = self.num_imported_functions
        for i, func in enumerate(self.functions):
            for j, instr in enumerate(func.body):
                yield n_imported + i, j, instr

    def instruction_count(self) -> int:
        return sum(len(f.body) for f in self.functions)


def clone_instr(instr: Instr, **changes) -> Instr:
    """Copy an instruction with selected immediates replaced."""
    return replace(instr, **changes)
