"""The interpreter: control flow, calls, traps, memory, host functions."""

import pytest

from repro.interp import Linker, Machine
from repro.minic import compile_source
from repro.wasm import ExhaustionError, Trap, WasmError
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import BrTable
from repro.wasm.types import F64, I32, I64, FuncType, GlobalType


class TestBasics:
    def test_add(self, machine, add_module):
        instance = machine.instantiate(add_module)
        assert instance.invoke("add", [2, 3]) == [5]

    def test_arguments_coerced(self, machine, add_module):
        instance = machine.instantiate(add_module)
        assert instance.invoke("add", [-1, 1]) == [0]

    def test_missing_export(self, machine, add_module):
        instance = machine.instantiate(add_module)
        with pytest.raises(WasmError, match="no export"):
            instance.invoke("nope")

    def test_wrong_arity(self, machine, add_module):
        instance = machine.instantiate(add_module)
        with pytest.raises(WasmError, match="arguments"):
            instance.invoke("add", [1])


class TestControlFlow:
    def test_recursion(self, machine, fib_module):
        instance = machine.instantiate(fib_module)
        assert instance.invoke("fib", [12]) == [144]

    def test_loop_with_break_continue(self, machine):
        module = compile_source("""
            export func f(n: i32) -> i32 {
                var s: i32 = 0;
                var i: i32 = 0;
                while (1) {
                    i = i + 1;
                    if (i > n) { break; }
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("f", [10]) == [25]  # 1+3+5+7+9

    def test_br_table_all_cases(self, machine):
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="switch")
        fb.block(I32)
        fb.block()
        fb.block()
        fb.block()
        fb.get_local(0)
        fb.emit("br_table", br_table=BrTable((0, 1, 2), 2))
        fb.end()
        fb.i32_const(100)
        fb.br(2)
        fb.end()
        fb.i32_const(200)
        fb.br(1)
        fb.end()
        fb.i32_const(300)
        fb.end()
        fb.finish()
        instance = machine.instantiate(builder.build())
        assert instance.invoke("switch", [0]) == [100]
        assert instance.invoke("switch", [1]) == [200]
        assert instance.invoke("switch", [2]) == [300]
        assert instance.invoke("switch", [99]) == [300]  # default

    def test_branch_out_of_nested_loop(self, machine):
        module = compile_source("""
            export func f() -> i32 {
                var n: i32 = 0;
                var i: i32;
                for (i = 0; i < 10; i = i + 1) {
                    var j: i32;
                    for (j = 0; j < 10; j = j + 1) {
                        n = n + 1;
                        if (n == 7) { return n * 100 + i * 10 + j; }
                    }
                }
                return 0 - 1;
            }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("f") == [706]

    def test_block_result_carried_by_branch(self, machine):
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="f")
        fb.block(I32)
        fb.i32_const(42)
        fb.get_local(0)
        fb.br_if(0)
        fb.emit("drop")
        fb.i32_const(7)
        fb.end()
        fb.finish()
        instance = machine.instantiate(builder.build())
        assert instance.invoke("f", [1]) == [42]
        assert instance.invoke("f", [0]) == [7]


class TestCalls:
    def test_host_function(self, machine):
        builder = ModuleBuilder()
        double = builder.import_function("env", "double", FuncType((I32,), (I32,)))
        fb = builder.function((I32,), (I32,), export="f")
        fb.get_local(0).call(double)
        fb.finish()
        linker = Linker().define_function("env", "double", FuncType((I32,), (I32,)),
                                          lambda args: args[0] * 2)
        instance = machine.instantiate(builder.build(), linker)
        assert instance.invoke("f", [21]) == [42]

    def test_host_result_coerced(self, machine):
        builder = ModuleBuilder()
        f = builder.import_function("env", "f", FuncType((), (I32,)))
        fb = builder.function((), (I32,), export="g")
        fb.call(f)
        fb.finish()
        linker = Linker().define_function("env", "f", FuncType((), (I32,)),
                                          lambda args: -1)
        instance = machine.instantiate(builder.build(), linker)
        assert instance.invoke("g") == [0xFFFFFFFF]

    def test_host_wrong_result_count(self, machine):
        builder = ModuleBuilder()
        f = builder.import_function("env", "f", FuncType((), (I32,)))
        fb = builder.function((), (I32,), export="g")
        fb.call(f)
        fb.finish()
        linker = Linker().define_function("env", "f", FuncType((), (I32,)),
                                          lambda args: None)
        instance = machine.instantiate(builder.build(), linker)
        with pytest.raises(WasmError, match="returned"):
            instance.invoke("g")

    def test_indirect_call_type_mismatch_traps(self, machine):
        builder = ModuleBuilder()
        fb = builder.function((), (F64,), name="wrong")
        fb.f64_const(1.0)
        fb.finish()
        wrong = fb.func_idx
        builder.add_table(1, 1)
        builder.add_element(0, [wrong])
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(0)
        fb.call_indirect(builder.module.add_type(FuncType((), (I32,))))
        fb.finish()
        instance = machine.instantiate(builder.build())
        with pytest.raises(Trap, match="type mismatch"):
            instance.invoke("f")

    def test_indirect_call_uninitialized_traps(self, machine):
        builder = ModuleBuilder()
        builder.add_table(4, 4)
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(2)
        fb.call_indirect(builder.module.add_type(FuncType((), (I32,))))
        fb.finish()
        instance = machine.instantiate(builder.build())
        with pytest.raises(Trap, match="uninitialized"):
            instance.invoke("f")

    def test_stack_exhaustion(self):
        machine = Machine(max_call_depth=50)
        module = compile_source("""
            export func f(n: i32) -> i32 {
                if (n <= 0) { return 0; }
                return f(n - 1) + 1;
            }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("f", [30]) == [30]
        with pytest.raises(ExhaustionError):
            instance.invoke("f", [100])


class TestMemory:
    def test_roundtrip(self, machine, memory_module):
        instance = machine.instantiate(memory_module)
        assert instance.invoke("roundtrip", [1.5]) == [1.5 + 200 - 2]

    def test_grow_and_size(self, machine, memory_module):
        instance = machine.instantiate(memory_module)
        # before=1 page, grow(2) returns 1, after=3 pages
        assert instance.invoke("grow") == [3 * 1000 + 1 * 10 + 1]

    def test_out_of_bounds_load_traps(self, machine):
        module = compile_source("""
            memory 1;
            export func f(addr: i32) -> i32 { return mem_i32[addr]; }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("f", [0]) == [0]
        with pytest.raises(Trap, match="out of bounds"):
            instance.invoke("f", [65536 // 4])

    def test_grow_beyond_max_fails_gracefully(self, machine):
        builder = ModuleBuilder()
        builder.add_memory(1, 2)
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(5)
        fb.emit("memory.grow")
        fb.finish()
        instance = machine.instantiate(builder.build())
        assert instance.invoke("f") == [0xFFFFFFFF]  # -1: grow failed

    def test_data_segment_initialization(self, machine):
        builder = ModuleBuilder()
        builder.add_memory(1)
        builder.add_data(8, bytes([1, 2, 3, 4]))
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(8)
        fb.load("i32.load")
        fb.finish()
        instance = machine.instantiate(builder.build())
        assert instance.invoke("f") == [0x04030201]  # little endian


class TestGlobalsAndStart:
    def test_globals(self, machine):
        module = compile_source("""
            global counter: i32 = 10;
            export func bump() -> i32 {
                counter = counter + 1;
                return counter;
            }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("bump") == [11]
        assert instance.invoke("bump") == [12]

    def test_imported_global(self, machine):
        builder = ModuleBuilder()
        g = builder.import_global("env", "g", GlobalType(I64, mutable=False))
        fb = builder.function((), (I64,), export="f")
        fb.get_global(g)
        fb.finish()
        linker = Linker()
        linker.define_global("env", "g", GlobalType(I64, mutable=False), 1 << 40)
        instance = machine.instantiate(builder.build(), linker)
        assert instance.invoke("f") == [1 << 40]

    def test_start_function_runs(self, machine):
        module = compile_source("""
            global initialized: i32 = 0;
            func init() { initialized = 123; }
            start init;
            export func get() -> i32 { return initialized; }
        """)
        instance = machine.instantiate(module)
        assert instance.invoke("get") == [123]

    def test_element_segment_out_of_bounds_traps(self, machine):
        builder = ModuleBuilder()
        builder.add_table(1, 1)
        fb = builder.function((), ())
        fb.finish()
        builder.add_element(1, [fb.func_idx])  # offset 1 + 1 entry > size 1
        with pytest.raises(Trap):
            machine.instantiate(builder.build())


class TestTraps:
    def test_unreachable(self, machine):
        module = compile_source("export func f() { unreachable(); }")
        instance = machine.instantiate(module)
        with pytest.raises(Trap, match="unreachable"):
            instance.invoke("f")

    def test_division_by_zero(self, machine):
        module = compile_source("export func f(a: i32, b: i32) -> i32 { return a / b; }")
        instance = machine.instantiate(module)
        assert instance.invoke("f", [7, 2]) == [3]
        with pytest.raises(Trap, match="divide by zero"):
            instance.invoke("f", [7, 0])

    def test_trunc_overflow(self, machine):
        module = compile_source("export func f(x: f64) -> i32 { return i32(x); }")
        instance = machine.instantiate(module)
        assert instance.invoke("f", [-3.9]) == [0xFFFFFFFD]
        with pytest.raises(Trap, match="overflow"):
            instance.invoke("f", [1e20])
