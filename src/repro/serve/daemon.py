"""The service daemon: a unix-socket front end over the worker pool.

``repro serve`` builds a :class:`~repro.serve.pool.WorkerPool` and hands
it to a :class:`ServeDaemon`; clients (:mod:`repro.serve.client`, the
``--serve`` CLI flags, the CI smoke job) connect per request, send one
JSON line, and read one back. Connection handling is a thread per
request — the pool below provides the isolation and backpressure (a
request blocks until a worker frees up), so the daemon itself stays a
thin, crash-tolerant adapter:

* a client that disconnects mid-request only loses its own response;
* a malformed line gets a structured error response, not a dropped
  connection or a daemon traceback;
* pool-level failures (kills, breaker, degradation) are translated into
  the same ``status`` taxonomy the CLI exits with, so remote and local
  runs triage identically.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from pathlib import Path

from ..wasm.errors import BreakerOpen, WasmError, WorkerKilled
from . import wire
from .pool import WorkerPool


class ServeDaemon:
    """Accept loop + per-connection request handling over a unix socket."""

    def __init__(self, socket_path: str | Path, pool: WorkerPool,
                 telemetry=None):
        self.socket_path = str(socket_path)
        self.pool = pool
        self.telemetry = telemetry
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Bind and listen (stale socket files from a killed daemon are
        replaced — the service owns its path)."""
        path = Path(self.socket_path)
        if path.exists():
            path.unlink()
        path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(64)
        listener.settimeout(0.25)
        self._listener = listener
        return self

    def stop(self) -> None:
        """Stop accepting, drain handler threads, close the pool."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.pool.close()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)

    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`stop` (or EOF via signal)."""
        assert self._listener is not None, "call start() first"
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(target=self._handle_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-serve-conn")
            thread.start()
            self._threads.append(thread)
            self._threads = [t for t in self._threads if t.is_alive()]

    # -- one connection --------------------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        with contextlib.suppress(OSError, BrokenPipeError):
            with conn:
                conn.settimeout(600.0)
                with conn.makefile("rb") as reader:
                    line = wire.read_line(reader)
                if not line.strip():
                    return
                response = self._respond(line)
                conn.sendall(wire.dumps(response))

    def _respond(self, line: bytes) -> dict:
        try:
            request = wire.loads(line)
        except wire.WireError as exc:
            return {"ok": False, "status": 2,
                    "error": {"type": "WireError", "message": str(exc)}}
        kind = request.get("kind")
        if kind == "stats":
            return {"ok": True, "stats": self.pool.stats(),
                    "degraded": self.pool.degraded}
        if kind == "shutdown_daemon":
            # respond first; the stop happens off-thread so the client
            # gets its acknowledgement before the listener dies
            threading.Thread(target=self.stop, daemon=True).start()
            return {"ok": True, "stopping": True}
        try:
            timeout = request.pop("request_timeout", None)
            return self.pool.submit(request, timeout=timeout)
        except BreakerOpen as exc:
            return {"ok": False, "status": 9,
                    "error": {"type": "BreakerOpen", "message": str(exc)}}
        except WorkerKilled as exc:
            response = {"ok": False, "status": 8,
                        "error": {"type": "WorkerKilled",
                                  "message": str(exc),
                                  "kill_class": exc.kill_class}}
            bundle = getattr(exc, "bundle", None)
            if bundle:
                response["bundle"] = bundle
            return response
        except WasmError as exc:
            from ..cli import exit_status
            return {"ok": False, "status": exit_status(exc),
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)}}
        except Exception as exc:
            return {"ok": False, "status": 1,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)}}
