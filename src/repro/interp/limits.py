"""Resource governance for the interpreter: fuel, deadlines, and caps.

Instrumented binaries must "behave as the original program" (paper §2.4,
§4.3) — but a host serving untrusted modules also needs the inverse
guarantee: a misbehaving *guest* (or a heavyweight analysis driving one)
cannot hang or exhaust the host. This module provides the configuration and
accounting for that contract:

* :class:`ResourceLimits` — a bundle of bounds plumbed through
  :class:`~repro.interp.machine.Machine`,
  :class:`~repro.core.session.AnalysisSession`, and the CLI;
* :class:`Meter` — the per-machine accountant. Both engines charge it on
  **back-edges and calls** (every taken ``br``/``br_if``/``br_table`` plus
  every function call), the only points unbounded execution must pass
  through, so straight-line code pays nothing and the disabled-limits path
  stays zero-cost (machines without limits never construct a meter and the
  pre-decoded engine runs its unmetered loop);
* :class:`ResourceUsage` — the summary reported after execution.

Fuel and the deadline are *per top-level invocation*: the meter re-arms
whenever the machine's call depth returns to zero, so after a
:class:`~repro.wasm.errors.FuelExhausted` or
:class:`~repro.wasm.errors.DeadlineExceeded` trap a fresh ``invoke`` on the
same machine gets a fresh budget (crash-only, trap-clean semantics).
Cumulative totals are kept for :class:`ResourceUsage`.

Fuel accounting is engine-consistent: the legacy and pre-decoded loops
charge at the same events, so an uninstrumented program exhausts the same
fuel budget at the same point on either engine. (Instrumentation adds hook
calls, which are charged on the generic dispatch path but not at
call-site-specialized ``OP_HOOK`` sites, so fuel parity is only guaranteed
for uninstrumented modules.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..wasm.errors import DeadlineExceeded, ExhaustionError, FuelExhausted

#: How many metered events pass between wall-clock reads. Back-edges in a
#: tight loop arrive every few hundred nanoseconds; reading the clock on
#: each would dominate the metered path. 128 bounds the staleness of the
#: deadline check to well under a millisecond of guest progress.
DEADLINE_CHECK_INTERVAL = 128


@dataclass(frozen=True)
class ResourceLimits:
    """Execution bounds for one :class:`~repro.interp.machine.Machine`.

    Every field is optional; ``None`` disables that bound. A machine
    constructed without limits (or with an all-``None`` limits object whose
    only effect is ``max_call_depth``/``max_memory_pages``) runs the
    unmetered fast path.
    """

    #: Budget of metered events (taken branches + calls) per top-level
    #: invocation. Exhaustion raises :class:`FuelExhausted`.
    fuel: int | None = None
    #: Wall-clock budget in seconds per top-level invocation. Exceeding it
    #: raises :class:`DeadlineExceeded` (checked on calls and every
    #: :data:`DEADLINE_CHECK_INTERVAL` metered events).
    deadline_seconds: float | None = None
    #: Hard cap on linear memory, in 64 KiB pages. ``memory.grow`` past it
    #: returns -1 (never raises); instantiating a module whose *initial*
    #: size already exceeds it raises :class:`ResourceExhausted`.
    max_memory_pages: int | None = None
    #: Maximum Wasm call nesting; overrides the machine default when set.
    max_call_depth: int | None = None
    #: Maximum operand-stack height, checked at metered events. Exceeding
    #: it raises :class:`ExhaustionError` (a trap, like call-stack
    #: exhaustion).
    max_value_stack: int | None = None
    #: Meter without bounding: construct the meter (so fuel spent and peak
    #: depth are *measured*) even when no limit is set. Used by
    #: ``repro run -v`` and the telemetry layer to report resource usage
    #: for otherwise-unlimited runs.
    observe: bool = False
    #: Maximum simultaneously open WASI file descriptors (stdio and the
    #: preopen excluded). Exceeding it degrades gracefully: the opening
    #: syscall returns ``EMFILE`` to the guest.
    max_open_fds: int | None = None
    #: Maximum size in bytes of any single file in the WASI in-memory FS.
    #: A write growing a file past it is truncated to the boundary (short
    #: write), then ``ENOSPC``.
    max_file_bytes: int | None = None
    #: Maximum total bytes across all files in the WASI FS; same graceful
    #: short-write-then-``ENOSPC`` degradation as ``max_file_bytes``.
    max_fs_bytes: int | None = None
    #: Budget of WASI syscalls per machine. This is the *hard* tier:
    #: exhaustion raises :class:`~repro.wasm.errors.WasiExhausted`
    #: instead of an errno — a guest that ignores graceful degradation
    #: cannot spin on the host boundary forever.
    max_syscalls: int | None = None

    @property
    def metered(self) -> bool:
        """Whether any bound (or observation) requires in-loop metering."""
        return (self.fuel is not None or self.deadline_seconds is not None
                or self.max_value_stack is not None or self.observe)


@dataclass
class ResourceUsage:
    """Summary of resources consumed by a machine (or session).

    ``fuel_spent`` and ``peak_depth`` are only populated on metered
    machines (limits with fuel/deadline/value-stack bounds); ``peak_pages``
    is always reported (WebAssembly memory never shrinks, so the current
    size *is* the peak). ``hook_faults`` is filled in by
    :meth:`~repro.core.session.AnalysisSession.resource_usage` from the
    runtime's containment records.
    """

    fuel_spent: int = 0
    peak_pages: int = 0
    peak_depth: int = 0
    hook_faults: int = 0

    def as_dict(self) -> dict:
        return {
            "fuel_spent": self.fuel_spent,
            "peak_pages": self.peak_pages,
            "peak_depth": self.peak_depth,
            "hook_faults": self.hook_faults,
        }

    def record_to(self, registry) -> None:
        """Fold this summary into a metrics registry as gauges."""
        registry.gauge("repro_fuel_spent",
                       help="metered events charged (branches + calls)").set(
            self.fuel_spent)
        registry.gauge("repro_peak_memory_pages",
                       help="largest linear memory instantiated").set(
            self.peak_pages)
        registry.gauge("repro_peak_call_depth",
                       help="deepest Wasm call nesting observed").set(
            self.peak_depth)
        registry.gauge("repro_hook_faults",
                       help="contained hook faults").set(self.hook_faults)

    def summary(self) -> str:
        """One-line human-readable form (``repro run -v``)."""
        parts = [f"fuel_spent={self.fuel_spent}",
                 f"peak_pages={self.peak_pages}",
                 f"peak_depth={self.peak_depth}"]
        if self.hook_faults:
            parts.append(f"hook_faults={self.hook_faults}")
        return "resource usage: " + " ".join(parts)


class Meter:
    """Per-machine accountant for fuel, deadline, and value-stack bounds.

    The engines call :meth:`branch` on every taken branch and
    :meth:`enter_call` on every function call; both are kept tiny because
    they sit on metered hot paths. :meth:`arm` re-arms the per-invocation
    budgets and is called by the machine when depth returns to zero.
    """

    __slots__ = ("limits", "fuel_left", "deadline", "max_stack",
                 "fuel_spent_total", "peak_depth", "_tick", "_clock")

    def __init__(self, limits: ResourceLimits, clock=time.monotonic):
        self.limits = limits
        self._clock = clock
        self.max_stack = limits.max_value_stack
        self.fuel_spent_total = 0
        self.peak_depth = 0
        self._tick = 0
        self.fuel_left: int | None = None
        self.deadline: float | None = None
        self.arm()

    def arm(self) -> None:
        """Reset the per-invocation fuel and deadline budgets."""
        self.fuel_left = self.limits.fuel
        if self.limits.deadline_seconds is not None:
            self.deadline = self._clock() + self.limits.deadline_seconds
        else:
            self.deadline = None

    # -- charge points -------------------------------------------------------

    def branch(self, stack_len: int) -> None:
        """Charge one taken branch (the loop back-edge charge point)."""
        fuel = self.fuel_left
        if fuel is not None:
            if fuel <= 0:
                raise FuelExhausted(
                    f"fuel exhausted after {self.limits.fuel} metered events")
            self.fuel_left = fuel - 1
        self.fuel_spent_total += 1
        if self.max_stack is not None and stack_len > self.max_stack:
            raise ExhaustionError(
                f"value stack exceeded {self.max_stack} entries "
                f"({stack_len} live)")
        if self.deadline is not None:
            self._tick += 1
            if not self._tick % DEADLINE_CHECK_INTERVAL and \
                    self._clock() > self.deadline:
                raise DeadlineExceeded(
                    f"deadline of {self.limits.deadline_seconds}s exceeded")

    # -- state capture (repro.interp.snapshot) --------------------------------

    def residue(self) -> dict:
        """Cumulative accounting state that survives invocation boundaries.

        The per-invocation budgets (``fuel_left``/``deadline``) re-arm at
        depth zero and are *not* part of a snapshot; the cumulative totals
        and the deadline-check phase (``tick``) are, so a restored machine
        reports continuous :class:`ResourceUsage` and replays its clock
        reads at the same events.
        """
        return {"fuel_spent": self.fuel_spent_total,
                "peak_depth": self.peak_depth,
                "tick": self._tick}

    def restore_residue(self, residue: dict) -> None:
        """Restore the cumulative accounting captured by :meth:`residue`."""
        self.fuel_spent_total = int(residue.get("fuel_spent", 0))
        self.peak_depth = int(residue.get("peak_depth", 0))
        self._tick = int(residue.get("tick", 0))

    def enter_call(self, depth: int) -> None:
        """Charge one function call; checks the deadline unconditionally."""
        if depth > self.peak_depth:
            self.peak_depth = depth
        fuel = self.fuel_left
        if fuel is not None:
            if fuel <= 0:
                raise FuelExhausted(
                    f"fuel exhausted after {self.limits.fuel} metered events")
            self.fuel_left = fuel - 1
        self.fuel_spent_total += 1
        if self.deadline is not None and self._clock() > self.deadline:
            raise DeadlineExceeded(
                f"deadline of {self.limits.deadline_seconds}s exceeded")
