"""Fluent construction of WebAssembly modules.

The builder is used by the MiniC compiler back end, the synthetic workload
generators, and many tests. It manages type interning, index spaces, and
local allocation, and emits the same flat-instruction :class:`Module`
representation the rest of the toolkit consumes.
"""

from __future__ import annotations

from .errors import WasmError
from .module import (BrTable, DataSegment, ElemSegment, Export, Function,
                     Global, Import, Instr, MemArg, Module)
from .types import (FuncType, GlobalType, Limits, MemoryType, TableType,
                    ValType)


class FunctionBuilder:
    """Builds one function body instruction-by-instruction."""

    def __init__(self, module_builder: "ModuleBuilder", func_idx: int,
                 functype: FuncType, name: str | None):
        self.module_builder = module_builder
        self.func_idx = func_idx
        self.functype = functype
        self.name = name
        self.locals: list[ValType] = []
        self.body: list[Instr] = []
        self._finished = False

    # -- locals -----------------------------------------------------------

    def add_local(self, valtype: ValType) -> int:
        """Declare a new local, returning its index (params come first)."""
        self.locals.append(valtype)
        return len(self.functype.params) + len(self.locals) - 1

    @property
    def num_params(self) -> int:
        return len(self.functype.params)

    def local_type(self, idx: int) -> ValType:
        if idx < self.num_params:
            return self.functype.params[idx]
        return self.locals[idx - self.num_params]

    # -- instruction emission ------------------------------------------------

    def emit(self, op: str, **immediates) -> "FunctionBuilder":
        if self._finished:
            raise WasmError("cannot emit into a finished function")
        self.body.append(Instr(op, **immediates))
        return self

    def instr(self, instr: Instr) -> "FunctionBuilder":
        if self._finished:
            raise WasmError("cannot emit into a finished function")
        self.body.append(instr)
        return self

    # Convenience emitters used pervasively by the compiler and generators.

    def i32_const(self, value: int) -> "FunctionBuilder":
        return self.emit("i32.const", value=value)

    def i64_const(self, value: int) -> "FunctionBuilder":
        return self.emit("i64.const", value=value)

    def f32_const(self, value: float) -> "FunctionBuilder":
        return self.emit("f32.const", value=value)

    def f64_const(self, value: float) -> "FunctionBuilder":
        return self.emit("f64.const", value=value)

    def get_local(self, idx: int) -> "FunctionBuilder":
        return self.emit("get_local", idx=idx)

    def set_local(self, idx: int) -> "FunctionBuilder":
        return self.emit("set_local", idx=idx)

    def tee_local(self, idx: int) -> "FunctionBuilder":
        return self.emit("tee_local", idx=idx)

    def get_global(self, idx: int) -> "FunctionBuilder":
        return self.emit("get_global", idx=idx)

    def set_global(self, idx: int) -> "FunctionBuilder":
        return self.emit("set_global", idx=idx)

    def call(self, func_idx: int) -> "FunctionBuilder":
        return self.emit("call", idx=func_idx)

    def call_indirect(self, type_idx: int) -> "FunctionBuilder":
        return self.emit("call_indirect", idx=type_idx)

    def block(self, result: ValType | None = None) -> "FunctionBuilder":
        return self.emit("block", blocktype=result)

    def loop(self, result: ValType | None = None) -> "FunctionBuilder":
        return self.emit("loop", blocktype=result)

    def if_(self, result: ValType | None = None) -> "FunctionBuilder":
        return self.emit("if", blocktype=result)

    def else_(self) -> "FunctionBuilder":
        return self.emit("else")

    def end(self) -> "FunctionBuilder":
        return self.emit("end")

    def br(self, label: int) -> "FunctionBuilder":
        return self.emit("br", label=label)

    def br_if(self, label: int) -> "FunctionBuilder":
        return self.emit("br_if", label=label)

    def br_table(self, labels: list[int], default: int) -> "FunctionBuilder":
        return self.emit("br_table", br_table=BrTable(tuple(labels), default))

    def load(self, op: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        return self.emit(op, memarg=MemArg(align, offset))

    def store(self, op: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        return self.emit(op, memarg=MemArg(align, offset))

    def finish(self) -> Function:
        """Close the body (appending ``end`` if missing) and register it."""
        if self._finished:
            raise WasmError("function already finished")
        depth = 0
        for instr in self.body:
            if instr.info.is_block_start:
                depth += 1
            elif instr.op == "end":
                depth -= 1
        if depth == 0:
            self.body.append(Instr("end"))  # close the implicit function block
        elif depth != -1:
            raise WasmError(f"unbalanced blocks in function body (depth {depth})")
        self._finished = True
        function = Function(
            type_idx=self.module_builder.module.add_type(self.functype),
            locals=self.locals, body=self.body, name=self.name)
        defined = self.func_idx - self.module_builder.module.num_imported_functions
        self.module_builder.module.functions[defined] = function
        return function

class ModuleBuilder:
    """Builds a whole module. Imports must be added before defined entities."""

    def __init__(self, name: str | None = None):
        self.module = Module(name=name)
        self._defining_started = False

    # -- imports ---------------------------------------------------------------

    def import_function(self, module: str, name: str, functype: FuncType) -> int:
        """Import a function, returning its function index."""
        if self._defining_started:
            raise WasmError("imports must be added before defining functions")
        type_idx = self.module.add_type(functype)
        self.module.imports.append(Import(module, name, type_idx))
        return self.module.num_imported_functions - 1

    def import_memory(self, module: str, name: str, limits: Limits) -> None:
        self.module.imports.append(Import(module, name, MemoryType(limits)))

    def import_global(self, module: str, name: str, globaltype: GlobalType) -> int:
        self.module.imports.append(Import(module, name, globaltype))
        return len(self.module.imported_globals()) - 1

    # -- definitions --------------------------------------------------------------

    def function(self, params: tuple[ValType, ...] = (),
                 results: tuple[ValType, ...] = (),
                 name: str | None = None,
                 export: str | None = None) -> FunctionBuilder:
        """Start a new function; call ``finish()`` on the returned builder."""
        self._defining_started = True
        functype = FuncType(params, results)
        func_idx = self.module.num_functions
        # reserve the slot so nested function creation keeps indices stable
        self.module.functions.append(
            Function(type_idx=self.module.add_type(functype), name=name))
        if export is not None:
            self.export_function(export, func_idx)
        return FunctionBuilder(self, func_idx, functype, name)

    def add_global(self, valtype: ValType, mutable: bool = True,
                   init: int | float = 0, export: str | None = None) -> int:
        const_op = f"{valtype.value}.const"
        self.module.globals.append(
            Global(GlobalType(valtype, mutable), [Instr(const_op, value=init)]))
        global_idx = self.module.num_globals - 1
        if export is not None:
            self.module.exports.append(Export(export, "global", global_idx))
        return global_idx

    def add_memory(self, min_pages: int, max_pages: int | None = None,
                   export: str | None = None) -> int:
        self.module.memories.append(MemoryType(Limits(min_pages, max_pages)))
        memory_idx = self.module.num_memories - 1
        if export is not None:
            self.module.exports.append(Export(export, "memory", memory_idx))
        return memory_idx

    def add_table(self, min_entries: int, max_entries: int | None = None,
                  export: str | None = None) -> int:
        self.module.tables.append(TableType(Limits(min_entries, max_entries)))
        table_idx = self.module.num_tables - 1
        if export is not None:
            self.module.exports.append(Export(export, "table", table_idx))
        return table_idx

    def add_element(self, offset: int, func_idxs: list[int]) -> None:
        self.module.elements.append(
            ElemSegment([Instr("i32.const", value=offset)], list(func_idxs)))

    def add_data(self, offset: int, data: bytes) -> None:
        self.module.data.append(
            DataSegment([Instr("i32.const", value=offset)], data))

    def export_function(self, name: str, func_idx: int) -> None:
        self.module.exports.append(Export(name, "func", func_idx))

    def set_start(self, func_idx: int) -> None:
        self.module.start = func_idx

    def build(self) -> Module:
        """Return the built module (no copy; the builder is done)."""
        return self.module
