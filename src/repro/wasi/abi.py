"""WASI preview1 ABI constants for the subset this host module implements.

Values follow the ``wasi_snapshot_preview1`` witx definitions; only the
constants the subset actually touches are defined. Everything a guest can
observe — errno numbers, filetypes, whence values — must match real WASI
toolchain output, since workloads are compiled against the official ABI.
"""

from __future__ import annotations

#: The import-module name every preview1 toolchain emits.
WASI_MODULE = "wasi_snapshot_preview1"

# -- errno ---------------------------------------------------------------------

ERRNO_SUCCESS = 0
ERRNO_BADF = 8       # bad file descriptor
ERRNO_FAULT = 21     # bad address (OOB pointer from the guest)
ERRNO_INTR = 27      # interrupted (injected EINTR faults)
ERRNO_INVAL = 28     # invalid argument
ERRNO_IO = 29        # I/O error (injected EIO faults)
ERRNO_MFILE = 33     # too many open files (max_open_fds governance)
ERRNO_NOENT = 44     # no such file
ERRNO_NOSPC = 51     # no space left (max_file_bytes / max_fs_bytes)
ERRNO_NOTCAPABLE = 76

#: errno → symbolic name, for telemetry labels and fault diagnostics.
ERRNO_NAMES = {
    ERRNO_SUCCESS: "success",
    ERRNO_BADF: "badf",
    ERRNO_FAULT: "fault",
    ERRNO_INTR: "intr",
    ERRNO_INVAL: "inval",
    ERRNO_IO: "io",
    ERRNO_MFILE: "mfile",
    ERRNO_NOENT: "noent",
    ERRNO_NOSPC: "nospc",
    ERRNO_NOTCAPABLE: "notcapable",
}


def errno_name(errno: int) -> str:
    return ERRNO_NAMES.get(errno, str(errno))


# -- filetype (fd_fdstat_get) --------------------------------------------------

FILETYPE_UNKNOWN = 0
FILETYPE_CHARACTER_DEVICE = 2
FILETYPE_DIRECTORY = 3
FILETYPE_REGULAR_FILE = 4

# -- whence (fd_seek) ----------------------------------------------------------

WHENCE_SET = 0
WHENCE_CUR = 1
WHENCE_END = 2

# -- clockid (clock_time_get) --------------------------------------------------

CLOCKID_REALTIME = 0
CLOCKID_MONOTONIC = 1

# -- oflags (path_open) --------------------------------------------------------

OFLAGS_CREAT = 1 << 0
OFLAGS_DIRECTORY = 1 << 1
OFLAGS_EXCL = 1 << 2
OFLAGS_TRUNC = 1 << 3

#: The preopened directory descriptor (stdio is 0/1/2, the root preopen 3).
PREOPEN_FD = 3
