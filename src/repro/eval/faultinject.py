"""Seeded fault-injection harness for the binary pipeline.

Generates deterministic corrupted variants of known-good ``.wasm`` binaries
(bit flips, LEB128 continuation-bit tampering, section-size lies,
truncations, splices, insertions) and drives each mutant through the full
pipeline — decode → validate → instrument → encode → re-decode, optionally
followed by fuel-limited execution on both engines — asserting that the
toolkit only ever fails with :class:`~repro.wasm.errors.WasmError`
subclasses. Any other exception (``IndexError``, ``struct.error``,
``KeyError``, …) is an *escape*: a path where malformed input reaches code
that assumed well-formedness.

Everything is keyed off one integer seed, so a campaign is exactly
reproducible: a failure record carries the seed, corpus entry, and mutant
index needed to regenerate the offending binary with
:func:`regenerate_mutant`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.analysis import ALL_GROUPS
from ..core.instrument import instrument_module
from ..interp.host import Linker
from ..interp.limits import ResourceLimits
from ..interp.machine import Machine
from ..minic import compile_source
from ..wasm.builder import ModuleBuilder
from ..wasm.decoder import decode_module
from ..wasm.encoder import encode_module
from ..wasm.errors import WasmError
from ..wasm.types import F64, I32, FuncType
from ..wasm.validation import validate_module

#: Pipeline stages, in order; a mutant "reaches" the last stage it survived.
STAGES = ("decode", "validate", "instrument", "encode", "redecode", "execute")

#: Execution budget for mutants that survive static checking. Tight on
#: purpose: a mutant that validates is a legitimate (if weird) program, and
#: the campaign only needs to prove the engines fail cleanly, not run it to
#: completion.
EXECUTE_LIMITS = ResourceLimits(fuel=20_000, deadline_seconds=2.0,
                                max_memory_pages=64, max_call_depth=64)


# -- seed corpus ----------------------------------------------------------------


def _kitchen_sink_module():
    """A small module exercising every section id the decoder knows."""
    builder = ModuleBuilder("kitchen_sink")
    printer = builder.import_function("env", "print_f64", FuncType((F64,), ()))
    builder.add_memory(1, 4)
    glob = builder.add_global(I32, mutable=True, init=7)

    fb = builder.function((I32, I32), (I32,), name="add", export="add")
    fb.get_local(0).get_local(1).emit("i32.add")
    add_idx = fb.func_idx
    fb.finish()

    fb = builder.function((I32,), (I32,), name="loops", export="loops")
    acc = fb.add_local(I32)
    fb.block()
    fb.loop()
    fb.get_local(acc).i32_const(1).emit("i32.add").set_local(acc)
    fb.get_local(acc).get_local(0).emit("i32.ge_s").br_if(1)
    fb.br(0)
    fb.end()
    fb.end()
    fb.get_local(acc)
    loops_idx = fb.func_idx
    fb.finish()

    fb = builder.function((I32,), (I32,), name="mem", export="mem")
    fb.i32_const(16).get_local(0).store("i32.store")
    fb.i32_const(16).load("i32.load")
    fb.get_global(glob).emit("i32.add")
    fb.f64_const(1.5).call(printer)
    fb.finish()

    builder.add_table(2)
    builder.add_element(0, [add_idx, loops_idx])
    builder.add_data(32, b"fault-injection corpus")
    return builder.build()


def wasi_corpus() -> dict[str, bytes]:
    """Known-good WASI-preview1 binaries for host-boundary fuzzing.

    Mutants of these exercise the syscall surface: :func:`_execute_mutant`
    detects the preview1 imports and attaches a :class:`~repro.wasi.WasiContext`
    whose fault plane is seeded from the mutant's own bytes, so every run
    is still a pure function of the binary. Deterministic by construction
    (the MiniC sources are fixed and compilation is randomness-free).
    """
    from ..wasm.encoder import encode_module as _encode
    from ..workloads.wasi_io import wasi_io_module, wasi_io_names
    return {f"wasi_{name}": _encode(wasi_io_module(name))
            for name in wasi_io_names()}


def seed_corpus(wasi: bool = False) -> dict[str, bytes]:
    """Encoded known-good binaries the mutator corrupts.

    Deterministic by construction (no randomness in generation), so the
    same seed always yields byte-identical mutants. The default set is
    pinned by tests; ``wasi=True`` additionally merges :func:`wasi_corpus`
    so campaigns cover the host-boundary syscall surface.
    """
    if wasi:
        corpus = seed_corpus()
        corpus.update(wasi_corpus())
        return corpus
    fib = compile_source("""
        export func fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    """, "fib")
    memory = compile_source("""
        memory 1;
        export func touch(v: f64) -> f64 {
            mem_f64[3] = v;
            mem_u8[100] = 200;
            return mem_f64[3];
        }
        export func poke(i: i32) -> i32 {
            mem_u8[i] = 42;
            return mem_u8[i];
        }
    """, "memory")
    return {
        "kitchen_sink": encode_module(_kitchen_sink_module()),
        "fib": encode_module(fib),
        "memory": encode_module(memory),
    }


# -- mutation strategies --------------------------------------------------------


def _mutate_flip(data: bytearray, rng: random.Random) -> str:
    pos = rng.randrange(len(data))
    mask = rng.randrange(1, 256)
    data[pos] ^= mask
    return f"flip@{pos}^{mask:#04x}"


def _mutate_set(data: bytearray, rng: random.Random) -> str:
    pos = rng.randrange(len(data))
    value = rng.randrange(256)
    data[pos] = value
    return f"set@{pos}={value:#04x}"


def _mutate_truncate(data: bytearray, rng: random.Random) -> str:
    cut = rng.randrange(len(data))
    del data[cut:]
    return f"truncate@{cut}"


def _mutate_leb_continuation(data: bytearray, rng: random.Random) -> str:
    """Tamper with LEB128 continuation bits: set 0x80 on a run of bytes.

    Turns terminated varints into overlong/unterminated ones and shifts
    everything after them — the classic desynchronization attack on
    length-prefixed formats.
    """
    pos = rng.randrange(len(data))
    run = rng.randrange(1, 6)
    for i in range(pos, min(pos + run, len(data))):
        data[i] |= 0x80
    return f"leb-cont@{pos}+{run}"


def _mutate_leb_overlong(data: bytearray, rng: random.Random) -> str:
    """Insert redundant continuation bytes, making a varint overlong."""
    pos = rng.randrange(len(data))
    count = rng.randrange(1, 12)
    data[pos:pos] = bytes([0x80]) * count
    return f"leb-overlong@{pos}+{count}"


def _mutate_section_size(data: bytearray, rng: random.Random) -> str:
    """Lie in a top-level section size field.

    Walks the real section framing (id byte + LEB size) and rewrites one
    size with a random single-byte value, desynchronizing the section
    boundary from its contents.
    """
    from ..wasm import leb128

    sections: list[int] = []  # offsets of size fields
    pos = 8
    try:
        while pos < len(data):
            size_at = pos + 1
            size, after = leb128.decode_unsigned(bytes(data), size_at, 32)
            sections.append(size_at)
            pos = after + size
    except WasmError:
        pass
    if not sections:
        return _mutate_flip(data, rng)
    size_at = rng.choice(sections)
    new_size = rng.randrange(128)  # single LEB byte, keeps framing parseable
    data[size_at] = new_size
    return f"section-size@{size_at}={new_size}"


def _mutate_splice(data: bytearray, rng: random.Random) -> str:
    length = rng.randrange(1, max(2, len(data) // 4))
    src = rng.randrange(len(data))
    dst = rng.randrange(len(data))
    chunk = bytes(data[src:src + length])
    data[dst:dst + len(chunk)] = chunk
    return f"splice@{src}->{dst}+{length}"


def _mutate_insert(data: bytearray, rng: random.Random) -> str:
    pos = rng.randrange(len(data) + 1)
    count = rng.randrange(1, 8)
    data[pos:pos] = bytes(rng.randrange(256) for _ in range(count))
    return f"insert@{pos}+{count}"


def _mutate_delete(data: bytearray, rng: random.Random) -> str:
    pos = rng.randrange(len(data))
    count = rng.randrange(1, 8)
    del data[pos:pos + count]
    return f"delete@{pos}+{count}"


MUTATORS = (
    _mutate_flip,
    _mutate_set,
    _mutate_truncate,
    _mutate_leb_continuation,
    _mutate_leb_overlong,
    _mutate_section_size,
    _mutate_splice,
    _mutate_insert,
    _mutate_delete,
)


def mutate(seed_binary: bytes, rng: random.Random,
           max_ops: int = 3) -> tuple[bytes, str]:
    """Apply 1..max_ops random mutations; returns the mutant and its recipe.

    The default (up to three stacked mutations) is the blind-campaign
    setting. Coverage-guided fuzzing passes ``max_ops=1``: single-op
    mutants stay closer to their (interesting) parent, which measurably
    reaches more deep-stage signatures per budget.
    """
    data = bytearray(seed_binary)
    recipes = []
    for _ in range(rng.randrange(1, max_ops + 1)):
        if not data:
            break
        mutator = rng.choice(MUTATORS)
        recipes.append(mutator(data, rng))
    return bytes(data), "; ".join(recipes) or "identity"


def mutant_rng(seed: int, corpus_name: str, index: int) -> random.Random:
    """The independent mutation RNG for one mutant.

    Derived from ``(campaign_seed, corpus_entry, index)`` rather than one
    sequential stream, so any mutant regenerates exactly from its triple —
    shards of a parallel campaign are reproducible in isolation, and
    :func:`regenerate_mutant` stays exact no matter which process (or
    round) originally produced the mutant.
    """
    return random.Random(f"{seed}:{corpus_name}:{index}")


def regenerate_mutant(seed: int, corpus_name: str, index: int,
                      corpus: dict[str, bytes] | None = None,
                      max_ops: int = 3) -> bytes:
    """Re-create the exact mutant a :class:`Failure` record refers to.

    For mutants derived from an *evolved* corpus entry (coverage-guided
    campaigns), pass ``corpus=repro.eval.fuzz.load_corpus_entries(dir)``
    so the ``cov-*`` parent bytes resolve, and ``max_ops=1`` to match the
    guided mutation schedule (bundle manifests record it).
    """
    corpus = corpus if corpus is not None else seed_corpus()
    mutant, _ = mutate(corpus[corpus_name], mutant_rng(seed, corpus_name, index),
                       max_ops=max_ops)
    return mutant


# -- campaign -------------------------------------------------------------------


@dataclass
class Failure:
    """One escape: a mutant that raised something other than WasmError."""

    corpus_name: str
    index: int
    seed: int
    stage: str
    recipe: str
    exc_type: str
    message: str

    def __str__(self) -> str:
        return (f"[{self.corpus_name}#{self.index} seed={self.seed}] "
                f"{self.stage}: {self.exc_type}: {self.message} "
                f"(recipe: {self.recipe})")


@dataclass
class CampaignResult:
    """Outcome of one fault-injection campaign."""

    mutants: int = 0
    seed: int = 0
    #: mutants whose pipeline ended (cleanly) at each stage
    rejected_at: dict = field(default_factory=dict)
    #: mutants that survived every stage they were driven through
    survived: int = 0
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = [f"{self.mutants} mutants (seed {self.seed})"]
        for stage in STAGES:
            if stage in self.rejected_at:
                parts.append(f"{self.rejected_at[stage]} rejected at {stage}")
        parts.append(f"{self.survived} survived")
        parts.append(f"{len(self.failures)} escapes")
        return ", ".join(parts)


def _permissive_linker() -> Linker:
    """Imports the corpus modules (and most mutants of them) can link.

    Mutated import *names* simply fail resolution with a WasmError, which
    is a clean rejection, not an escape.
    """
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: None)
    linker.define_function("env", "print_i32", FuncType((I32,), ()),
                           lambda args: None)
    return linker


def _wasi_for_mutant(binary: bytes, module):
    """A deterministic WASI context for mutants importing preview1 syscalls.

    The fault-plane seed derives from the mutant's own bytes, so
    :func:`classify` stays a pure function of the binary: the same mutant
    always sees the same injected errno failures, short transfers, and
    clock skew — reduced bundles replay exactly. Governance bounds are
    tight for the same reason the execute fuel budget is: the campaign
    proves clean failure, not useful work.
    """
    import hashlib

    from ..wasi import FaultPlane, WasiContext, module_imports_wasi
    from ..workloads.wasi_io import SAMPLE_FILES, SAMPLE_STDIN
    if not module_imports_wasi(module):
        return None
    fault_seed = int.from_bytes(hashlib.sha256(binary).digest()[:8], "big")
    from dataclasses import replace
    limits = replace(EXECUTE_LIMITS, max_open_fds=8, max_file_bytes=4096,
                     max_fs_bytes=16384, max_syscalls=512)
    return WasiContext(args=["mutant"], stdin=SAMPLE_STDIN,
                       files=dict(SAMPLE_FILES),
                       faults=FaultPlane(seed=fault_seed, rate=0.25,
                                         escalate_rate=0.02),
                       limits=limits)


def _execute_mutant(binary: bytes, predecode: bool) -> None:
    """Instantiate and poke a statically valid mutant under tight limits.

    Traps and exhaustion during an export call propagate as WasmErrors —
    the pipeline records them as clean execute-stage rejections, so their
    error class (Trap, FuelExhausted, ResourceExhausted, ...) is part of
    the signature space rather than being silently folded into "pass".
    WASI mutants additionally run against an injected-fault host module
    (:func:`_wasi_for_mutant`); any raw host exception crossing the
    boundary — instead of a well-formed errno or WasmError — is an escape.
    """
    module = decode_module(binary)
    machine = Machine(predecode=predecode, limits=EXECUTE_LIMITS)
    linker = _permissive_linker()
    wasi = _wasi_for_mutant(binary, module)
    if wasi is not None:
        wasi.register(linker)
    instance = machine.instantiate(module, linker)
    if wasi is not None:
        wasi.bind_memory(instance)
    for export in module.exports:
        if export.kind != "func":
            continue
        functype = module.func_type(export.idx)
        args = [1 if t is I32 else 1.0 for t in functype.params]
        machine.call(instance, export.idx, args)


def _pipeline_stage(binary: bytes, execute: bool,
                    engines: tuple[bool, ...]) -> tuple[str | None, WasmError | None]:
    """Drive one binary through the pipeline, keeping the rejecting error.

    Returns ``(None, None)`` if every stage passed, or ``(stage, exc)`` for
    the stage that cleanly rejected it. Non-WasmError exceptions propagate.
    """
    try:
        module = decode_module(binary)
    except WasmError as exc:
        return "decode", exc
    try:
        validate_module(module)
    except WasmError as exc:
        return "validate", exc
    try:
        result = instrument_module(module, groups=ALL_GROUPS)
    except WasmError as exc:
        return "instrument", exc
    try:
        reencoded = encode_module(result.module)
    except WasmError as exc:
        return "encode", exc
    try:
        decode_module(reencoded)
    except WasmError as exc:
        return "redecode", exc
    if execute:
        try:
            for predecode in engines:
                _execute_mutant(binary, predecode)
        except WasmError as exc:
            return "execute", exc
    return None, None


def run_pipeline(binary: bytes, execute: bool = False,
                 engines: tuple[bool, ...] = (True, False)) -> str | None:
    """Drive one binary through the pipeline.

    Returns None if every stage passed, or the name of the stage that
    (cleanly) rejected it. Non-WasmError exceptions propagate — the
    campaign records them as escapes.
    """
    stage, _ = _pipeline_stage(binary, execute, engines)
    return stage


@dataclass(frozen=True)
class Classification:
    """What the pipeline did with one binary.

    ``outcome`` is ``"pass"`` (every stage survived), ``"rejected"`` (a
    stage failed cleanly with a WasmError), or ``"escape"`` (a
    non-WasmError exception got out — a harness :class:`Failure`).
    :attr:`signature` is the identity the test-case reducer must preserve
    while shrinking: the failing stage plus the error class, but not the
    message (shrinking legitimately changes offsets and sizes embedded in
    messages).
    """

    stage: str | None
    outcome: str
    exc_type: str | None = None
    message: str | None = None

    @property
    def signature(self) -> tuple:
        return (self.stage, self.outcome, self.exc_type)

    def __str__(self) -> str:
        if self.outcome == "pass":
            return "pass"
        return f"{self.outcome} at {self.stage}: {self.exc_type}: {self.message}"


def classify(binary: bytes, execute: bool = True,
             engines: tuple[bool, ...] = (True, False)) -> Classification:
    """Classify one binary's pipeline outcome (never raises).

    The reducer's predicate and ``repro replay`` both compare
    classifications, so clean rejections carry their error class too — a
    crash bundle for a decode-stage rejection replays against the same
    :class:`~repro.wasm.errors.DecodeError`, not just "some failure".
    """
    try:
        stage, exc = _pipeline_stage(binary, execute, engines)
    except Exception as escape:  # noqa: BLE001 - escapes are the point
        return Classification(stage=_failing_stage(escape), outcome="escape",
                              exc_type=type(escape).__name__,
                              message=str(escape))
    if stage is None:
        return Classification(stage=None, outcome="pass")
    return Classification(stage=stage, outcome="rejected",
                          exc_type=type(exc).__name__, message=str(exc))


def run_campaign(mutants: int = 5000, seed: int = 20260806,
                 corpus: dict[str, bytes] | None = None,
                 execute: bool = True,
                 engines: tuple[bool, ...] = (True, False),
                 save_failures: str | None = None,
                 wasi: bool = False) -> CampaignResult:
    """Run a full seeded campaign; never raises on escapes, records them.

    With ``save_failures`` set, every escape is additionally persisted as a
    self-contained crash bundle under that directory (one subdirectory per
    failure, named ``<corpus>-<index>``), loadable by ``repro replay``.
    ``wasi=True`` widens the default corpus with :func:`wasi_corpus`.
    """
    corpus = corpus if corpus is not None else seed_corpus(wasi=wasi)
    result = CampaignResult(mutants=mutants, seed=seed)
    names = sorted(corpus)
    for index in range(mutants):
        name = names[index % len(names)]
        mutant, recipe = mutate(corpus[name], mutant_rng(seed, name, index))
        try:
            stage = run_pipeline(mutant, execute=execute, engines=engines)
        except Exception as exc:  # noqa: BLE001 - escapes are the point
            stage = _failing_stage(exc)
            failure = Failure(
                corpus_name=name, index=index, seed=seed, stage=stage,
                recipe=recipe, exc_type=type(exc).__name__, message=str(exc))
            result.failures.append(failure)
            if save_failures is not None:
                save_failure_bundle(failure, mutant, save_failures)
            continue
        if stage is None:
            result.survived += 1
        else:
            result.rejected_at[stage] = result.rejected_at.get(stage, 0) + 1
    return result


# -- crash bundles ----------------------------------------------------------------


def failure_manifest(failure: Failure, outcome: str = "escape") -> dict:
    """The crash-bundle manifest for one campaign failure."""
    return {
        "kind": "pipeline",
        "error": {"type": failure.exc_type, "message": failure.message,
                  "stage": failure.stage, "outcome": outcome},
        "fuzz": {"seed": failure.seed, "corpus": failure.corpus_name,
                 "index": failure.index, "recipe": failure.recipe},
    }


def save_failure_bundle(failure: Failure, mutant: bytes,
                        directory: str) -> "Path":
    """Persist one campaign failure as a crash bundle directory.

    Pipeline failures have no instance state or host-boundary log (the
    pipeline is deterministic given the bytes), so the bundle is manifest +
    module bytes; ``repro replay`` re-runs the pipeline and compares the
    outcome's stage and error class.
    """
    from pathlib import Path

    from ..interp.replay import write_crash_bundle

    target = Path(directory) / f"{failure.corpus_name}-{failure.index}"
    return write_crash_bundle(target, mutant, failure_manifest(failure))


def replay_failure_bundle(bundle, execute: bool = True,
                          engines: tuple[bool, ...] = (True, False),
                          ) -> tuple[bool, Classification]:
    """Re-run a pipeline crash bundle and compare against its manifest.

    Returns ``(reproduced, live_classification)``: reproduced is True when
    the live run stops at the recorded stage with the recorded outcome and
    error class. Messages are compared only when the bundle was not
    reduced (reduction legitimately rewrites offsets inside messages).
    """
    live = classify(bundle.module_bytes, execute=execute, engines=engines)
    recorded = bundle.manifest.get("error", {})
    reproduced = (live.stage == recorded.get("stage")
                  and live.outcome == recorded.get("outcome", "escape")
                  and live.exc_type == recorded.get("type"))
    return reproduced, live


def _failing_stage(exc: Exception) -> str:
    """Best-effort attribution of an escape to a pipeline stage."""
    tb = exc.__traceback__
    stage = "unknown"
    while tb is not None:
        name = tb.tb_frame.f_code.co_name
        if name in ("decode_module", "_decode_code"):
            stage = "decode"
        elif name == "validate_module":
            stage = "validate"
        elif name == "instrument_module":
            stage = "instrument"
        elif name == "encode_module":
            stage = "encode"
        elif name == "_execute_mutant":
            stage = "execute"
        tb = tb.tb_next
    return stage
