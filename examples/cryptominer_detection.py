"""Cryptominer detection through instruction profiling (paper Figure 1).

The scenario of the paper's introduction: a web page ships WebAssembly that
secretly mines cryptocurrency. Mining kernels have a distinctive signature
of integer operations (add/and/shl/shr_u/xor — the body of hash rounds).
The ten-line analysis of Figure 1 gathers that signature; here we run it
against a miner-like kernel and an innocuous numeric program and show that
only the miner is flagged.

Run:  python examples/cryptominer_detection.py
"""

from repro import analyze
from repro.analyses import CryptominerDetector
from repro.eval import polybench_workloads
from repro.minic import compile_source

# an (artificially small) hash-style mining loop: xorshift/scramble rounds
MINER = """
export func mine(rounds: i32) -> i32 {
    var h: i32 = 0x6a09e667;
    var nonce: i32 = 0;
    while (nonce < rounds) {
        h = h ^ (h << 13);
        h = h ^ shr_u(h, 17);
        h = (h + (nonce & 0x5bd1e995)) ^ (h << 5);
        h = h & 0x7fffffff;
        nonce = nonce + 1;
    }
    return h;
}
"""


def profile(name, module, entry, args, linker=None):
    detector = CryptominerDetector(min_total=500)
    session = analyze(module, detector, linker=linker, entry=entry, args=args)
    verdict = "SUSPICIOUS (miner-like)" if detector.is_suspicious() else "benign"
    print(f"{name}:")
    print(f"  binary instructions executed: {detector.total_binary}")
    print(f"  signature ops: {dict(sorted(detector.signature.items()))}")
    print(f"  signature fraction: {detector.signature_fraction:.2%}")
    print(f"  verdict: {verdict}\n")
    return detector


def main():
    miner = profile("miner.wasm", compile_source(MINER), "mine", (1000,))
    assert miner.is_suspicious()

    workload = polybench_workloads(["gemm"])[0]
    gemm = profile("gemm.wasm (PolyBench)", workload.module(), "main", (),
                   linker=workload.linker())
    assert not gemm.is_suspicious()
    print("only the miner was flagged.")


if __name__ == "__main__":
    main()
