"""The WASI preview1 subset host module: syscalls, replay, governance.

:class:`WasiContext` owns everything one guest can see across the host
boundary — argv/environ, a deterministic clock, seeded randomness, the
in-memory FS (:mod:`repro.wasi.fs`), and the fault plane
(:mod:`repro.wasi.faults`) — and registers each syscall as an ordinary
:class:`~repro.interp.host.HostFunction` under
``wasi_snapshot_preview1``. Because the syscalls go through the same
linker/host-call machinery as any ``env`` import, both engines (and the
instrumented path) see byte-identical behavior for free.

**Replay protocol.** WASI syscalls have memory side effects, so they are
excluded from the machine's generic ``host_call`` recording (the
``is_wasi`` flag) and route themselves through the replay layer's
``wasi_call`` kind instead: every syscall's outcome is a pair
``(values, writes)`` where ``writes`` is the list of ``(addr, bytes)``
linear-memory stores the call performs. Live runs compute the pair
(recording it when a :class:`~repro.interp.replay.Recorder` is attached);
replayed runs receive the recorded pair without touching the FS, the
fault plane, or the clock — then both paths apply the writes through the
same code. That is what makes crash bundles from I/O workloads replay
bit-identically cross-engine, injected faults included.

**Failure semantics.** Guests only ever see well-formed WASI errnos: an
out-of-bounds guest pointer surfaces as ``EFAULT``, injected faults as
their configured errno / short transfer / clock skew, and governance
limits as ``ENOSPC``/``EMFILE``. The only syscall outcomes that abort the
invocation are real traps by design: ``proc_exit`` (a clean
:class:`~repro.wasm.errors.ProcExit`), an exhausted
``max_syscalls`` budget, and an ``escalate=True`` fault (both
:class:`~repro.wasm.errors.WasiExhausted`).
"""

from __future__ import annotations

import base64
import random
import struct

from ..interp.host import HostFunction, Linker
from ..wasm.errors import (ProcExit, ResourceExhausted, Trap, WasiExhausted,
                           WasmError)
from ..wasm.types import FuncType, ValType
from .abi import (CLOCKID_MONOTONIC, CLOCKID_REALTIME, ERRNO_BADF,
                  ERRNO_FAULT, ERRNO_INVAL, ERRNO_NOTCAPABLE, ERRNO_SUCCESS,
                  PREOPEN_FD, WASI_MODULE, errno_name)
from .faults import FaultPlane
from .fs import WasiFS

I32 = ValType.I32
I64 = ValType.I64

#: Fixed advance of the deterministic clock per ``clock_time_get`` call.
DEFAULT_CLOCK_STEP_NS = 1_000_000
#: Deterministic epoch offset separating REALTIME from MONOTONIC readings.
REALTIME_EPOCH_NS = 1_700_000_000 * 1_000_000_000

#: ``name -> (param valtypes, result valtypes)`` for the whole subset.
SYSCALL_SIGNATURES: dict[str, tuple[tuple, tuple]] = {
    "args_sizes_get": ((I32, I32), (I32,)),
    "args_get": ((I32, I32), (I32,)),
    "environ_sizes_get": ((I32, I32), (I32,)),
    "environ_get": ((I32, I32), (I32,)),
    "clock_time_get": ((I32, I64, I32), (I32,)),
    "fd_read": ((I32, I32, I32, I32), (I32,)),
    "fd_write": ((I32, I32, I32, I32), (I32,)),
    "fd_seek": ((I32, I64, I32, I32), (I32,)),
    "fd_close": ((I32,), (I32,)),
    "fd_fdstat_get": ((I32, I32), (I32,)),
    "path_open": ((I32, I32, I32, I32, I32, I64, I64, I32, I32), (I32,)),
    "random_get": ((I32, I32), (I32,)),
    "proc_exit": ((I32,), ()),
}


def _signed64(value: int) -> int:
    """Canonical-unsigned i64 → Python signed int (for seek offsets)."""
    return value - (1 << 64) if value >= (1 << 63) else value


class WasiContext:
    """One guest's view of the host: argv/env, clock, RNG, FS, faults.

    Construct, :meth:`register` into the linker before instantiation,
    :meth:`bind_memory` after (syscalls need the instance's linear
    memory), then invoke as usual. ``replay`` takes the machine's
    Recorder/Replayer; ``limits`` the machine's
    :class:`~repro.interp.limits.ResourceLimits` (only the WASI
    governance fields are read here).
    """

    def __init__(self, args: list[str] | None = None,
                 env: dict[str, str] | None = None,
                 stdin: bytes = b"",
                 files: dict[str, bytes] | None = None,
                 fs: WasiFS | None = None,
                 faults: FaultPlane | None = None,
                 limits=None, telemetry=None, replay=None,
                 clock_base_ns: int = 0,
                 clock_step_ns: int = DEFAULT_CLOCK_STEP_NS,
                 random_seed: int = 0):
        self.args = list(args or [])
        self.env = dict(env or {})
        self._stdin = bytes(stdin)
        self._init_files = {k: bytes(v) for k, v in (files or {}).items()}
        if fs is None:
            fs = WasiFS(
                files=self._init_files, stdin=self._stdin,
                max_open_fds=getattr(limits, "max_open_fds", None),
                max_file_bytes=getattr(limits, "max_file_bytes", None),
                max_fs_bytes=getattr(limits, "max_fs_bytes", None))
        self.fs = fs
        self.faults = faults
        self._limits = limits
        self._telemetry = telemetry
        self._replay = replay
        self._memory = None
        self.clock_base_ns = clock_base_ns
        self.clock_step_ns = clock_step_ns
        self.random_seed = random_seed
        self._random = random.Random(f"wasi-random:{random_seed}")
        self._clock_skew_ns = 0
        self._counts: dict[str, int] = {}
        self.total_syscalls = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._hists: dict = {}
        self._counters: dict = {}

    # -- wiring ---------------------------------------------------------------

    def register(self, linker: Linker) -> Linker:
        """Define every subset syscall on ``linker`` (is_wasi-flagged)."""
        impls = {
            "args_sizes_get": self._args_sizes_get,
            "args_get": self._args_get,
            "environ_sizes_get": self._environ_sizes_get,
            "environ_get": self._environ_get,
            "clock_time_get": self._clock_time_get,
            "fd_read": self._fd_read,
            "fd_write": self._fd_write,
            "fd_seek": self._fd_seek,
            "fd_close": self._fd_close,
            "fd_fdstat_get": self._fd_fdstat_get,
            "path_open": self._path_open,
            "random_get": self._random_get,
            "proc_exit": self._proc_exit,
        }
        for name, (params, results) in SYSCALL_SIGNATURES.items():
            functype = FuncType(list(params), list(results))

            def fn(call_args, _name=name, _impl=impls[name]):
                return self._call(_name, call_args, _impl)

            host_fn = HostFunction(functype, fn, f"{WASI_MODULE}.{name}")
            host_fn.is_wasi = True
            linker.define(WASI_MODULE, name, host_fn)
        return linker

    def bind_memory(self, instance) -> None:
        """Point syscalls at the instantiated guest's linear memory."""
        self._memory = instance.memory

    def attach_replay(self, replay) -> None:
        self._replay = replay

    # -- the syscall spine -----------------------------------------------------

    def _call(self, name: str, args: list, impl):
        tele = self._telemetry
        start = tele.clock() if tele is not None else 0.0
        replay = self._replay
        if replay is not None:
            values, writes = replay.wasi_call(
                name, args, lambda: self._execute(name, args, impl))
        else:
            values, writes = self._execute(name, args, impl)
        memory = self._memory
        if writes:
            if memory is None:
                raise WasmError(
                    f"WASI syscall {name} needs guest memory but "
                    f"WasiContext.bind_memory was never called")
            for addr, data in writes:
                memory.write(addr, data)
        if tele is not None:
            self._observe(name, tele.clock() - start,
                          values[0] if values else ERRNO_SUCCESS)
        return values

    def _execute(self, name: str, args: list, impl):
        """Run one syscall live: budget, fault plane, impl, errno taming.

        Never entered during replay — the Replayer serves the recorded
        ``(values, writes)`` pair instead, so FS/fault/clock state stays
        untouched and the log alone determines the outcome.
        """
        index = self._counts.get(name, 0)
        self._counts[name] = index + 1
        self.total_syscalls += 1
        limits = self._limits
        if limits is not None and limits.max_syscalls is not None and \
                self.total_syscalls > limits.max_syscalls:
            raise WasiExhausted(
                f"WASI syscall budget of {limits.max_syscalls} "
                f"exhausted at {name}")
        fault = None
        if self.faults is not None:
            fault = self.faults.check(name, index)
            if fault is not None:
                if fault.escalate:
                    raise WasiExhausted(
                        f"injected fault escalated at {name}[{index}]")
                if fault.errno is not None and name != "proc_exit":
                    return [fault.errno], []
        try:
            return impl(args, fault)
        except (ResourceExhausted, ProcExit):
            raise
        except Trap:
            # a guest-supplied pointer walked off linear memory: a
            # well-formed EFAULT, never a host trap at the boundary
            return [ERRNO_FAULT], []

    def _observe(self, name: str, elapsed: float, errno: int) -> None:
        tele = self._telemetry
        hist = self._hists.get(name)
        if hist is None:
            hist = tele.wasi_syscall_histogram(name)
            self._hists[name] = hist
        hist.observe(elapsed)
        key = (name, errno)
        counter = self._counters.get(key)
        if counter is None:
            counter = tele.registry.counter(
                "repro_wasi_syscalls_total",
                labels={"syscall": name, "errno": errno_name(errno)},
                help="WASI syscalls by outcome")
            self._counters[key] = counter
        counter.inc()

    # -- memory helpers (live path only) ---------------------------------------

    def _mem_read(self, addr: int, length: int) -> bytes:
        memory = self._memory
        if memory is None:
            raise Trap("no guest memory bound")
        return memory.read(addr, length)

    def _iovec(self, iovs: int, iovs_len: int) -> list[tuple[int, int]]:
        raw = self._mem_read(iovs, 8 * iovs_len)
        return [(int.from_bytes(raw[i * 8:i * 8 + 4], "little"),
                 int.from_bytes(raw[i * 8 + 4:i * 8 + 8], "little"))
                for i in range(iovs_len)]

    @staticmethod
    def _scatter(chunk: bytes, iov: list[tuple[int, int]]) -> list:
        writes = []
        offset = 0
        for ptr, length in iov:
            if offset >= len(chunk):
                break
            part = chunk[offset:offset + length]
            writes.append((ptr, part))
            offset += len(part)
        return writes

    # -- syscall implementations ----------------------------------------------
    # Each returns ``(values, writes)``; memory *reads* happen here (live
    # only), memory *writes* are returned for the spine to apply so the
    # live and replayed paths share one store site.

    def _string_block(self, strings: list[str]) -> tuple[int, bytes]:
        blob = b"".join(s.encode("utf-8") + b"\0" for s in strings)
        return len(strings), blob

    def _args_sizes_get(self, args, fault):
        argc_ptr, size_ptr = args
        count, blob = self._string_block(self.args)
        return [ERRNO_SUCCESS], [(argc_ptr, struct.pack("<I", count)),
                                 (size_ptr, struct.pack("<I", len(blob)))]

    def _args_get(self, args, fault):
        argv_ptr, buf_ptr = args
        return self._copy_strings(self.args, argv_ptr, buf_ptr)

    def _environ_sizes_get(self, args, fault):
        count_ptr, size_ptr = args
        count, blob = self._string_block(
            [f"{k}={v}" for k, v in sorted(self.env.items())])
        return [ERRNO_SUCCESS], [(count_ptr, struct.pack("<I", count)),
                                 (size_ptr, struct.pack("<I", len(blob)))]

    def _environ_get(self, args, fault):
        env_ptr, buf_ptr = args
        strings = [f"{k}={v}" for k, v in sorted(self.env.items())]
        return self._copy_strings(strings, env_ptr, buf_ptr)

    def _copy_strings(self, strings: list[str], array_ptr: int,
                      buf_ptr: int):
        pointers = bytearray()
        blob = bytearray()
        for s in strings:
            pointers += struct.pack("<I", buf_ptr + len(blob))
            blob += s.encode("utf-8") + b"\0"
        writes = []
        if pointers:
            writes.append((array_ptr, bytes(pointers)))
        if blob:
            writes.append((buf_ptr, bytes(blob)))
        return [ERRNO_SUCCESS], writes

    def _clock_time_get(self, args, fault):
        clockid, _precision, time_ptr = args
        if clockid not in (CLOCKID_REALTIME, CLOCKID_MONOTONIC):
            return [ERRNO_INVAL], []
        if fault is not None and fault.clock_skew_ns:
            self._clock_skew_ns += fault.clock_skew_ns
        index = self._counts.get("clock_time_get", 1) - 1
        now = (self.clock_base_ns + index * self.clock_step_ns
               + self._clock_skew_ns)
        if clockid == CLOCKID_REALTIME:
            now += REALTIME_EPOCH_NS
        return [ERRNO_SUCCESS], [(time_ptr, struct.pack("<Q",
                                                        now & (2**64 - 1)))]

    def _fd_read(self, args, fault):
        fd, iovs, iovs_len, nread_ptr = args
        iov = self._iovec(iovs, iovs_len)
        cap = sum(length for _, length in iov)
        if fault is not None and fault.short is not None:
            cap = min(cap, fault.short)
        errno, chunk = self.fs.read(fd, cap)
        if errno:
            return [errno], []
        self.bytes_read += len(chunk)
        writes = self._scatter(chunk, iov)
        writes.append((nread_ptr, struct.pack("<I", len(chunk))))
        return [ERRNO_SUCCESS], writes

    def _fd_write(self, args, fault):
        fd, iovs, iovs_len, nwritten_ptr = args
        iov = self._iovec(iovs, iovs_len)
        data = b"".join(self._mem_read(ptr, length) for ptr, length in iov)
        if fault is not None and fault.short is not None:
            data = data[:fault.short]
        errno, written = self.fs.write(fd, data)
        if errno:
            return [errno], []
        self.bytes_written += written
        return [ERRNO_SUCCESS], [(nwritten_ptr, struct.pack("<I", written))]

    def _fd_seek(self, args, fault):
        fd, offset, whence, newoffset_ptr = args
        errno, pos = self.fs.seek(fd, _signed64(offset), whence)
        if errno:
            return [errno], []
        return [ERRNO_SUCCESS], [(newoffset_ptr,
                                  struct.pack("<Q", pos & (2**64 - 1)))]

    def _fd_close(self, args, fault):
        (fd,) = args
        return [self.fs.close(fd)], []

    def _fd_fdstat_get(self, args, fault):
        fd, buf_ptr = args
        errno, filetype = self.fs.fdstat(fd)
        if errno:
            return [errno], []
        stat = struct.pack("<BxHxxxxQQ", filetype, 0,
                           2**64 - 1, 2**64 - 1)
        return [ERRNO_SUCCESS], [(buf_ptr, stat)]

    def _path_open(self, args, fault):
        (dirfd, _dirflags, path_ptr, path_len, oflags,
         _rights_base, _rights_inh, _fdflags, fd_ptr) = args
        if dirfd != PREOPEN_FD:
            entry = self.fs.lookup(dirfd)
            return [ERRNO_NOTCAPABLE if entry is not None else ERRNO_BADF], []
        try:
            path = self._mem_read(path_ptr, path_len).decode("utf-8")
        except UnicodeDecodeError:
            return [ERRNO_INVAL], []
        errno, fd = self.fs.open_path(path, oflags)
        if errno:
            return [errno], []
        return [ERRNO_SUCCESS], [(fd_ptr, struct.pack("<I", fd))]

    def _random_get(self, args, fault):
        buf_ptr, buf_len = args
        payload = self._random.randbytes(buf_len)
        return [ERRNO_SUCCESS], [(buf_ptr, payload)] if buf_len else []

    def _proc_exit(self, args, fault):
        (code,) = args
        raise ProcExit(code)

    # -- run products ----------------------------------------------------------

    def stdout_bytes(self) -> bytes:
        return bytes(self.fs.stdout)

    def stderr_bytes(self) -> bytes:
        return bytes(self.fs.stderr)

    def usage(self) -> dict:
        """Accounting summary (``repro run -v`` and serve responses)."""
        return {
            "syscalls": self.total_syscalls,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "open_fds": self.fs.open_file_count(),
            "fs_bytes": self.fs.total_bytes(),
            "faults_fired": len(self.faults.fired) if self.faults else 0,
        }

    # -- manifest / wire round-trip -------------------------------------------

    def config(self) -> dict:
        """JSON-able construction record for bundle manifests and serve
        requests; :meth:`from_config` rebuilds an equivalent context."""
        cfg: dict = {
            "args": list(self.args),
            "env": dict(self.env),
            "stdin": base64.b64encode(self._stdin).decode("ascii"),
            "files": {name: base64.b64encode(data).decode("ascii")
                      for name, data in sorted(self._init_files.items())},
            "clock_base_ns": self.clock_base_ns,
            "clock_step_ns": self.clock_step_ns,
            "random_seed": self.random_seed,
        }
        faults = self.faults
        if faults is not None and (faults.seed is not None or
                                   faults.schedule):
            cfg["faults"] = {
                "seed": faults.seed,
                "rate": faults.rate,
                "escalate_rate": faults.escalate_rate,
                "schedule": [
                    {"syscall": syscall, "index": idx,
                     "errno": f.errno, "short": f.short,
                     "clock_skew_ns": f.clock_skew_ns,
                     "escalate": f.escalate}
                    for (syscall, idx), f in sorted(
                        faults.schedule.items())],
            }
        return cfg

    @classmethod
    def from_config(cls, cfg: dict, limits=None, telemetry=None,
                    replay=None) -> "WasiContext":
        from .faults import Fault
        faults = None
        fault_cfg = cfg.get("faults")
        if fault_cfg:
            schedule = {
                (entry["syscall"], entry["index"]): Fault(
                    errno=entry.get("errno"), short=entry.get("short"),
                    clock_skew_ns=entry.get("clock_skew_ns", 0),
                    escalate=bool(entry.get("escalate")))
                for entry in fault_cfg.get("schedule", ())}
            faults = FaultPlane(
                seed=fault_cfg.get("seed"), schedule=schedule,
                rate=fault_cfg.get("rate", 0.05),
                escalate_rate=fault_cfg.get("escalate_rate", 0.0))
        return cls(
            args=cfg.get("args"), env=cfg.get("env"),
            stdin=base64.b64decode(cfg.get("stdin", "")),
            files={name: base64.b64decode(data)
                   for name, data in cfg.get("files", {}).items()},
            faults=faults, limits=limits, telemetry=telemetry,
            replay=replay,
            clock_base_ns=cfg.get("clock_base_ns", 0),
            clock_step_ns=cfg.get("clock_step_ns", DEFAULT_CLOCK_STEP_NS),
            random_seed=cfg.get("random_seed", 0))


def module_imports_wasi(module) -> bool:
    """Whether a decoded module imports anything from preview1 — the
    cue the CLI and fuzz harness use to auto-register a context."""
    return any(imp.module == WASI_MODULE for imp in module.imports)
