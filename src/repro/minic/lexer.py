"""MiniC lexer: a hand-written scanner producing a flat token stream."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = {
    "func", "import", "export", "global", "var", "if", "else", "while",
    "for", "return", "break", "continue", "type", "table", "memory",
    "start", "from",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", "@",
]


@dataclass(frozen=True)
class Token:
    kind: str        # 'int' | 'float' | 'ident' | 'keyword' | 'op' | 'string' | 'eof'
    text: str
    line: int
    value: int | float | None = None


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch == '"':
            end = source.find('"', pos + 1)
            if end == -1:
                raise LexError("unterminated string", line)
            tokens.append(Token("string", source[pos + 1:end], line))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            tok, pos = _scan_number(source, pos, line)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _scan_number(source: str, pos: int, line: int) -> tuple[Token, int]:
    n = len(source)
    start = pos
    if source.startswith(("0x", "0X"), pos):
        pos += 2
        while pos < n and (source[pos] in "0123456789abcdefABCDEF_"):
            pos += 1
        text = source[start:pos]
        value = int(text.replace("_", ""), 16)
        suffix = None
        if pos < n and source[pos] in "Ll":
            suffix = "L"
            pos += 1
        return Token("int", text + (suffix or ""), line, value), pos

    is_float = False
    while pos < n and (source[pos].isdigit() or source[pos] == "_"):
        pos += 1
    if pos < n and source[pos] == "." and not source.startswith("..", pos):
        is_float = True
        pos += 1
        while pos < n and source[pos].isdigit():
            pos += 1
    if pos < n and source[pos] in "eE":
        peek = pos + 1
        if peek < n and source[peek] in "+-":
            peek += 1
        if peek < n and source[peek].isdigit():
            is_float = True
            pos = peek
            while pos < n and source[pos].isdigit():
                pos += 1
    text = source[start:pos].replace("_", "")
    if is_float:
        suffix = None
        if pos < n and source[pos] in "fF":
            suffix = "f"
            pos += 1
        return Token("float", text + (suffix or ""), line, float(text)), pos
    suffix = None
    if pos < n and source[pos] in "Ll":
        suffix = "L"
        pos += 1
    elif pos < n and source[pos] in "fF" and not source[start:pos].isidentifier():
        # "1f" means float 1.0f
        suffix = "f"
        pos += 1
        return Token("float", text + "f", line, float(text)), pos
    return Token("int", text + (suffix or ""), line, int(text)), pos
