"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Selective vs full instrumentation (§2.4.2): size and run-time deltas.
2. On-demand vs eager monomorphization (§2.4.3): generated-hook counts.
3. Location arguments (every hook carries two i32 consts): size cost.
4. Parallel instrumentation (§3): wall-clock with a thread pool (the Rust
   original gets ~1.7x on 2 cores; CPython's GIL caps ours near 1.0x, which
   the report makes visible rather than hiding).
"""

from __future__ import annotations

import time

from repro.core import eager_hook_count, instrument_module
from repro.core.instrument import InstrumentationConfig
from repro.eval import (baseline_runtime, instrumented_runtime,
                        polybench_workloads, render_table)
from repro.wasm.encoder import encode_module
from repro.workloads import engine_demo
from repro.workloads.polybench import compile_kernel


def test_ablation_selective_instrumentation(benchmark, write_report):
    workload = polybench_workloads(["trisolv"])[0]
    module = workload.module()
    original_size = len(encode_module(module))

    rows = []
    base = baseline_runtime(workload, repeats=2)
    for label, groups in [("call only (call-graph analysis)", {"call"}),
                          ("begin only (block profiling)", {"begin"}),
                          ("load+store (memory tracing)", {"load", "store"}),
                          ("binary only (cryptominer)", {"binary"}),
                          ("all hooks", None)]:
        config_name = "all" if groups is None else "+".join(sorted(groups))
        result = instrument_module(module, groups=groups)
        size = len(encode_module(result.module))
        if groups is None:
            runtime = instrumented_runtime(workload, "all", repeats=2)
        else:
            runtime = None
            for group in groups:
                t = instrumented_runtime(workload, group, repeats=2)
                runtime = t if runtime is None else max(runtime, t)
        rows.append([label,
                     f"{100 * (size - original_size) / original_size:+.0f}%",
                     f"{runtime / base:.2f}x", result.hook_count])
    report = render_table(
        ["Configuration", "Size delta", "Relative runtime", "Hooks"],
        rows, title="Ablation: selective vs full instrumentation (trisolv)")
    write_report("ablation_selective", report)

    # selective instrumentation must be meaningfully cheaper than full
    full_size = rows[-1][1]
    call_size = rows[0][1]
    assert int(call_size.rstrip("%")) < int(full_size.rstrip("%"))

    benchmark.pedantic(
        lambda: instrument_module(module, groups={"call"}), rounds=3,
        iterations=1)


def test_ablation_monomorphization(benchmark, write_report):
    result = instrument_module(engine_demo())
    on_demand = result.hook_count
    widest = max(len(t.params) for t in engine_demo().types)
    eager = eager_hook_count(widest)
    call_sigs = len({spec.payload for spec in result.info.hooks
                     if spec.kind == "call_pre"})
    report = render_table(
        ["Strategy", "Hooks"],
        [["on-demand (what Wasabi generates)", f"{on_demand:,}"],
         [f"on-demand call_pre variants", f"{call_sigs:,}"],
         [f"eager, calls up to {widest} params", f"{eager:.3e}"]],
        title="Ablation: on-demand vs eager monomorphization (engine_demo)")
    write_report("ablation_monomorphization", report)
    assert on_demand < 2000 < eager

    benchmark.pedantic(lambda: instrument_module(engine_demo()).hook_count,
                       rounds=2, iterations=1)


def test_ablation_location_arguments(benchmark, write_report):
    module = compile_kernel("gemm")
    original = len(encode_module(module))
    with_locations = len(encode_module(instrument_module(module).module))
    config = InstrumentationConfig(emit_locations=False)
    without = len(encode_module(instrument_module(module, config=config).module))
    report = render_table(
        ["Variant", "Size", "Increase"],
        [["original", original, "-"],
         ["instrumented, with (func,instr) location args", with_locations,
          f"{100 * (with_locations - original) / original:+.0f}%"],
         ["instrumented, locations omitted", without,
          f"{100 * (without - original) / original:+.0f}%"]],
        title="Ablation: cost of location arguments (gemm, all hooks)")
    write_report("ablation_locations", report)
    assert original < without < with_locations

    benchmark.pedantic(
        lambda: instrument_module(module, config=config), rounds=3,
        iterations=1)


def test_ablation_parallel_instrumentation(benchmark, write_report):
    module = engine_demo(4.0)

    def timed(workers: int) -> float:
        config = InstrumentationConfig(parallel_workers=workers)
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            instrument_module(module, config=config)
            best = min(best, time.perf_counter() - start)
        return best

    sequential = timed(1)
    parallel = timed(4)
    report = render_table(
        ["Workers", "Seconds", "Speedup"],
        [["1", f"{sequential:.3f}", "1.00x"],
         ["4", f"{parallel:.3f}", f"{sequential / parallel:.2f}x"]],
        title=("Ablation: parallel instrumentation (engine_demo x4). "
               "Paper (Rust, 2 cores): 1.7x; CPython's GIL bounds ours."))
    write_report("ablation_parallel", report)

    # correctness: parallel output contains the same set of hooks
    seq_result = instrument_module(module)
    par_result = instrument_module(
        module, config=InstrumentationConfig(parallel_workers=4))
    assert {s.name for s in seq_result.info.hooks} == \
        {s.name for s in par_result.info.hooks}

    benchmark.pedantic(lambda: timed(4), rounds=1, iterations=1)
