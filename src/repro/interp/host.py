"""Host-side entities: host functions, global boxes, and the import linker.

Host functions play the role of JavaScript functions in the paper: both the
program's own environment imports (``env.print_f64`` …) and Wasabi's
generated low-level hooks are :class:`HostFunction` objects.
"""

from __future__ import annotations

from typing import Callable

from ..wasm.errors import WasmError
from ..wasm.types import FuncType, GlobalType, Limits
from .memory import Memory
from .table import Table


class HostFunction:
    """A function implemented in Python, callable from WebAssembly.

    ``fn`` receives the argument list and may return ``None``, a single
    value, or a sequence of values; results are coerced to the declared
    result types by the machine.
    """

    #: True on Wasabi's generated low-level hooks (set by the runtime).
    #: Hook calls are excluded from host-boundary recording — specialized
    #: ``OP_HOOK`` sites bypass the generic host-call path, so recording
    #: them would make replay logs engine-dependent.
    is_wasabi_hook = False

    #: True on WASI syscalls (set by :class:`repro.wasi.WasiContext`).
    #: WASI functions are excluded from the machine's *generic* host-call
    #: recording because they also write guest memory: the WASI layer
    #: records them itself as ``wasi_call`` entries carrying the memory
    #: writes, and is entered live during replay to re-apply them.
    is_wasi = False

    def __init__(self, functype: FuncType, fn: Callable[..., object],
                 name: str = "<host>"):
        self.functype = functype
        self.fn = fn
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostFunction({self.name}: {self.functype})"


class GlobalInstance:
    """A mutable box holding the runtime value of a global variable."""

    __slots__ = ("type", "value")

    def __init__(self, globaltype: GlobalType, value: int | float):
        self.type = globaltype
        self.value = value


class Linker:
    """Registry of importable entities, keyed by ``(module, name)``.

    Mirrors the two-level import namespace of WebAssembly. Host functions
    may be registered either as :class:`HostFunction` or as a plain callable
    together with the imported type (checked at instantiation).
    """

    def __init__(self):
        self._entries: dict[tuple[str, str], object] = {}

    def define(self, module: str, name: str, item: object) -> "Linker":
        self._entries[(module, name)] = item
        return self

    def define_function(self, module: str, name: str, functype: FuncType,
                        fn: Callable[..., object]) -> "Linker":
        return self.define(module, name, HostFunction(functype, fn, f"{module}.{name}"))

    def define_memory(self, module: str, name: str,
                      limits: Limits | Memory) -> Memory:
        memory = limits if isinstance(limits, Memory) else Memory(limits)
        self.define(module, name, memory)
        return memory

    def define_table(self, module: str, name: str, limits: Limits | Table) -> Table:
        table = limits if isinstance(limits, Table) else Table(limits)
        self.define(module, name, table)
        return table

    def define_global(self, module: str, name: str, globaltype: GlobalType,
                      value: int | float) -> GlobalInstance:
        box = GlobalInstance(globaltype, value)
        self.define(module, name, box)
        return box

    def resolve(self, module: str, name: str) -> object:
        try:
            return self._entries[(module, name)]
        except KeyError:
            raise WasmError(f"unresolved import {module}.{name}") from None
