"""A parser for a practical subset of the WebAssembly text format (WAT).

The binary toolkit's counterpart to ``wat2wasm``: linear-style WAT (named
or indexed functions, plain instruction sequences — the style the spec's
core tests and most disassemblers emit) is parsed into a :class:`Module`.
Folded expressions are not supported; block/loop/if are written in linear
form with explicit ``end``.

Supported grammar (per module field)::

    (module
      (import "m" "n" (func $f (param i32 i64) (result f64)))
      (import "m" "mem" (memory 1 4))
      (memory 1 4)
      (table 3 funcref)
      (global $g (mut i32) (i32.const 0))
      (func $name (export "name") (param $x i32) (result i32)
        (local $tmp f64)
        get_local $x
        i32.const 1
        i32.add)
      (elem (i32.const 0) $f $g)
      (data (i32.const 8) "bytes\\00")
      (export "name" (func $name))
      (start $name))

Both paper-era mnemonics (``get_local``) and current ones (``local.get``)
are accepted; immediates may reference ``$names`` or indices.
"""

from __future__ import annotations

from . import opcodes
from .errors import WasmError
from .module import (BrTable, DataSegment, ElemSegment, Export, Function,
                     Global, Import, Instr, MemArg, Module)
from .types import (BYTE_TO_VALTYPE, FuncType, GlobalType, Limits, MemoryType,
                    TableType, ValType)

#: current-spec mnemonics accepted as aliases of the paper-era table
_MNEMONIC_ALIASES = {
    "local.get": "get_local", "local.set": "set_local",
    "local.tee": "tee_local", "global.get": "get_global",
    "global.set": "set_global",
}


class WatError(WasmError):
    pass


# -- s-expression reader --------------------------------------------------------

def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif text.startswith(";;", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif text.startswith("(;", i):
            end = text.find(";)", i)
            if end == -1:
                raise WatError("unterminated block comment")
            i = end + 2
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise WatError("unterminated string")
            tokens.append(text[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in ' \t\r\n();"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse_sexpr(tokens: list[str], pos: int) -> tuple[object, int]:
    token = tokens[pos]
    if token == "(":
        items = []
        pos += 1
        while tokens[pos] != ")":
            item, pos = _parse_sexpr(tokens, pos)
            items.append(item)
        return items, pos + 1
    if token == ")":
        raise WatError("unexpected ')'")
    return token, pos + 1


def _unescape(literal: str) -> bytes:
    body = literal[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            nxt = body[i + 1]
            if nxt in "0123456789abcdefABCDEF" and i + 2 < len(body) + 1:
                out.append(int(body[i + 1:i + 3], 16))
                i += 3
                continue
            escape = {"n": 10, "t": 9, "r": 13, '"': 34, "'": 39, "\\": 92}
            out.append(escape[nxt])
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


_VALTYPES = {t.value: t for t in BYTE_TO_VALTYPE.values()}


def _valtype(token: str) -> ValType:
    try:
        return _VALTYPES[token]
    except KeyError:
        raise WatError(f"unknown value type {token!r}") from None


class _Names:
    """Resolves $names / numeric indices in one index space."""

    def __init__(self, what: str):
        self.what = what
        self.by_name: dict[str, int] = {}
        self.count = 0

    def declare(self, name: str | None) -> int:
        idx = self.count
        if name is not None:
            if name in self.by_name:
                raise WatError(f"duplicate {self.what} name {name}")
            self.by_name[name] = idx
        self.count += 1
        return idx

    def resolve(self, token: str) -> int:
        if token.startswith("$"):
            try:
                return self.by_name[token]
            except KeyError:
                raise WatError(f"unknown {self.what} {token!r}") from None
        return int(token)


class _WatParser:
    def __init__(self, text: str):
        tokens = _tokenize(text)
        sexpr, pos = _parse_sexpr(tokens, 0)
        if pos != len(tokens):
            raise WatError("trailing tokens after module")
        if not isinstance(sexpr, list) or not sexpr or sexpr[0] != "module":
            raise WatError("expected (module ...)")
        self.fields = sexpr[1:]
        self.module = Module()
        self.funcs = _Names("function")
        self.globals = _Names("global")
        self.types_by_sig: dict[FuncType, int] = {}
        self._pending_funcs: list[tuple[list, int]] = []

    def parse(self) -> Module:
        if self.fields and isinstance(self.fields[0], str):
            self.module.name = self.fields.pop(0).lstrip("$")
        # pass 1: declarations (so forward references resolve)
        for field in self.fields:
            self._declare(field)
        # pass 2: bodies and initializers
        for field, func_decl_idx in self._pending_funcs:
            self._parse_func_body(field, func_decl_idx)
        return self.module

    # -- pass 1 -----------------------------------------------------------------

    def _declare(self, field) -> None:
        if not isinstance(field, list) or not field:
            raise WatError(f"unexpected module field {field!r}")
        kind = field[0]
        handler = getattr(self, f"_declare_{kind}", None)
        if handler is None:
            raise WatError(f"unsupported module field ({kind} ...)")
        handler(field[1:])

    def _take_name(self, items: list) -> str | None:
        if items and isinstance(items[0], str) and items[0].startswith("$"):
            return items.pop(0)
        return None

    def _parse_signature(self, items: list) -> tuple[FuncType, list[str | None]]:
        params: list[ValType] = []
        param_names: list[str | None] = []
        results: list[ValType] = []
        rest = []
        in_signature = True  # only LEADING (param)/(result) lists belong to
        # the function type; later ones are part of the body (if/call_indirect)
        for item in items:
            is_param = (in_signature and isinstance(item, list) and item
                        and item[0] == "param")
            is_result = (in_signature and isinstance(item, list) and item
                         and item[0] == "result")
            if is_param:
                body = item[1:]
                if body and isinstance(body[0], str) and body[0].startswith("$"):
                    param_names.append(body[0])
                    params.append(_valtype(body[1]))
                else:
                    for t in body:
                        params.append(_valtype(t))
                        param_names.append(None)
            elif is_result:
                results.extend(_valtype(t) for t in item[1:])
            else:
                in_signature = False
                rest.append(item)
        items[:] = rest
        return FuncType(tuple(params), tuple(results)), param_names

    def _declare_import(self, items: list) -> None:
        module_name = _unescape(items[0]).decode()
        item_name = _unescape(items[1]).decode()
        desc = items[2]
        if desc[0] == "func":
            body = desc[1:]
            name = self._take_name(body)
            functype, _ = self._parse_signature(body)
            self.module.imports.append(
                Import(module_name, item_name, self.module.add_type(functype)))
            self.funcs.declare(name)
        elif desc[0] == "memory":
            self.module.imports.append(
                Import(module_name, item_name,
                       MemoryType(self._limits(desc[1:]))))
        elif desc[0] == "table":
            self.module.imports.append(
                Import(module_name, item_name,
                       TableType(self._limits(desc[1:-1] or desc[1:]))))
        elif desc[0] == "global":
            body = desc[1:]
            self._take_name(body)
            self.module.imports.append(
                Import(module_name, item_name, self._globaltype(body[0])))
            self.globals.declare(None)
        else:
            raise WatError(f"unsupported import kind {desc[0]}")

    def _limits(self, items: list) -> Limits:
        numbers = [int(i) for i in items if isinstance(i, str) and
                   not i.startswith("$") and i.isdigit()]
        if len(numbers) == 1:
            return Limits(numbers[0])
        return Limits(numbers[0], numbers[1])

    def _globaltype(self, spec) -> GlobalType:
        if isinstance(spec, list) and spec[0] == "mut":
            return GlobalType(_valtype(spec[1]), mutable=True)
        return GlobalType(_valtype(spec), mutable=False)

    def _declare_func(self, items: list) -> None:
        if any(isinstance(i, list) and i and i[0] == "import" for i in items):
            raise WatError("inline function imports are not supported")
        name = self._take_name(items)
        exports = [i for i in items
                   if isinstance(i, list) and i and i[0] == "export"]
        items = [i for i in items if i not in exports]
        func_idx = self.funcs.declare(name)
        functype, param_names = self._parse_signature(items)
        function = Function(type_idx=self.module.add_type(functype),
                            name=name.lstrip("$") if name else None)
        self.module.functions.append(function)
        for export in exports:
            self.module.exports.append(
                Export(_unescape(export[1]).decode(), "func", func_idx))
        self._pending_funcs.append(
            ([items, functype, param_names], len(self.module.functions) - 1))

    def _declare_memory(self, items: list) -> None:
        self._take_name(items)
        self.module.memories.append(MemoryType(self._limits(items)))

    def _declare_table(self, items: list) -> None:
        self._take_name(items)
        if items and items[-1] == "funcref":
            items = items[:-1]
        self.module.tables.append(TableType(self._limits(items)))

    def _declare_global(self, items: list) -> None:
        name = self._take_name(items)
        globaltype = self._globaltype(items[0])
        init_expr = items[1]
        init = [self._const_instr(init_expr)]
        self.module.globals.append(Global(globaltype, init))
        self.globals.declare(name)

    def _declare_export(self, items: list) -> None:
        export_name = _unescape(items[0]).decode()
        desc = items[1]
        if desc[0] == "func":
            idx = self.funcs.resolve(desc[1])
            self.module.exports.append(Export(export_name, "func", idx))
        elif desc[0] == "memory":
            self.module.exports.append(Export(export_name, "memory",
                                              int(desc[1])))
        elif desc[0] == "global":
            self.module.exports.append(
                Export(export_name, "global", self.globals.resolve(desc[1])))
        else:
            raise WatError(f"unsupported export kind {desc[0]}")

    def _declare_start(self, items: list) -> None:
        self.module.start = self.funcs.resolve(items[0])

    def _declare_elem(self, items: list) -> None:
        offset = self._const_instr(items[0])
        func_idxs = [self.funcs.resolve(i) for i in items[1:]]
        self.module.elements.append(ElemSegment([offset], func_idxs))

    def _declare_data(self, items: list) -> None:
        offset = self._const_instr(items[0])
        payload = b"".join(_unescape(i) for i in items[1:])
        self.module.data.append(DataSegment([offset], payload))

    def _const_instr(self, expr) -> Instr:
        if not isinstance(expr, list) or len(expr) != 2:
            raise WatError(f"expected a constant expression, got {expr!r}")
        op, literal = expr
        if not op.endswith(".const"):
            raise WatError(f"unsupported initializer {op}")
        value = float(literal) if op.startswith("f") else int(literal, 0)
        return Instr(op, value=value)

    # -- pass 2: function bodies ---------------------------------------------------

    def _parse_func_body(self, parts, defined_idx: int) -> None:
        items, functype, param_names = parts
        function = self.module.functions[defined_idx]
        locals_names = _Names("local")
        for pname in param_names:
            locals_names.declare(pname)
        body_tokens: list = []
        for item in items:
            if isinstance(item, list) and item and item[0] == "local":
                rest = item[1:]
                if rest and rest[0].startswith("$"):
                    locals_names.declare(rest[0])
                    function.locals.append(_valtype(rest[1]))
                else:
                    for t in rest:
                        locals_names.declare(None)
                        function.locals.append(_valtype(t))
            else:
                body_tokens.append(item)
        function.body = self._parse_instrs(body_tokens, locals_names)
        function.body.append(Instr("end"))

    def _parse_instrs(self, tokens: list, locals_names: _Names) -> list[Instr]:
        instrs: list[Instr] = []
        labels: list[str | None] = []
        cursor = 0
        while cursor < len(tokens):
            token = tokens[cursor]
            if isinstance(token, list):
                raise WatError(f"folded expressions are not supported: {token!r}")
            mnemonic = _MNEMONIC_ALIASES.get(token, token)
            op = opcodes.BY_NAME.get(mnemonic)
            if op is None:
                raise WatError(f"unknown instruction {token!r}")
            cursor += 1

            def next_token() -> str:
                nonlocal cursor
                value = tokens[cursor]
                cursor += 1
                return value

            def peek_is_label() -> bool:
                return cursor < len(tokens) and isinstance(tokens[cursor], str) \
                    and tokens[cursor].startswith("$")

            imm = op.imm
            if imm is opcodes.Imm.NONE:
                if mnemonic in ("else", "end") and labels:
                    if mnemonic == "end":
                        labels.pop()
                instrs.append(Instr(mnemonic))
            elif imm is opcodes.Imm.BLOCKTYPE:
                label = next_token() if peek_is_label() else None
                labels.append(label)
                blocktype = None
                if cursor < len(tokens) and isinstance(tokens[cursor], list) \
                        and tokens[cursor][0] == "result":
                    blocktype = _valtype(next_token()[1])
                instrs.append(Instr(mnemonic, blocktype=blocktype))
            elif imm is opcodes.Imm.LABEL:
                instrs.append(Instr(mnemonic,
                                    label=self._label(next_token(), labels)))
            elif imm is opcodes.Imm.BR_TABLE:
                targets = []
                while cursor < len(tokens) and isinstance(tokens[cursor], str) \
                        and (tokens[cursor].lstrip("$").isdigit()
                             or tokens[cursor].startswith("$")):
                    targets.append(self._label(next_token(), labels))
                instrs.append(Instr(mnemonic,
                                    br_table=BrTable(tuple(targets[:-1]),
                                                     targets[-1])))
            elif imm is opcodes.Imm.FUNC_IDX:
                instrs.append(Instr(mnemonic, idx=self.funcs.resolve(next_token())))
            elif imm is opcodes.Imm.TYPE_IDX:
                # accept: a bare index, (type n), or inline (param..)(result..)
                spec_items: list = []
                while cursor < len(tokens) and isinstance(tokens[cursor], list) \
                        and tokens[cursor] and tokens[cursor][0] in (
                            "type", "param", "result"):
                    spec_items.append(next_token())
                if spec_items:
                    type_idx = None
                    params: list[ValType] = []
                    results: list[ValType] = []
                    for spec in spec_items:
                        if spec[0] == "type":
                            type_idx = int(spec[1])
                        elif spec[0] == "param":
                            params.extend(_valtype(t) for t in spec[1:])
                        else:
                            results.extend(_valtype(t) for t in spec[1:])
                    if type_idx is None:
                        type_idx = self.module.add_type(
                            FuncType(tuple(params), tuple(results)))
                else:
                    type_idx = int(next_token())
                instrs.append(Instr(mnemonic, idx=type_idx))
            elif imm is opcodes.Imm.LOCAL_IDX:
                instrs.append(Instr(mnemonic,
                                    idx=locals_names.resolve(next_token())))
            elif imm is opcodes.Imm.GLOBAL_IDX:
                instrs.append(Instr(mnemonic,
                                    idx=self.globals.resolve(next_token())))
            elif imm is opcodes.Imm.MEMARG:
                align = 0
                offset = 0
                while cursor < len(tokens) and isinstance(tokens[cursor], str) \
                        and "=" in tokens[cursor]:
                    key, _, value = next_token().partition("=")
                    if key == "offset":
                        offset = int(value, 0)
                    elif key == "align":
                        align = int(value, 0).bit_length() - 1
                instrs.append(Instr(mnemonic, memarg=MemArg(align, offset)))
            elif imm is opcodes.Imm.MEM_IDX:
                instrs.append(Instr(mnemonic))
            elif imm in (opcodes.Imm.CONST_I32, opcodes.Imm.CONST_I64):
                instrs.append(Instr(mnemonic, value=int(next_token(), 0)))
            else:  # float consts
                instrs.append(Instr(mnemonic, value=float(next_token())))
        return instrs

    def _label(self, token: str, labels: list[str | None]) -> int:
        if token.startswith("$"):
            for depth, name in enumerate(reversed(labels)):
                if name == token:
                    return depth
            raise WatError(f"unknown label {token!r}")
        return int(token)


def parse_wat(text: str) -> Module:
    """Parse linear-style WAT text into a :class:`Module`."""
    return _WatParser(text).parse()
