"""The eight Table-4 analyses, exercised end-to-end on real programs."""

import pytest

from repro import analyze
from repro.analyses import (ALL_ANALYSES, BasicBlockProfiler, BranchCoverage,
                            CallGraphAnalysis, CryptominerDetector,
                            InstructionCoverage, InstructionMixAnalysis,
                            MemoryTracer, TaintAnalysis)
from repro.core.analysis import used_groups
from repro.interp import Linker
from repro.minic import compile_source
from repro.wasm.types import F64, I32, FuncType


@pytest.fixture
def workload():
    return compile_source("""
        import func print_f64(x: f64);
        memory 1;
        func helper(x: i32) -> i32 { return x * 2 + 1; }
        func unused() -> i32 { return 0 - 1; }
        export func main(n: i32) -> f64 {
            var s: f64 = 0.0;
            var i: i32;
            for (i = 0; i < n; i = i + 1) {
                mem_f64[i] = f64(helper(i));
                s = s + mem_f64[i];
            }
            print_f64(s);
            return s;
        }
    """, "workload")


@pytest.fixture
def print_sink():
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: None)
    return linker


class TestInstructionMix:
    def test_counts(self, workload, print_sink):
        mix = InstructionMixAnalysis()
        analyze(workload, mix, linker=print_sink, entry="main", args=(5,))
        assert mix.counts["i32.mul"] == 5       # one per helper call
        assert mix.counts["call"] == 6          # 5 helper + 1 print
        assert mix.counts["f64.add"] == 5
        assert mix.total() > 100
        assert mix.top(1)[0][1] == max(mix.counts.values())

    def test_report_renders(self, workload, print_sink):
        mix = InstructionMixAnalysis()
        analyze(workload, mix, linker=print_sink, entry="main", args=(2,))
        assert "i32.add" in mix.report()


class TestBasicBlockProfiler:
    def test_loop_counts(self, workload, print_sink):
        profiler = BasicBlockProfiler()
        analyze(workload, profiler, linker=print_sink, entry="main", args=(7,))
        # uses only the begin hook (paper: 9 LOC)
        assert used_groups(profiler) == frozenset({"begin"})
        loops = profiler.loop_iterations()
        assert sum(loops.values()) == 8  # 7 iterations + final check
        funcs = profiler.function_counts()
        assert funcs[1] == 7  # helper called 7 times

    def test_hottest(self, workload, print_sink):
        profiler = BasicBlockProfiler()
        analyze(workload, profiler, linker=print_sink, entry="main", args=(3,))
        (loc, kind), count = profiler.hottest(1)[0]
        assert count >= 3


class TestCoverage:
    def test_instruction_coverage_partial_then_full(self, print_sink):
        module = compile_source("""
            export func f(c: i32) -> i32 {
                if (c) { return 1; }
                return 2;
            }
        """)
        cov = InstructionCoverage()
        session = analyze(module, cov, entry="f", args=(1,))
        partial = cov.ratio(session.module_info)
        assert 0 < partial < 1
        session.invoke("f", [0])
        assert cov.ratio(session.module_info) > partial

    def test_branch_coverage_figure7(self, print_sink):
        module = compile_source("""
            export func f(c: i32) -> i32 {
                if (c) { return 1; }
                return 2;
            }
        """)
        cov = BranchCoverage()
        # exactly the hooks of Figure 7
        assert used_groups(cov) == frozenset({"if", "br_if", "br_table",
                                              "select"})
        session = analyze(module, cov, entry="f", args=(1,))
        assert cov.fully_covered() == set()
        assert len(cov.partially_covered()) >= 1
        session.invoke("f", [0])
        assert len(cov.fully_covered()) >= 1
        assert 0 < cov.ratio() <= 1


class TestCallGraph:
    def test_graph_structure(self, workload, print_sink):
        cga = CallGraphAnalysis()
        assert used_groups(cga) == frozenset({"call"})
        session = analyze(workload, cga, linker=print_sink,
                          entry="main", args=(4,))
        graph = cga.graph(session.module_info)
        # main (idx 3) calls helper (idx 1) and print (idx 0)
        assert graph.has_edge(3, 1)
        assert graph.has_edge(3, 0)
        assert graph.nodes[1]["name"] == "helper"

    def test_dynamically_dead(self, workload, print_sink):
        cga = CallGraphAnalysis()
        session = analyze(workload, cga, linker=print_sink,
                          entry="main", args=(2,))
        dead = cga.dynamically_dead(session.module_info, roots=[3])
        assert 2 in dead  # `unused` never called

    def test_indirect_calls_recorded(self):
        module = compile_source("""
            type op = func(i32) -> i32;
            func a(x: i32) -> i32 { return x + 1; }
            table [a];
            export func main() -> i32 { return call_indirect[op](0, 1); }
        """)
        cga = CallGraphAnalysis()
        analyze(module, cga, entry="main")
        assert cga.indirect_call_sites() == {(1, 0)}


class TestCryptominer:
    def test_miner_like_program_detected(self):
        # hash-like kernel: lots of i32 add/and/shl/shr_u/xor
        module = compile_source("""
            export func mine(rounds: i32) -> i32 {
                var h: i32 = 0x6a09e667;
                var i: i32;
                for (i = 0; i < rounds; i = i + 1) {
                    h = (h ^ (h << 13)) + (shr_u(h, 17) & 0x45d9f3b);
                    h = h ^ shr_u(h, 5);
                }
                return h;
            }
        """)
        detector = CryptominerDetector(min_total=100)
        analyze(module, detector, entry="mine", args=(200,))
        assert detector.is_suspicious()
        assert set(detector.signature) == {"i32.add", "i32.and", "i32.shl",
                                           "i32.shr_u", "i32.xor"}

    def test_float_kernel_not_detected(self, workload, print_sink):
        detector = CryptominerDetector(min_total=10)
        analyze(workload, detector, linker=print_sink, entry="main", args=(20,))
        assert not detector.is_suspicious()


class TestMemoryTracer:
    def test_trace_contents(self, workload, print_sink):
        tracer = MemoryTracer()
        analyze(workload, tracer, linker=print_sink, entry="main", args=(4,))
        stores = [a for a in tracer.trace if a.kind == "store"]
        loads = [a for a in tracer.trace if a.kind == "load"]
        assert len(stores) == 4 and len(loads) == 4
        assert stores[0].address == 0 and stores[1].address == 8
        assert tracer.unique_addresses() == 4
        # sequential stride of 8 bytes dominates
        strides = tracer.stride_histogram()
        assert strides.get(8, 0) + strides.get(0, 0) >= len(tracer.trace) - 2

    def test_truncation(self, workload, print_sink):
        tracer = MemoryTracer(max_accesses=3)
        analyze(workload, tracer, linker=print_sink, entry="main", args=(10,))
        assert len(tracer.trace) == 3 and tracer.truncated


class TestTaint:
    def test_flow_through_memory_and_arithmetic(self):
        module = compile_source("""
            import func source() -> i32;
            import func sink(x: i32);
            memory 1;
            export func main() -> i32 {
                var s: i32 = source();
                mem_i32[2] = s + 40;
                var t: i32 = mem_i32[2] * 2;
                sink(t);
                return t;
            }
        """)
        taint = TaintAnalysis()
        taint.add_source_function("env.source", "secret")
        taint.add_sink_function("env.sink")
        linker = Linker()
        linker.define_function("env", "source", FuncType((), (I32,)), lambda a: 1)
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main")
        assert taint.has_flow("secret")
        assert taint.underflows == 0

    def test_no_false_positive(self):
        module = compile_source("""
            import func source() -> i32;
            import func sink(x: i32);
            export func main() -> i32 {
                var s: i32 = source();
                sink(42);          // clean value
                return s;
            }
        """)
        taint = TaintAnalysis()
        taint.add_source_function("env.source", "secret")
        taint.add_sink_function("env.sink")
        linker = Linker()
        linker.define_function("env", "source", FuncType((), (I32,)), lambda a: 1)
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main")
        assert not taint.has_flow()

    def test_flow_through_function_return(self):
        module = compile_source("""
            import func source() -> i32;
            import func sink(x: i32);
            func launder(x: i32) -> i32 { return x ^ 123; }
            export func main() -> i32 {
                var t: i32 = launder(source());
                sink(t);
                return t;
            }
        """)
        taint = TaintAnalysis()
        taint.add_source_function("env.source", "secret")
        taint.add_sink_function("env.sink")
        linker = Linker()
        linker.define_function("env", "source", FuncType((), (I32,)), lambda a: 7)
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main")
        assert taint.has_flow("secret")

    def test_overwriting_memory_clears_taint(self):
        module = compile_source("""
            import func source() -> i32;
            import func sink(x: i32);
            memory 1;
            export func main() -> i32 {
                mem_i32[0] = source();
                mem_i32[0] = 5;          // overwrite with clean data
                sink(mem_i32[0]);
                return 0;
            }
        """)
        taint = TaintAnalysis()
        taint.add_source_function("env.source", "secret")
        taint.add_sink_function("env.sink")
        linker = Linker()
        linker.define_function("env", "source", FuncType((), (I32,)), lambda a: 9)
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main")
        assert not taint.has_flow()

    def test_taint_through_branches_no_drift(self):
        """The begin/end resynchronization keeps the shadow stack aligned."""
        module = compile_source("""
            import func source() -> i32;
            import func sink(x: i32);
            export func main(n: i32) -> i32 {
                var t: i32 = source();
                var s: i32 = 0;
                var i: i32;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 3 == 0) { s = s + 1; } else { s = s + 2; }
                }
                sink(t);
                return s;
            }
        """)
        taint = TaintAnalysis()
        taint.add_source_function("env.source", "secret")
        taint.add_sink_function("env.sink")
        linker = Linker()
        linker.define_function("env", "source", FuncType((), (I32,)), lambda a: 9)
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main", [25])
        assert taint.has_flow("secret")
        assert taint.underflows == 0

    def test_explicit_memory_taint(self):
        module = compile_source("""
            import func sink(x: i32);
            memory 1;
            export func main() -> i32 {
                sink(mem_i32[4]);
                return 0;
            }
        """)
        taint = TaintAnalysis()
        taint.add_sink_function("env.sink")
        taint.taint_memory(16, 4, "input")  # element 4 * 4 bytes
        linker = Linker()
        linker.define_function("env", "sink", FuncType((I32,), ()), lambda a: None)
        session = analyze(module, taint, linker=linker)
        taint.bind_module_info(session.module_info)
        session.invoke("main")
        assert taint.has_flow("input")


class TestInventory:
    def test_table4_has_eight_analyses(self):
        assert len(ALL_ANALYSES) == 8
