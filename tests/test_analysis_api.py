"""The high-level analysis API (paper Table 2): 23 hooks, faithful types."""

import inspect

from repro.core import Analysis, BranchTarget, Location, MemArg, analyze
from repro.core.analysis import ALL_GROUPS, BLOCK_TYPES, HOOK_METHOD_TO_GROUP
from repro.minic import compile_source


class TestApiSurface:
    def test_twenty_three_hooks(self):
        """The paper's API has 23 hooks in total (Table 2 + footnote 3)."""
        hooks = [name for name, member in inspect.getmembers(Analysis,
                                                             inspect.isfunction)
                 if (not name.startswith("_") or name in ("return_", "const_",
                                                          "global_", "if_"))
                 and name != "used_groups"]  # introspection helper, not a hook
        assert len(hooks) == 23

    def test_hook_names_match_table2(self):
        expected = {
            "const_", "drop", "select", "unary", "binary", "local", "global_",
            "memory_size", "memory_grow", "load", "store", "call_pre",
            "call_post", "return_", "br", "br_if", "br_table", "begin", "end",
            "nop", "unreachable", "if_", "start",
        }
        actual = {name for name, member in inspect.getmembers(
            Analysis, inspect.isfunction)}
        assert expected <= actual

    def test_every_instrumentable_hook_has_a_group(self):
        # `start` is dispatched by the runtime, not instrumented
        assert set(HOOK_METHOD_TO_GROUP.values()) == set(ALL_GROUPS)
        assert "start" not in HOOK_METHOD_TO_GROUP

    def test_block_types(self):
        assert BLOCK_TYPES == ("function", "block", "loop", "if", "else")

    def test_group_count_matches_figures(self):
        # the x-axis of Figures 8/9 has 21 hook groups
        assert len(ALL_GROUPS) == 21


class TestValueObjects:
    def test_location_ordering_and_str(self):
        assert Location(1, 2) < Location(1, 3) < Location(2, 0)
        assert str(Location(3, 14)) == "3:14"

    def test_branch_target(self):
        target = BranchTarget(1, Location(0, 5))
        assert target.label == 1 and target.location.instr == 5

    def test_memarg_effective_address(self):
        memarg = MemArg(addr=16, offset=8)
        assert memarg.addr + memarg.offset == 24


class TestFaithfulTypeMapping:
    """Figure 5: i64 -> full-precision int, conditions -> bool, floats pass."""

    def test_i64_full_precision(self):
        module = compile_source(
            "export func f(x: i64) -> i64 { return x + 1L; }")
        seen = {}

        class Watch(Analysis):
            def binary(self, loc, op, a, b, r):
                seen["args"] = (a, b, r)

        big = (1 << 62) + 7  # not representable as a double
        session = analyze(module, Watch(), entry="f", args=(big,))
        assert seen["args"] == (big, 1, big + 1)

    def test_i64_negative(self):
        module = compile_source(
            "export func f(x: i64) -> i64 { return x - 1L; }")
        seen = {}

        class Watch(Analysis):
            def return_(self, loc, results):
                seen["r"] = list(results)

        analyze(module, Watch(), entry="f", args=(-5,))
        assert seen["r"] == [-6]

    def test_i32_presented_signed(self):
        module = compile_source("export func f() -> i32 { return 0 - 7; }")
        seen = []

        class Watch(Analysis):
            def return_(self, loc, results):
                seen.extend(results)

        analyze(module, Watch(), entry="f")
        assert seen == [-7]

    def test_conditions_are_bool(self):
        module = compile_source("""
            export func f(c: i32) -> i32 {
                if (c) { return 1; }
                return 0;
            }
        """)
        seen = []

        class Watch(Analysis):
            def if_(self, loc, condition):
                seen.append(condition)

        analyze(module, Watch(), entry="f", args=(42,))
        assert seen == [True]
        assert all(isinstance(c, bool) for c in seen)

    def test_floats_pass_through(self):
        module = compile_source(
            "export func f(x: f32) -> f32 { return x * 2.0f; }")
        seen = {}

        class Watch(Analysis):
            def binary(self, loc, op, a, b, r):
                seen["v"] = (op, a, b, r)

        analyze(module, Watch(), entry="f", args=(1.25,))
        assert seen["v"] == ("f32.mul", 1.25, 2.0, 2.5)


class TestStartHook:
    def test_start_hook_fires_before_start_function(self):
        module = compile_source("""
            global g: i32 = 0;
            func init() { g = 7; }
            start init;
            export func get() -> i32 { return g; }
        """)
        order = []

        class Watch(Analysis):
            def start(self):
                order.append("start-hook")

            def global_(self, loc, op, idx, value):
                order.append(f"{op}:{value}")

        session = analyze(module, Watch())
        assert order[0] == "start-hook"
        assert "set_global:7" in order
        assert session.invoke("get") == [7]

    def test_no_start_no_hook(self):
        module = compile_source("export func f() -> i32 { return 1; }")
        fired = []

        class Watch(Analysis):
            def start(self):
                fired.append(True)

        analyze(module, Watch(), entry="f")
        assert fired == []


class TestModuleInfo:
    def test_function_names_and_types(self, print_linker):
        module = compile_source("""
            import func print_f64(x: f64);
            func helper(a: i32) -> i32 { return a; }
            export func main() -> i32 { return helper(1); }
        """)
        session = analyze(module, Analysis(), linker=print_linker)
        info = session.module_info
        assert info.func_name(0) == "env.print_f64"
        assert info.functions[0].imported
        assert info.func_name(1) == "helper"
        assert "main" in info.functions[2].export_names
        assert str(info.functions[1].type) == "[i32] -> [i32]"

    def test_instruction_counts(self):
        module = compile_source("export func f() -> i32 { return 4; }")
        session = analyze(module, Analysis())
        assert session.module_info.functions[0].instr_count == \
            len(module.functions[0].body)
