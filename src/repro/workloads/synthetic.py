"""Synthetic "real-world" binaries standing in for the paper's large programs.

The paper evaluates on two big, code-diverse applications — the Unreal
Engine 4 Zen Garden demo (39.5 MB) and the PSPDFKit benchmark (9.5 MB).
Neither is available (nor executable) here, so this module *generates*
deterministic stand-ins with the properties the experiments depend on:

* many functions with varied signatures (including wide ones, exercising
  on-demand monomorphization of call hooks),
* a diverse instruction mix, unlike the numeric PolyBench kernels:
  ``br_table`` dispatchers, indirect calls through a function table,
  byte-level memory traffic, i64 arithmetic, floats, globals,
* a layered call graph (no recursion) with an exported ``main`` that
  touches a large fraction of the code, with all loops bounded so runs
  terminate quickly under the interpreter.

Sizes are scaled down (hundreds of KB rather than tens of MB) to keep the
Python-interpreter experiments tractable; Table 5's throughput metric is
computed the same way regardless of absolute size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from ..wasm.builder import FunctionBuilder, ModuleBuilder
from ..wasm.module import Module
from ..wasm.types import F32, F64, I32, I64, FuncType, ValType

_ALL_TYPES = (I32, I64, F32, F64)

#: address mask keeping generated memory traffic inside the first page,
#: 8-byte aligned so all load/store widths are in bounds
_ADDR_MASK = 0xFF8

_INT_BINOPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr_u",
               "rotl", "rotr")
_FLOAT_BINOPS = ("add", "sub", "mul", "min", "max", "copysign")
_INT_UNOPS = ("clz", "ctz", "popcnt")
_FLOAT_UNOPS = ("abs", "neg", "floor", "ceil", "sqrt", "trunc", "nearest")

_CONVERSIONS: dict[tuple[ValType, ValType], str] = {
    (I64, I32): "i32.wrap/i64",
    (I32, I64): "i64.extend_u/i32",
    (I32, F32): "f32.convert_s/i32",
    (I32, F64): "f64.convert_s/i32",
    (I64, F64): "f64.convert_s/i64",
    (F64, F32): "f32.demote/f64",
    (F32, F64): "f64.promote/f32",
    (F32, I32): "i32.reinterpret/f32",
    (F64, I64): "i64.reinterpret/f64",
}


@dataclass
class GeneratorProfile:
    """Tuning of the binary generator for a workload flavour."""

    name: str
    seed: int
    num_leaf: int
    num_mid: int
    num_dispatch: int
    memory_op_bias: float       # probability weight of load/store in expressions
    byte_ops: bool              # favour 8/16-bit accesses (PDF-parser flavour)
    max_call_params: int        # widest generated signature (§4.5 discussion)
    loop_limit: int             # max iterations of generated loops


ENGINE_PROFILE = GeneratorProfile(
    name="engine_demo", seed=0xE4E4, num_leaf=90, num_mid=45,
    num_dispatch=12, memory_op_bias=0.15, byte_ops=False,
    max_call_params=22, loop_limit=8)

PDF_PROFILE = GeneratorProfile(
    name="pdf_toolkit", seed=0x9D0F, num_leaf=45, num_mid=22,
    num_dispatch=6, memory_op_bias=0.3, byte_ops=True,
    max_call_params=12, loop_limit=8)


class _BinaryGenerator:
    def __init__(self, profile: GeneratorProfile, scale: float = 1.0):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.scale = scale
        self.builder = ModuleBuilder(profile.name)
        #: functions callable from the layer currently being generated:
        #: (func_idx, functype)
        self.callables: list[tuple[int, FuncType]] = []
        self.table_entries: list[tuple[int, FuncType]] = []

    # -- value generation ------------------------------------------------------

    def _const(self, fb: FunctionBuilder, valtype: ValType) -> None:
        rng = self.rng
        if valtype is I32:
            fb.i32_const(rng.randrange(-(2 ** 31), 2 ** 31))
        elif valtype is I64:
            fb.i64_const(rng.randrange(-(2 ** 63), 2 ** 63))
        elif valtype is F32:
            fb.f32_const(round(rng.uniform(-100, 100), 3))
        else:
            fb.f64_const(round(rng.uniform(-1000, 1000), 6))

    def _masked_addr(self, fb: FunctionBuilder, params: list[ValType]) -> None:
        """Push a bounded, aligned i32 address."""
        i32_params = [i for i, t in enumerate(params) if t is I32]
        if i32_params and self.rng.random() < 0.7:
            fb.get_local(self.rng.choice(i32_params))
        else:
            fb.i32_const(self.rng.randrange(0, 4096))
        fb.i32_const(_ADDR_MASK)
        fb.emit("i32.and")

    def _load_op(self, valtype: ValType) -> str:
        if valtype is I32 and self.profile.byte_ops and self.rng.random() < 0.6:
            return self.rng.choice(["i32.load8_u", "i32.load8_s",
                                    "i32.load16_u", "i32.load16_s"])
        return f"{valtype.value}.load"

    def _value(self, fb: FunctionBuilder, valtype: ValType,
               params: list[ValType], depth: int) -> None:
        """Emit instructions leaving exactly one ``valtype`` on the stack.

        Only uses parameters (no mutable locals) so it stays valid anywhere.
        """
        rng = self.rng
        matching = [i for i, t in enumerate(params) if t is valtype]
        if depth <= 0:
            if matching and rng.random() < 0.7:
                fb.get_local(rng.choice(matching))
            else:
                self._const(fb, valtype)
            return
        roll = rng.random()
        if roll < self.profile.memory_op_bias:
            self._masked_addr(fb, params)
            fb.load(self._load_op(valtype))
            return
        if roll < self.profile.memory_op_bias + 0.1:
            # conversion from another type
            sources = [src for (src, dst) in _CONVERSIONS if dst is valtype]
            src = rng.choice(sources)
            self._value(fb, src, params, depth - 1)
            fb.emit(_CONVERSIONS[(src, valtype)])
            return
        if roll < self.profile.memory_op_bias + 0.2 and self.callables:
            candidates = [(idx, ft) for idx, ft in self.callables
                          if ft.results == (valtype,)]
            if candidates:
                func_idx, functype = rng.choice(candidates)
                for param_type in functype.params:
                    self._value(fb, param_type, params, depth - 1)
                fb.call(func_idx)
                return
        if roll < self.profile.memory_op_bias + 0.27:
            # select between two values
            self._value(fb, valtype, params, depth - 1)
            self._value(fb, valtype, params, depth - 1)
            self._value(fb, I32, params, 0)
            fb.i32_const(1)
            fb.emit("i32.and")
            fb.emit("select")
            return
        if roll < self.profile.memory_op_bias + 0.37:
            # unary operation
            self._value(fb, valtype, params, depth - 1)
            ops = _INT_UNOPS if valtype.is_int else _FLOAT_UNOPS
            op = rng.choice(ops)
            if op == "sqrt":
                fb.emit(f"{valtype.value}.abs")
            fb.emit(f"{valtype.value}.{op}")
            return
        # binary operation (the common case, as in real code)
        self._value(fb, valtype, params, depth - 1)
        self._value(fb, valtype, params, depth - 1)
        ops = _INT_BINOPS if valtype.is_int else _FLOAT_BINOPS
        fb.emit(f"{valtype.value}.{rng.choice(ops)}")

    # -- function shapes ----------------------------------------------------------

    def _random_signature(self, wide: bool = False) -> FuncType:
        rng = self.rng
        if wide:
            count = rng.randrange(8, self.profile.max_call_params + 1)
        else:
            count = rng.randrange(0, 5)
        params = tuple(rng.choice(_ALL_TYPES) for _ in range(count))
        result = rng.choice(_ALL_TYPES)
        return FuncType(params, (result,))

    def _gen_leaf(self, wide: bool = False) -> None:
        functype = self._random_signature(wide)
        fb = self.builder.function(functype.params, functype.results,
                                   name=f"leaf_{len(self.callables)}")
        params = list(functype.params)
        result = functype.results[0]
        # a couple of statements: a store, a dropped computation
        if self.rng.random() < 0.5:
            self._masked_addr(fb, params)
            store_type = self.rng.choice(_ALL_TYPES)
            self._value(fb, store_type, params, 1)
            if store_type is I32 and self.profile.byte_ops:
                fb.store(self.rng.choice(["i32.store8", "i32.store16", "i32.store"]))
            else:
                fb.store(f"{store_type.value}.store")
        if self.rng.random() < 0.3:
            self._value(fb, self.rng.choice(_ALL_TYPES), params, 1)
            fb.emit("drop")
        self._value(fb, result, params, 2)
        fb.finish()
        self.callables.append((fb.func_idx, functype))
        if len(functype.params) <= 4:
            self.table_entries.append((fb.func_idx, functype))

    def _gen_mid(self) -> None:
        """A function with a bounded loop, branches, and calls downward."""
        functype = self._random_signature()
        fb = self.builder.function(functype.params, functype.results,
                                   name=f"mid_{len(self.callables)}")
        params = list(functype.params)
        result = functype.results[0]
        acc = fb.add_local(result)
        counter = fb.add_local(I32)
        limit = self.rng.randrange(2, self.profile.loop_limit + 1)
        # acc = <initial>
        self._value(fb, result, params, 1)
        fb.set_local(acc)
        # bounded loop accumulating into acc
        fb.block()
        fb.loop()
        fb.get_local(counter)
        fb.i32_const(limit)
        fb.emit("i32.ge_u")
        fb.br_if(1)
        # conditionally update the accumulator
        fb.get_local(counter)
        fb.i32_const(1)
        fb.emit("i32.and")
        fb.if_()
        fb.get_local(acc)
        self._value(fb, result, params, 2)
        op = "add" if result.is_float else "xor"
        fb.emit(f"{result.value}.{op}")
        fb.set_local(acc)
        fb.else_()
        fb.get_local(acc)
        self._value(fb, result, params, 1)
        op2 = "sub" if result.is_float else "or"
        fb.emit(f"{result.value}.{op2}")
        fb.set_local(acc)
        fb.end()
        fb.get_local(counter)
        fb.i32_const(1)
        fb.emit("i32.add")
        fb.set_local(counter)
        fb.br(0)
        fb.end()
        fb.end()
        fb.get_local(acc)
        fb.finish()
        self.callables.append((fb.func_idx, functype))

    def _gen_dispatcher(self, indirect_type_idx: int | None) -> None:
        """A br_table switch over the first parameter, plus indirect calls."""
        functype = FuncType((I32, I32), (I32,))
        fb = self.builder.function(functype.params, functype.results,
                                   name=f"dispatch_{len(self.callables)}")
        params = [I32, I32]
        result_local = fb.add_local(I32)
        cases = self.rng.randrange(3, 6)
        # nested blocks for the switch; outermost is the exit
        fb.block()                      # exit
        for _ in range(cases):
            fb.block()
        fb.get_local(0)
        fb.i32_const(cases)
        fb.emit("i32.rem_u")
        fb.br_table(list(range(cases)), cases - 1)
        for case in range(cases):
            fb.end()
            # case body: compute something into result_local, jump to exit
            self._value(fb, I32, params, 2)
            fb.i32_const(case + 1)
            fb.emit("i32.add")
            fb.set_local(result_local)
            remaining = cases - case - 1
            if remaining > 0:
                fb.br(remaining)        # jump over the other cases to exit
        fb.end()                        # exit
        # optionally route through an indirect call
        if indirect_type_idx is not None and self.table_entries:
            fb.get_local(result_local)      # left operand of the final add
            fb.get_local(result_local)      # argument to the adapter
            fb.get_local(1)
            fb.i32_const(len(self.table_entries))
            fb.emit("i32.rem_u")
            fb.call_indirect(indirect_type_idx)
            fb.emit("i32.add")
            fb.set_local(result_local)
        fb.get_local(result_local)
        fb.finish()
        self.callables.append((fb.func_idx, functype))

    # -- the module -----------------------------------------------------------------

    def generate(self) -> Module:
        profile = self.profile
        self.builder.add_memory(2, export="memory")
        checksum_global = self.builder.add_global(I64, mutable=True, init=0,
                                                  export="checksum")

        for i in range(int(profile.num_leaf * self.scale)):
            # sprinkle in wide signatures for the monomorphization experiment
            self._gen_leaf(wide=(i % 30 == 7))
        for _ in range(int(profile.num_mid * self.scale)):
            self._gen_mid()

        # a uniform (i32) -> i32 signature for indirect calls
        indirect_sig = FuncType((I32,), (I32,))
        adapters: list[int] = []
        for idx, (target, functype) in enumerate(self.table_entries[:24]):
            fb = self.builder.function((I32,), (I32,), name=f"adapter_{idx}")
            for param_type in functype.params:
                if param_type is I32:
                    fb.get_local(0)
                else:
                    self._const(fb, param_type)
            fb.call(target)
            result = functype.results[0]
            if result is not I32:
                src = {I64: "i32.wrap/i64", F32: "i32.reinterpret/f32",
                       F64: "i64.reinterpret/f64"}[result]
                fb.emit(src)
                if result is F64:
                    fb.emit("i32.wrap/i64")
            fb.finish()
            adapters.append(fb.func_idx)
        indirect_type_idx = self.builder.module.add_type(indirect_sig)

        # table must exist before dispatchers call through it
        self.table_entries = [(idx, indirect_sig) for idx in adapters]
        dispatchers: list[int] = []
        for _ in range(int(profile.num_dispatch * self.scale)):
            self._gen_dispatcher(indirect_type_idx if adapters else None)
            dispatchers.append(self.callables[-1][0])

        if adapters:
            self.builder.add_table(len(adapters), len(adapters))
            self.builder.add_element(0, adapters)

        # main: exercise dispatchers and mids, accumulate into the global
        fb = self.builder.function((I32,), (I64,), name="main", export="main")
        rounds = fb.add_local(I32)
        fb.i64_const(0)
        fb.set_global(checksum_global)
        calls = self.rng.sample(dispatchers, k=min(len(dispatchers), 8)) \
            if dispatchers else []
        fb.block()
        fb.loop()
        fb.get_local(rounds)
        fb.get_local(0)
        fb.emit("i32.ge_u")
        fb.br_if(1)
        for func_idx in calls:
            fb.get_local(rounds)
            fb.get_local(rounds)
            fb.i32_const(3)
            fb.emit("i32.mul")
            fb.call(func_idx)
            fb.emit("i64.extend_u/i32")
            fb.get_global(checksum_global)
            fb.emit("i64.add")
            fb.set_global(checksum_global)
        fb.get_local(rounds)
        fb.i32_const(1)
        fb.emit("i32.add")
        fb.set_local(rounds)
        fb.br(0)
        fb.end()
        fb.end()
        fb.get_global(checksum_global)
        fb.finish()

        return self.builder.build()


@lru_cache(maxsize=None)
def engine_demo(scale: float = 1.0) -> Module:
    """The Unreal-Engine-demo stand-in: large, float-heavy, diverse."""
    return _BinaryGenerator(ENGINE_PROFILE, scale).generate()


@lru_cache(maxsize=None)
def pdf_toolkit(scale: float = 1.0) -> Module:
    """The PSPDFKit stand-in: medium, byte-level memory traffic."""
    return _BinaryGenerator(PDF_PROFILE, scale).generate()
