"""The execution tracer extension: structured event capture and export."""

import json

from repro import analyze
from repro.analyses.tracer import Event, ExecutionTracer
from repro.core.analysis import Location
from repro.minic import compile_source


def program():
    return compile_source("""
        memory 1;
        func helper(x: i32) -> i32 { return x + 1; }
        export func main(n: i32) -> i32 {
            mem_i32[0] = helper(n);
            return mem_i32[0];
        }
    """)


class TestCapture:
    def test_event_stream_order(self):
        tracer = ExecutionTracer()
        analyze(program(), tracer, entry="main", args=(4,))
        kinds = [e.kind for e in tracer.events]
        # the call's pre event precedes the callee's function begin
        assert kinds.index("call_pre") < kinds.index("begin") or \
            kinds[0] == "begin"
        pre = next(e for e in tracer.events if e.kind == "call_pre")
        assert pre.payload == (0, (4,), None)  # helper is function 0
        store = next(e for e in tracer.events if e.kind == "store")
        assert store.payload == ("i32.store", 0, 5)

    def test_filtering(self):
        tracer = ExecutionTracer(keep=lambda e: e.kind == "binary")
        analyze(program(), tracer, entry="main", args=(4,))
        assert tracer.events
        assert all(e.kind == "binary" for e in tracer.events)

    def test_bounded_capture(self):
        tracer = ExecutionTracer(max_events=5)
        analyze(program(), tracer, entry="main", args=(4,))
        assert len(tracer.events) == 5
        assert tracer.dropped > 0

    def test_slice_by_function(self):
        tracer = ExecutionTracer()
        analyze(program(), tracer, entry="main", args=(1,))
        helper_events = tracer.slice_by_function(0)
        assert helper_events
        assert all(e.location.func == 0 for e in helper_events)

    def test_kinds_summary(self):
        tracer = ExecutionTracer()
        analyze(program(), tracer, entry="main", args=(1,))
        kinds = tracer.kinds()
        assert kinds["call_pre"] == kinds["call_post"] == 1
        assert kinds["store"] == kinds["load"] == 1


class TestExport:
    def test_jsonl_roundtrip(self):
        tracer = ExecutionTracer()
        analyze(program(), tracer, entry="main", args=(2,))
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.events)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == tracer.events[0].kind
        assert all({"kind", "func", "instr", "payload"} <= set(p) for p in parsed)

    def test_event_json(self):
        event = Event("load", Location(1, 2), ("i32.load", 8, 7))
        data = json.loads(event.to_json())
        assert data == {"kind": "load", "func": 1, "instr": 2,
                        "payload": ["i32.load", 8, 7]}
