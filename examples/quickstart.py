"""Quickstart: compile a program to Wasm, attach an analysis, run it.

This walks the full Wasabi pipeline from the paper's Figure 2:

1. obtain a WebAssembly binary (here: compiled from MiniC — in the paper,
   from C via emscripten),
2. write a dynamic analysis against the high-level hook API (Table 2),
3. let Wasabi instrument the binary selectively and run it — the analysis
   observes every matching event while the program behaves as before.

Run:  python examples/quickstart.py
"""

from repro import Analysis, analyze
from repro.interp import Linker
from repro.minic import compile_source
from repro.wasm import decode_module, encode_module
from repro.wasm.types import F64, FuncType

SOURCE = """
import func print_f64(x: f64);
memory 1;

export func main(n: i32) -> f64 {
    var total: f64 = 0.0;
    var i: i32;
    for (i = 0; i < n; i = i + 1) {
        mem_f64[i] = sqrt(f64(i));
        total = total + mem_f64[i];
    }
    print_f64(total);
    return total;
}
"""


class OperationCounter(Analysis):
    """Counts executed binary operations and memory traffic."""

    def __init__(self):
        self.operations = {}
        self.bytes_written = 0

    def binary(self, location, op, first, second, result):
        self.operations[op] = self.operations.get(op, 0) + 1

    def store(self, location, op, memarg, value):
        self.bytes_written += 8 if op.startswith(("f64", "i64")) else 4


def main():
    # 1. a WebAssembly binary (round-tripped through the actual .wasm format
    #    to show this works on binaries, not just in-memory modules)
    module = compile_source(SOURCE, "quickstart")
    raw = encode_module(module)
    print(f"compiled {len(raw)} bytes of WebAssembly")
    module = decode_module(raw)

    # 2. host imports the program needs
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: print(f"  program prints: {args[0]:.4f}"))

    # 3. instrument + instantiate + run under the analysis
    counter = OperationCounter()
    session = analyze(module, counter, linker=linker)
    print(f"instrumented with {session.result.hook_count} generated low-level "
          f"hooks (selective: only 'binary' and 'store' instructions)")

    result = session.invoke("main", [100])
    print(f"main(100) = {result[0]:.4f}")

    print("\nexecuted binary operations:")
    for op, count in sorted(counter.operations.items(), key=lambda kv: -kv[1]):
        print(f"  {op:<12} {count}")
    print(f"bytes stored to linear memory: {counter.bytes_written}")


if __name__ == "__main__":
    main()
