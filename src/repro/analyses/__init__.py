"""The paper's eight example analyses (Table 4), built on the Wasabi API.

=====================  ==========================================  ====
Analysis               Hooks used                                  Ref
=====================  ==========================================  ====
InstructionMixAnalysis all                                         §4.2
BasicBlockProfiler     begin                                       §4.2
InstructionCoverage    all                                         §4.2
BranchCoverage         if, br_if, br_table, select                 Fig 7
CallGraphAnalysis      call_pre                                    §4.2
TaintAnalysis          all                                         §4.2
CryptominerDetector    binary                                      Fig 1
MemoryTracer           load, store                                 §4.2
=====================  ==========================================  ====
"""

from .basic_blocks import BasicBlockProfiler
from .boundary import BoundaryCrossing, HostBoundaryAnalysis
from .call_graph import CallGraphAnalysis
from .coverage import BranchCoverage, InstructionCoverage
from .cryptominer import SIGNATURE_OPS, CryptominerDetector
from .heap_profile import GrowEvent, HeapProfiler
from .hot_loops import HotLoopAnalysis, LoopStats
from .instruction_mix import InstructionMixAnalysis
from .memory_tracing import Access, MemoryTracer
from .shadow import ShadowMemory, access_width
from .taint import CLEAN, TaintAnalysis, TaintFlow
from .tracer import Event, ExecutionTracer

#: The Table-4 inventory: (analysis class, hooks description).
ALL_ANALYSES = [
    (InstructionMixAnalysis, "all"),
    (BasicBlockProfiler, "begin"),
    (InstructionCoverage, "all"),
    (BranchCoverage, "if, br_if, br_table, select"),
    (CallGraphAnalysis, "call_pre"),
    (TaintAnalysis, "all"),
    (CryptominerDetector, "binary"),
    (MemoryTracer, "load, store"),
]

__all__ = [
    "ALL_ANALYSES", "Access", "BasicBlockProfiler", "BranchCoverage",
    "BoundaryCrossing", "CLEAN", "CallGraphAnalysis", "CryptominerDetector",
    "Event", "GrowEvent", "HeapProfiler", "HostBoundaryAnalysis",
    "HotLoopAnalysis", "LoopStats", "ShadowMemory", "access_width",
    "ExecutionTracer", "InstructionCoverage", "InstructionMixAnalysis",
    "MemoryTracer", "SIGNATURE_OPS", "TaintAnalysis", "TaintFlow",
]
