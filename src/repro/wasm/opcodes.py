"""The complete WebAssembly MVP opcode table.

Every instruction of the MVP binary format (spec 1.0) is described by an
:class:`OpInfo` record giving its encoding byte, mnemonic, immediate kind,
static type signature (where the instruction is monomorphic), and the
Wasabi *hook group* it belongs to (paper, Table 2).

Mnemonics follow the paper-era (2018) naming — ``get_local``,
``i32.trunc_s/f32`` — because Wasabi's analysis API passes exactly these
strings to the ``local``/``unary``/``binary`` hooks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .types import F32, F64, I32, I64, ValType


class Imm(enum.Enum):
    """Kinds of immediate operands an instruction carries in the binary."""

    NONE = "none"
    BLOCKTYPE = "blocktype"      # block / loop / if
    LABEL = "label"              # br / br_if
    BR_TABLE = "br_table"        # vector of labels + default
    FUNC_IDX = "func_idx"        # call
    TYPE_IDX = "type_idx"        # call_indirect (+ reserved 0x00 byte)
    LOCAL_IDX = "local_idx"      # get/set/tee_local
    GLOBAL_IDX = "global_idx"    # get/set_global
    MEMARG = "memarg"            # loads / stores (align, offset)
    MEM_IDX = "mem_idx"          # memory.size / memory.grow (reserved 0x00)
    CONST_I32 = "const_i32"
    CONST_I64 = "const_i64"
    CONST_F32 = "const_f32"
    CONST_F64 = "const_f64"


class HookGroup(enum.Enum):
    """Wasabi's grouping of instructions into analysis hooks (Table 2).

    ``BEGIN``/``END`` are not listed here because block begins and ends are
    derived from the control instructions during instrumentation; ``IF``
    covers the conditional part of ``if``.
    """

    NOP = "nop"
    UNREACHABLE = "unreachable"
    CONST = "const"
    UNARY = "unary"
    BINARY = "binary"
    DROP = "drop"
    SELECT = "select"
    LOCAL = "local"
    GLOBAL = "global"
    LOAD = "load"
    STORE = "store"
    MEMORY_SIZE = "memory_size"
    MEMORY_GROW = "memory_grow"
    CALL = "call"
    RETURN = "return"
    BR = "br"
    BR_IF = "br_if"
    BR_TABLE = "br_table"
    BEGIN = "begin"
    END = "end"
    IF = "if"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one instruction."""

    byte: int
    mnemonic: str
    imm: Imm
    #: ``(params, results)`` for monomorphic instructions, ``None`` where the
    #: type depends on context (control flow, calls, parametrics, variables).
    signature: tuple[tuple[ValType, ...], tuple[ValType, ...]] | None
    group: HookGroup | None

    @property
    def is_block_start(self) -> bool:
        return self.mnemonic in ("block", "loop", "if")

    @property
    def is_control(self) -> bool:
        return self.mnemonic in (
            "unreachable", "nop", "block", "loop", "if", "else", "end",
            "br", "br_if", "br_table", "return", "call", "call_indirect",
        )


_T = {"i32": I32, "i64": I64, "f32": F32, "f64": F64}

_TABLE: list[OpInfo] = []


def _op(byte: int, mnemonic: str, imm: Imm = Imm.NONE,
        signature: tuple[tuple[ValType, ...], tuple[ValType, ...]] | None = None,
        group: HookGroup | None = None) -> None:
    _TABLE.append(OpInfo(byte, mnemonic, imm, signature, group))


def _unop(byte: int, mnemonic: str, in_t: ValType, out_t: ValType) -> None:
    _op(byte, mnemonic, Imm.NONE, ((in_t,), (out_t,)), HookGroup.UNARY)


def _binop(byte: int, mnemonic: str, in_t: ValType, out_t: ValType) -> None:
    _op(byte, mnemonic, Imm.NONE, ((in_t, in_t), (out_t,)), HookGroup.BINARY)


# -- Control instructions ----------------------------------------------------
_op(0x00, "unreachable", group=HookGroup.UNREACHABLE)
_op(0x01, "nop", signature=((), ()), group=HookGroup.NOP)
_op(0x02, "block", Imm.BLOCKTYPE, group=HookGroup.BEGIN)
_op(0x03, "loop", Imm.BLOCKTYPE, group=HookGroup.BEGIN)
_op(0x04, "if", Imm.BLOCKTYPE, group=HookGroup.IF)
_op(0x05, "else", group=HookGroup.BEGIN)
_op(0x0B, "end", group=HookGroup.END)
_op(0x0C, "br", Imm.LABEL, group=HookGroup.BR)
_op(0x0D, "br_if", Imm.LABEL, group=HookGroup.BR_IF)
_op(0x0E, "br_table", Imm.BR_TABLE, group=HookGroup.BR_TABLE)
_op(0x0F, "return", group=HookGroup.RETURN)
_op(0x10, "call", Imm.FUNC_IDX, group=HookGroup.CALL)
_op(0x11, "call_indirect", Imm.TYPE_IDX, group=HookGroup.CALL)

# -- Parametric instructions -------------------------------------------------
_op(0x1A, "drop", group=HookGroup.DROP)
_op(0x1B, "select", group=HookGroup.SELECT)

# -- Variable instructions ---------------------------------------------------
_op(0x20, "get_local", Imm.LOCAL_IDX, group=HookGroup.LOCAL)
_op(0x21, "set_local", Imm.LOCAL_IDX, group=HookGroup.LOCAL)
_op(0x22, "tee_local", Imm.LOCAL_IDX, group=HookGroup.LOCAL)
_op(0x23, "get_global", Imm.GLOBAL_IDX, group=HookGroup.GLOBAL)
_op(0x24, "set_global", Imm.GLOBAL_IDX, group=HookGroup.GLOBAL)

# -- Memory instructions -----------------------------------------------------
for _byte, _name, _vt in [
    (0x28, "i32.load", I32), (0x29, "i64.load", I64),
    (0x2A, "f32.load", F32), (0x2B, "f64.load", F64),
    (0x2C, "i32.load8_s", I32), (0x2D, "i32.load8_u", I32),
    (0x2E, "i32.load16_s", I32), (0x2F, "i32.load16_u", I32),
    (0x30, "i64.load8_s", I64), (0x31, "i64.load8_u", I64),
    (0x32, "i64.load16_s", I64), (0x33, "i64.load16_u", I64),
    (0x34, "i64.load32_s", I64), (0x35, "i64.load32_u", I64),
]:
    _op(_byte, _name, Imm.MEMARG, ((I32,), (_vt,)), HookGroup.LOAD)

for _byte, _name, _vt in [
    (0x36, "i32.store", I32), (0x37, "i64.store", I64),
    (0x38, "f32.store", F32), (0x39, "f64.store", F64),
    (0x3A, "i32.store8", I32), (0x3B, "i32.store16", I32),
    (0x3C, "i64.store8", I64), (0x3D, "i64.store16", I64),
    (0x3E, "i64.store32", I64),
]:
    _op(_byte, _name, Imm.MEMARG, ((I32, _vt), ()), HookGroup.STORE)

_op(0x3F, "memory.size", Imm.MEM_IDX, ((), (I32,)), HookGroup.MEMORY_SIZE)
_op(0x40, "memory.grow", Imm.MEM_IDX, ((I32,), (I32,)), HookGroup.MEMORY_GROW)

# -- Constants ---------------------------------------------------------------
_op(0x41, "i32.const", Imm.CONST_I32, ((), (I32,)), HookGroup.CONST)
_op(0x42, "i64.const", Imm.CONST_I64, ((), (I64,)), HookGroup.CONST)
_op(0x43, "f32.const", Imm.CONST_F32, ((), (F32,)), HookGroup.CONST)
_op(0x44, "f64.const", Imm.CONST_F64, ((), (F64,)), HookGroup.CONST)

# -- Integer comparison operators (binary, result i32) ------------------------
_unop(0x45, "i32.eqz", I32, I32)
for _i, _name in enumerate(["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u",
                            "le_s", "le_u", "ge_s", "ge_u"]):
    _binop(0x46 + _i, f"i32.{_name}", I32, I32)
_unop(0x50, "i64.eqz", I64, I32)
for _i, _name in enumerate(["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u",
                            "le_s", "le_u", "ge_s", "ge_u"]):
    _binop(0x51 + _i, f"i64.{_name}", I64, I32)

# -- Float comparison operators ------------------------------------------------
for _i, _name in enumerate(["eq", "ne", "lt", "gt", "le", "ge"]):
    _binop(0x5B + _i, f"f32.{_name}", F32, I32)
for _i, _name in enumerate(["eq", "ne", "lt", "gt", "le", "ge"]):
    _binop(0x61 + _i, f"f64.{_name}", F64, I32)

# -- Integer arithmetic --------------------------------------------------------
for _i, _name in enumerate(["clz", "ctz", "popcnt"]):
    _unop(0x67 + _i, f"i32.{_name}", I32, I32)
for _i, _name in enumerate(["add", "sub", "mul", "div_s", "div_u", "rem_s",
                            "rem_u", "and", "or", "xor", "shl", "shr_s",
                            "shr_u", "rotl", "rotr"]):
    _binop(0x6A + _i, f"i32.{_name}", I32, I32)
for _i, _name in enumerate(["clz", "ctz", "popcnt"]):
    _unop(0x79 + _i, f"i64.{_name}", I64, I64)
for _i, _name in enumerate(["add", "sub", "mul", "div_s", "div_u", "rem_s",
                            "rem_u", "and", "or", "xor", "shl", "shr_s",
                            "shr_u", "rotl", "rotr"]):
    _binop(0x7C + _i, f"i64.{_name}", I64, I64)

# -- Float arithmetic ----------------------------------------------------------
for _i, _name in enumerate(["abs", "neg", "ceil", "floor", "trunc",
                            "nearest", "sqrt"]):
    _unop(0x8B + _i, f"f32.{_name}", F32, F32)
for _i, _name in enumerate(["add", "sub", "mul", "div", "min", "max",
                            "copysign"]):
    _binop(0x92 + _i, f"f32.{_name}", F32, F32)
for _i, _name in enumerate(["abs", "neg", "ceil", "floor", "trunc",
                            "nearest", "sqrt"]):
    _unop(0x99 + _i, f"f64.{_name}", F64, F64)
for _i, _name in enumerate(["add", "sub", "mul", "div", "min", "max",
                            "copysign"]):
    _binop(0xA0 + _i, f"f64.{_name}", F64, F64)

# -- Conversions (all unary) ---------------------------------------------------
for _byte, _name, _in, _out in [
    (0xA7, "i32.wrap/i64", I64, I32),
    (0xA8, "i32.trunc_s/f32", F32, I32),
    (0xA9, "i32.trunc_u/f32", F32, I32),
    (0xAA, "i32.trunc_s/f64", F64, I32),
    (0xAB, "i32.trunc_u/f64", F64, I32),
    (0xAC, "i64.extend_s/i32", I32, I64),
    (0xAD, "i64.extend_u/i32", I32, I64),
    (0xAE, "i64.trunc_s/f32", F32, I64),
    (0xAF, "i64.trunc_u/f32", F32, I64),
    (0xB0, "i64.trunc_s/f64", F64, I64),
    (0xB1, "i64.trunc_u/f64", F64, I64),
    (0xB2, "f32.convert_s/i32", I32, F32),
    (0xB3, "f32.convert_u/i32", I32, F32),
    (0xB4, "f32.convert_s/i64", I64, F32),
    (0xB5, "f32.convert_u/i64", I64, F32),
    (0xB6, "f32.demote/f64", F64, F32),
    (0xB7, "f64.convert_s/i32", I32, F64),
    (0xB8, "f64.convert_u/i32", I32, F64),
    (0xB9, "f64.convert_s/i64", I64, F64),
    (0xBA, "f64.convert_u/i64", I64, F64),
    (0xBB, "f64.promote/f32", F32, F64),
    (0xBC, "i32.reinterpret/f32", F32, I32),
    (0xBD, "i64.reinterpret/f64", F64, I64),
    (0xBE, "f32.reinterpret/i32", I32, F32),
    (0xBF, "f64.reinterpret/i64", I64, F64),
]:
    _unop(_byte, _name, _in, _out)


#: Lookup by encoding byte and by mnemonic.
BY_BYTE: dict[int, OpInfo] = {op.byte: op for op in _TABLE}
BY_NAME: dict[str, OpInfo] = {op.mnemonic: op for op in _TABLE}

assert len(BY_BYTE) == len(_TABLE), "duplicate opcode byte"
assert len(BY_NAME) == len(_TABLE), "duplicate mnemonic"

#: Number of numeric instructions, as a sanity check against the spec
#: (the paper mentions "123 numeric instructions alone").
NUMERIC_OPS = [op for op in _TABLE
               if op.group in (HookGroup.UNARY, HookGroup.BINARY, HookGroup.CONST)]


def info(mnemonic: str) -> OpInfo:
    """Return the :class:`OpInfo` for a mnemonic, raising ``KeyError`` if unknown."""
    return BY_NAME[mnemonic]
