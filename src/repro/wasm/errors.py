"""Error hierarchy for the WebAssembly toolkit.

Mirrors the error classes a conforming implementation distinguishes:
malformed binaries (decode errors), invalid modules (validation errors),
and runtime traps (raised by the interpreter in :mod:`repro.interp`).
"""

from __future__ import annotations


class WasmError(Exception):
    """Base class for all errors raised by the WebAssembly toolkit."""


class DecodeError(WasmError):
    """The binary is malformed and cannot be decoded."""

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte offset {offset:#x})"
        super().__init__(message)


class EncodeError(WasmError):
    """The module cannot be represented in the binary format."""


class ValidationError(WasmError):
    """The module is well-formed but does not type check."""

    def __init__(self, message: str, func_idx: int | None = None, instr_idx: int | None = None):
        self.func_idx = func_idx
        self.instr_idx = instr_idx
        where = ""
        if func_idx is not None:
            where = f" (in function {func_idx}"
            where += f", instruction {instr_idx})" if instr_idx is not None else ")"
        super().__init__(message + where)


class Trap(WasmError):
    """A WebAssembly trap: execution aborted with a runtime error."""


class ExhaustionError(Trap):
    """Call stack exhaustion (the spec treats this as a trap-like abort)."""
