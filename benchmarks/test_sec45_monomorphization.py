"""§4.5: on-demand monomorphization — number of generated low-level hooks.

The paper reports 110–122 hooks for PolyBench programs, 302 for PSPDFKit,
and 783 for the Unreal Engine under full instrumentation, versus an
astronomically large eager count (4^22 ≈ 1.7e13 for the UE4 binary's widest
call). This benchmark reproduces the measurement and the comparison.
"""

from __future__ import annotations

from repro.core import eager_hook_count, instrument_module
from repro.eval import render_table
from repro.workloads import engine_demo, pdf_toolkit
from repro.workloads.polybench import compile_kernel, kernel_names


def test_monomorphization_counts(benchmark, write_report):
    poly_counts = {name: instrument_module(compile_kernel(name)).hook_count
                   for name in kernel_names()}
    pdf_result = instrument_module(pdf_toolkit())
    engine_result = instrument_module(engine_demo())

    def widest_call(module):
        return max(len(t.params) for t in module.types)

    engine_widest = widest_call(engine_demo())
    rows = [
        ["PolyBench (min..max)",
         f"{min(poly_counts.values())}..{max(poly_counts.values())}",
         f"4^6 = {4 ** 6:,} (calls with 6 args are common)"],
        ["pdf_toolkit", pdf_result.hook_count,
         f"4^{widest_call(pdf_toolkit())} = {4 ** widest_call(pdf_toolkit()):,}"],
        ["engine_demo", engine_result.hook_count,
         f"4^{engine_widest} = {4 ** engine_widest:.2e}"],
    ]
    report = render_table(
        ["Program", "On-demand hooks", "Eager lower bound (call hooks alone)"],
        rows, title="Section 4.5: on-demand monomorphization")
    write_report("sec45_monomorphization", report)

    # shape: on-demand counts are O(100); eager counts are astronomical
    assert max(poly_counts.values()) < 400
    assert pdf_result.hook_count < engine_result.hook_count < 2000
    assert eager_hook_count(engine_widest) > 10 ** 6
    # larger, more diverse binaries need more hooks (paper: 122 < 302 < 783)
    assert max(poly_counts.values()) < engine_result.hook_count

    # every generated hook corresponds to a distinct (kind, payload)
    names = [spec.name for spec in engine_result.info.hooks]
    assert len(names) == len(set(names))

    benchmark.pedantic(lambda: instrument_module(compile_kernel("gemm")),
                       rounds=3, iterations=1)
