"""Hot-loop and hot-path detection (extension, built on block profiling).

Combines the begin hook (iteration counts) with branch hooks (loop-exit
behaviour) to find the loops where a program spends its trips — the "hot
code" use case the paper names for basic block profiling, taken one step
further: per-loop trip-count distributions, which feed unroll/JIT-tier
decisions in real toolchains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.analysis import Analysis, Location


@dataclass
class LoopStats:
    header: Location
    entries: int                 # times the loop was entered from outside
    iterations: int              # total header executions

    @property
    def average_trip_count(self) -> float:
        return self.iterations / self.entries if self.entries else 0.0


class HotLoopAnalysis(Analysis):
    """Per-loop entry and iteration counts via begin/end events.

    Wasabi's semantics (§2.4.5) balance loop begin/end *per iteration*: a
    back-branch to the loop header first fires the loop's end hook, then
    the header's begin hook fires again — the two events are adjacent in
    the stream. A ``begin('loop')`` therefore starts a *new* dynamic entry
    exactly when the immediately preceding event was not that same loop's
    end (i.e. control arrived from outside, not via a back-branch).
    """

    def __init__(self):
        self.iterations: Counter[Location] = Counter()
        self.entries: Counter[Location] = Counter()
        self._last_event: tuple[str, Location] | None = None

    def begin(self, location, block_type):
        if block_type == "loop":
            self.iterations[location] += 1
            if self._last_event != ("end", location):
                self.entries[location] += 1
        self._last_event = ("begin", location)

    def end(self, location, block_type, begin_location):
        self._last_event = ("end", begin_location)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> list[LoopStats]:
        return sorted(
            (LoopStats(header, self.entries[header], self.iterations[header])
             for header in self.iterations),
            key=lambda s: -s.iterations)

    def hottest(self, n: int = 5) -> list[LoopStats]:
        return self.stats()[:n]

    def total_loop_iterations(self) -> int:
        return sum(self.iterations.values())
