"""MiniC: a small C-like language compiled to WebAssembly.

Stands in for the paper's emscripten-compiled C (the PolyBench suite). See
:mod:`repro.workloads.polybench` for the kernels written in it.

Quick example::

    from repro.minic import compile_source
    module = compile_source('''
        export func add(a: i32, b: i32) -> i32 { return a + b; }
    ''')
"""

from .codegen import compile_program, compile_source
from .errors import LexError, MiniCError, ParseError, TypeError_
from .lexer import tokenize
from .parser import parse
from .typecheck import CheckedProgram, check

__all__ = [
    "CheckedProgram", "LexError", "MiniCError", "ParseError", "TypeError_",
    "check", "compile_program", "compile_source", "parse", "tokenize",
]
