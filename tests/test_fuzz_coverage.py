"""Coverage-guided parallel fuzzing: collector, sharding, corpus, CLI.

Pins the contracts the campaign engine rests on: the coverage collector
is deterministic and strictly scoped (normal runs never pay for it),
parallel blind campaigns aggregate exactly like serial ones, signature
dedup counts a signature once no matter how many shards see it, and the
on-disk corpus resumes where it stopped.
"""

from __future__ import annotations

import sys

import pytest

from repro.cli import EXIT_FAILURE, EXIT_OK, main
from repro.eval.coverage import (DEFAULT_COVERAGE_MODULES, CoverageCollector,
                                 CoverageMap, collect_edges)
from repro.eval.faultinject import (Classification, mutant_rng, mutate,
                                    seed_corpus)
from repro.eval.fuzz import (CORPUS_SCHEMA, CorpusState, FuzzConfig,
                             FuzzResult, _merge_shard, bench_payload,
                             load_corpus_entries, run_fuzz_campaign,
                             signature_key)
from repro.interp.replay import load_crash_bundle
from repro.wasm.decoder import decode_module


def _decode_seed():
    return decode_module(seed_corpus()["fib"])


class TestCoverageCollector:
    def test_new_edge_detection_is_deterministic(self):
        _, first = collect_edges(_decode_seed)
        _, second = collect_edges(_decode_seed)
        assert first, "decoding must touch decoder edges"
        assert first == second

    def test_different_inputs_reach_different_edges(self):
        corpus = seed_corpus()
        _, fib = collect_edges(decode_module, corpus["fib"])
        _, sink = collect_edges(decode_module, corpus["kitchen_sink"])
        # kitchen_sink exercises sections fib doesn't have
        assert sink - fib

    def test_disabled_path_has_no_effect(self):
        # no collector entered: whatever trace hook was active stays active
        before = sys.gettrace()
        _decode_seed()
        assert sys.gettrace() is before

    def test_collector_restores_prior_trace(self):
        collector = CoverageCollector(backend="settrace")
        sentinel = lambda *a: None  # noqa: E731
        saved = sys.gettrace()
        sys.settrace(sentinel)
        try:
            with collector:
                _decode_seed()
            assert sys.gettrace() is sentinel
        finally:
            sys.settrace(saved)
        assert collector.edges

    def test_foreign_code_is_not_collected(self):
        _, edges = collect_edges(sorted, [3, 1, 2])
        assert edges == set()

    def test_drain_clears(self):
        collector = CoverageCollector()
        with collector:
            _decode_seed()
            first = collector.drain()
            assert first
            assert collector.drain() == set()

    def test_monitoring_backend_if_available(self):
        if sys.version_info < (3, 12):
            pytest.skip("sys.monitoring backend needs 3.12+")
        _, edges = collect_edges(_decode_seed, backend="monitoring")
        assert edges

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            CoverageCollector(backend="perf")

    def test_map_add_all_reports_only_new(self):
        cov = CoverageMap()
        assert cov.add_all({1, 2, 3}) == {1, 2, 3}
        assert cov.add_all({2, 3, 4}) == {4}
        assert len(cov) == 4
        assert CoverageMap.from_payload(cov.to_payload()).edges == cov.edges

    def test_module_order_is_pinned(self):
        # edge ids embed the module index; reordering this tuple breaks
        # every persisted corpus, so changes must bump MUTATOR_VERSION
        assert DEFAULT_COVERAGE_MODULES == (
            "repro.wasm.leb128", "repro.wasm.decoder",
            "repro.wasm.validation", "repro.core.instrument",
            "repro.wasm.encoder")


class TestShardedCampaign:
    def test_parallel_blind_matches_serial(self):
        serial = run_fuzz_campaign(FuzzConfig(
            mutants=300, seed=99, parallel=1, execute=False))
        parallel = run_fuzz_campaign(FuzzConfig(
            mutants=300, seed=99, parallel=3, round_size=40, execute=False))
        assert serial.signatures == parallel.signatures
        assert serial.rejected_at == parallel.rejected_at
        assert serial.survived == parallel.survived

    def test_shard_merge_dedups_signatures(self):
        config = FuzzConfig(seed=1)
        state = CorpusState()
        result = FuzzResult(seed=1)
        sig = signature_key("decode", "rejected", "DecodeError")
        example = {"name": "fib", "index": 0, "recipe": "flip@0^0x01",
                   "max_ops": 3, "stage": "decode", "outcome": "rejected",
                   "exc_type": "DecodeError", "message": "bad magic",
                   "mutant": b"\x00"}
        shard = {"mutants": 10, "rejected_at": {"decode": 10}, "survived": 0,
                 "signature_counts": {sig: 10},
                 "signature_examples": {sig: example},
                 "escapes": [], "additions": [], "new_edges": []}
        _merge_shard(config, state, result, shard)
        _merge_shard(config, state, result, shard)  # same sig, second shard
        assert result.new_signatures == [sig]
        assert result.signatures[sig] == 20

    def test_resumed_signatures_are_not_new(self):
        sig = signature_key("decode", "rejected", "DecodeError")
        config = FuzzConfig(seed=1)
        state = CorpusState()
        result = FuzzResult(seed=1, preexisting=frozenset({sig}))
        shard = {"mutants": 1, "rejected_at": {"decode": 1}, "survived": 0,
                 "signature_counts": {sig: 1},
                 "signature_examples": {sig: {"outcome": "rejected"}},
                 "escapes": [], "additions": [], "new_edges": []}
        _merge_shard(config, state, result, shard)
        assert result.new_signatures == []

    def test_coverage_guided_evolves_corpus(self):
        result = run_fuzz_campaign(FuzzConfig(
            mutants=400, seed=5, coverage=True))
        assert result.coverage and result.backend
        assert result.edges > 0
        assert result.corpus_added > 0

    def test_mutant_regenerates_exactly_across_modes(self):
        corpus = seed_corpus()
        for max_ops in (1, 3):
            a, _ = mutate(corpus["fib"], mutant_rng(7, "fib", 3),
                          max_ops=max_ops)
            b, _ = mutate(corpus["fib"], mutant_rng(7, "fib", 3),
                          max_ops=max_ops)
            assert a == b

    def test_time_budget_stops_campaign(self):
        result = run_fuzz_campaign(FuzzConfig(
            mutants=1_000_000, seed=3, execute=False, round_size=50,
            time_budget=0.0))
        assert result.mutants == 0

    def test_escape_is_recorded(self, monkeypatch, tmp_path):
        def bad_classify(binary, execute=True, engines=(True, False)):
            return Classification(stage="decode", outcome="escape",
                                  exc_type="IndexError", message="boom")

        monkeypatch.setattr("repro.eval.fuzz.classify", bad_classify)
        result = run_fuzz_campaign(FuzzConfig(
            mutants=3, seed=1, save_failures=str(tmp_path), reduce_tests=0))
        assert not result.ok
        assert len(result.escapes) == 3
        assert result.bundles  # escape bundles were written


class TestCorpusPersistence:
    def test_resume_round_trip(self, tmp_path):
        first = run_fuzz_campaign(FuzzConfig(
            mutants=300, seed=11, coverage=True, corpus_dir=str(tmp_path),
            reduce_tests=0))
        assert (tmp_path / "corpus.json").is_file()
        second = run_fuzz_campaign(FuzzConfig(
            mutants=300, seed=11, coverage=True, corpus_dir=str(tmp_path),
            reduce_tests=0))
        # the cursor advanced: run 2 fuzzes indices 300..599, not 0..299
        assert CorpusState.load(tmp_path).next_index == 600
        # signatures known from run 1 are not re-announced by run 2
        assert not set(second.new_signatures) & set(first.new_signatures)
        assert set(second.preexisting) >= set(first.new_signatures)

    def test_stale_schema_starts_fresh(self, tmp_path):
        (tmp_path / "corpus.json").write_text(
            '{"schema": "not-it/0", "next_index": 900}')
        state = CorpusState.load(tmp_path)
        assert state.next_index == 0
        assert set(state.entries) == set(seed_corpus())

    def test_corrupt_state_starts_fresh(self, tmp_path):
        (tmp_path / "corpus.json").write_text("{nope")
        assert CorpusState.load(tmp_path).next_index == 0

    def test_schema_tag_current(self):
        assert CORPUS_SCHEMA == "repro.fuzz-corpus/1"

    def test_evolved_entries_reload_bytes(self, tmp_path):
        run_fuzz_campaign(FuzzConfig(
            mutants=400, seed=5, coverage=True, corpus_dir=str(tmp_path),
            reduce_tests=0))
        entries = load_corpus_entries(tmp_path)
        evolved = {n: b for n, b in entries.items() if n.startswith("cov-")}
        assert evolved
        state = CorpusState.load(tmp_path)
        for name, data in evolved.items():
            assert state.entries[name] == data
            assert state.lineage[name]["parent"]


class TestSignatureBundles:
    def test_new_signatures_are_bundled_and_replayable(self, tmp_path):
        from repro.eval.faultinject import replay_failure_bundle

        result = run_fuzz_campaign(FuzzConfig(
            mutants=400, seed=5, coverage=True, corpus_dir=str(tmp_path)))
        assert result.bundles
        for path in result.bundles:
            bundle = load_crash_bundle(path)
            assert bundle.manifest["kind"] == "pipeline"
            assert bundle.manifest["fuzz"]["signature"]
            reproduced, live = replay_failure_bundle(bundle)
            assert reproduced, f"{path}: {live}"

    def test_pass_signature_not_bundled(self, tmp_path):
        result = run_fuzz_campaign(FuzzConfig(
            mutants=400, seed=5, coverage=True, corpus_dir=str(tmp_path)))
        pass_sig = signature_key(None, "pass", None)
        assert pass_sig in result.new_signatures
        assert not (tmp_path / "signatures" / "pass-pass--").exists()

    def test_bench_payload_shape(self):
        result = run_fuzz_campaign(FuzzConfig(mutants=60, seed=2,
                                              execute=False))
        payload = bench_payload(result)
        assert payload["mutants"] == 60
        assert payload["mutants_per_sec"] > 0
        assert "signatures" in payload and "escapes" in payload


class TestFuzzCLI:
    def test_guided_cli_exit_ok(self, tmp_path, capsys):
        status = main(["fuzz", "--mutants", "120", "--seed", "5",
                       "--coverage", "--corpus-dir", str(tmp_path)])
        assert status == EXIT_OK
        out = capsys.readouterr().out
        assert "coverage via" in out

    def test_escape_exits_failure(self, monkeypatch, capsys):
        def bad_classify(binary, execute=True, engines=(True, False)):
            return Classification(stage="decode", outcome="escape",
                                  exc_type="IndexError", message="boom")

        monkeypatch.setattr("repro.eval.fuzz.classify", bad_classify)
        status = main(["fuzz", "--mutants", "2", "--coverage"])
        assert status == EXIT_FAILURE
        assert "ESCAPE" in capsys.readouterr().err

    def test_serial_escape_exits_failure(self, monkeypatch, capsys):
        def explode(binary, execute=True, engines=(True, False)):
            raise IndexError("boom")

        monkeypatch.setattr("repro.eval.faultinject.run_pipeline", explode)
        status = main(["fuzz", "--mutants", "2"])
        assert status == EXIT_FAILURE
