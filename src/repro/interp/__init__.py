"""A WebAssembly interpreter with exact MVP semantics.

Stands in for the browser engine the paper runs instrumented binaries on.
Two engines share the same observable behaviour: the default pre-decoded
threaded loop (see :mod:`repro.interp.predecode`) and the legacy
string-dispatch loop (``Machine(predecode=False)`` / ``REPRO_PREDECODE=0``),
kept for differential testing.
"""

from .host import GlobalInstance, HostFunction, Linker
from .limits import (DEADLINE_CHECK_INTERVAL, Meter, ResourceLimits,
                     ResourceUsage)
from .machine import (DEFAULT_MAX_CALL_DEPTH, Instance, Machine, WasmFunction,
                      bind_hook_sites, bind_indirect_caches, instantiate,
                      predecode_default, quicken_default,
                      specialize_hooks_default)
from .memory import Memory
from .pgo import (FUSION_SCHEMA, PROFILE_SCHEMA, fusion_table_payload,
                  load_profile, merge_profiles, profile_payload,
                  record_corpus_profile, resolve_fusion_pairs, select_pairs,
                  write_profile)
from .predecode import (DEFAULT_FUSION_PAIRS, FUSION_RULES,
                        HOOK_IMPORT_MODULE, DecodedFunction, cached_decode,
                        decode_function)
from .replay import (BUNDLE_SCHEMA, REPLAY_SCHEMA, CrashBundle, Recorder,
                     Replayer, load_crash_bundle, load_log, replay_linker,
                     write_crash_bundle)
from .snapshot import (SNAPSHOT_SCHEMA, Snapshot, diff_instance,
                       restore_instance, snapshot_instance)
from .table import Table

__all__ = [
    "BUNDLE_SCHEMA", "CrashBundle", "DEADLINE_CHECK_INTERVAL",
    "DEFAULT_FUSION_PAIRS", "DEFAULT_MAX_CALL_DEPTH", "DecodedFunction",
    "FUSION_RULES", "FUSION_SCHEMA", "GlobalInstance", "HOOK_IMPORT_MODULE",
    "HostFunction", "Instance", "Linker", "Machine", "Memory", "Meter",
    "PROFILE_SCHEMA", "REPLAY_SCHEMA", "Recorder", "Replayer",
    "ResourceLimits", "ResourceUsage", "SNAPSHOT_SCHEMA", "Snapshot", "Table",
    "WasmFunction", "bind_hook_sites", "bind_indirect_caches", "cached_decode",
    "decode_function", "diff_instance", "fusion_table_payload", "instantiate",
    "load_crash_bundle", "load_log", "load_profile", "merge_profiles",
    "predecode_default", "profile_payload", "quicken_default",
    "record_corpus_profile", "replay_linker", "resolve_fusion_pairs",
    "restore_instance", "select_pairs", "snapshot_instance",
    "specialize_hooks_default", "write_crash_bundle", "write_profile",
]
